//! Umbrella crate for the POIESIS reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests can use a
//! single dependency. See the individual crates for the actual library
//! surface; [`poiesis`] is the paper's primary contribution (the Planner).

#![forbid(unsafe_code)]

pub use datagen;
pub use etl_model;
pub use fcp;
pub use flowgraph;
pub use poiesis;
pub use poiesis_server;
pub use quality;
pub use scenarios;
pub use simulator;
pub use viz;
pub use xlm;
