//! The paper's demo, part P1, on the TPC-H workload: explore the
//! scatter-plot of alternatives, click a frontier point, inspect its
//! process representation and drill into its measures.
//!
//! ```sh
//! cargo run --release --example tpch_redesign
//! ```

use datagen::tpch::{tpch_catalog, tpch_flow};
use datagen::DirtProfile;
use fcp::PatternRegistry;
use poiesis::{Planner, PlannerConfig};
use viz::ScatterPoint;

fn main() {
    let (flow, _ids) = tpch_flow();
    println!(
        "TPC-H demo flow: {} operators, {} sources, {} targets",
        flow.op_count(),
        flow.ops_of_kind("extract").len(),
        flow.ops_of_kind("load").len()
    );
    let catalog = tpch_catalog(1_000, &DirtProfile::demo(), 7);
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let planner = Planner::new(flow, catalog, registry, PlannerConfig::default());

    let outcome = planner.plan().expect("planning succeeds");
    println!(
        "{} alternatives, {} on the frontier\n",
        outcome.alternatives.len(),
        outcome.skyline.len()
    );

    // P1: the scatter-plot of alternatives over quality dimensions.
    let points: Vec<ScatterPoint> = outcome
        .alternatives
        .iter()
        .enumerate()
        .map(|(i, a)| ScatterPoint {
            label: a.name.clone(),
            x: a.scores[0],
            y: a.scores[2], // reliability on the y axis, like Fig. 4's z
            z: Some(a.scores[1]),
            on_skyline: outcome.skyline.contains(&i),
        })
        .collect();
    print!(
        "{}",
        viz::render_scatter(&points, 70, 20, "performance", "reliability")
    );

    // P1: "click" the best frontier point → its process representation …
    let best = outcome.skyline_alternatives().next().unwrap();
    println!("\nselected flow `{}`:", best.name);
    println!("{}", best.flow.to_dot());

    // … and its measures, expandable to detailed metrics.
    println!("{}", viz::render_bars(&outcome.report(best), false));
    println!("-- expanded --\n");
    println!("{}", viz::render_bars(&outcome.report(best), true));
}
