//! Model interchange (§3: "we currently support the loading of xLM and
//! PDI"): export a demo flow to xLM, re-import it, import a PDI `.ktr`
//! transformation, and plan directly on the imported model.
//!
//! ```sh
//! cargo run --release --example model_interchange
//! ```

use datagen::tpch::tpch_flow;
use datagen::{Catalog, DirtProfile, TableSpec};
use fcp::PatternRegistry;
use poiesis::{Planner, PlannerConfig};

const ORDERS_KTR: &str = r#"<?xml version="1.0"?>
<transformation>
  <info><name>orders_from_pdi</name></info>
  <step>
    <name>read orders</name>
    <type>TableInput</type>
    <table>orders</table>
    <fields>
      <field><name>o_id</name><type>int</type><nullable>N</nullable></field>
      <field><name>o_total</name><type>float</type></field>
      <field><name>o_status</name><type>str</type></field>
    </fields>
  </step>
  <step>
    <name>keep shipped</name>
    <type>FilterRows</type>
    <condition>o_status = 'SHIPPED' AND o_total &gt; 0</condition>
  </step>
  <step>
    <name>discounted total</name>
    <type>Calculator</type>
    <calculation><field_name>net</field_name><formula>o_total * 0.93</formula></calculation>
  </step>
  <step>
    <name>write mart</name>
    <type>TableOutput</type>
    <table>dw_orders</table>
  </step>
  <order>
    <hop><from>read orders</from><to>keep shipped</to></hop>
    <hop><from>keep shipped</from><to>discounted total</to></hop>
    <hop><from>discounted total</from><to>write mart</to></hop>
  </order>
</transformation>"#;

fn main() {
    // ---- xLM round-trip of the TPC-H demo flow
    let (flow, _) = tpch_flow();
    let xml = xlm::write_flow(&flow);
    println!(
        "exported `{}` to xLM: {} bytes, {} ops",
        flow.name,
        xml.len(),
        flow.op_count()
    );
    println!(
        "first lines:\n{}",
        xml.lines().take(8).collect::<Vec<_>>().join("\n")
    );

    let reloaded = xlm::read_flow(&xml).expect("xLM re-imports");
    reloaded.validate().expect("re-imported flow is valid");
    assert_eq!(reloaded.op_count(), flow.op_count());
    println!(
        "\nre-imported `{}` — {} ops, valid ✓\n",
        reloaded.name,
        reloaded.op_count()
    );

    // ---- PDI import, then plan on the imported model
    let pdi_flow = xlm::pdi::import_ktr(ORDERS_KTR).expect("ktr imports");
    println!(
        "imported PDI transformation `{}`: {} steps → {} operators",
        pdi_flow.name,
        4,
        pdi_flow.op_count()
    );
    println!("{}", pdi_flow.to_dot());

    let mut catalog = Catalog::new();
    catalog.add_generated(
        &TableSpec::new(
            "orders",
            pdi_flow
                .op(pdi_flow.ops_of_kind("extract")[0])
                .map(|op| match &op.kind {
                    etl_model::OpKind::Extract { schema, .. } => schema.clone(),
                    _ => unreachable!(),
                })
                .unwrap(),
            1_500,
            "o_id",
        ),
        &DirtProfile::demo(),
        9,
    );
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let planner = Planner::new(pdi_flow, catalog, registry, PlannerConfig::default());
    let outcome = planner.plan().expect("planning on imported model succeeds");
    println!(
        "planned on the imported model: {} alternatives, {} on the frontier",
        outcome.alternatives.len(),
        outcome.skyline.len()
    );
    let best = outcome.skyline_alternatives().next().unwrap();
    println!("best: {} — {}", best.name, best.applied.join(" + "));
}
