//! Quickstart: build a small ETL flow, run one POIESIS planning cycle and
//! print the Pareto-frontier designs with their quality reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::expr::Expr;
use etl_model::{Attribute, DataType, EtlFlow, Operation, Schema};
use poiesis::Poiesis;

fn main() {
    // 1. An initial ETL flow: extract → filter → derive → load.
    let schema = Schema::new(vec![
        Attribute::required("order_id", DataType::Int),
        Attribute::new("customer", DataType::Str),
        Attribute::new("amount", DataType::Float),
        Attribute::new("qty", DataType::Int),
    ]);
    let mut flow = EtlFlow::new("quickstart");
    let ext = flow.add_op(Operation::extract("orders", schema.clone()));
    let fil = flow.add_op(Operation::filter(
        "FILTER paid orders",
        Expr::col("amount").gt(Expr::lit_f(0.0)),
    ));
    let drv = flow.add_op(
        Operation::derive(
            "DERIVE order value",
            vec![(
                "value".to_string(),
                Expr::col("amount").mul(Expr::col("qty")),
            )],
        )
        .with_cost(0.05), // the expensive step
    );
    let load = flow.add_op(Operation::load("dw_orders"));
    flow.connect(ext, fil).unwrap();
    flow.connect(fil, drv).unwrap();
    flow.connect(drv, load).unwrap();
    flow.validate().expect("flow is well-formed");
    println!("initial flow:\n{}", flow.to_dot());

    // 2. A synthetic source with realistic dirt (nulls, duplicates,
    //    corrupted strings, 12h staleness) and its clean reference twin.
    let mut catalog = Catalog::new();
    catalog.add_generated(
        &TableSpec::new("orders", schema, 2_000, "order_id"),
        &DirtProfile::demo(),
        42,
    );

    // 3. One planning cycle through the goal-driven facade (standard
    //    pattern palette, balanced objective).
    let session = Poiesis::session()
        .flow(flow)
        .catalog(catalog)
        .build()
        .expect("valid session inputs");
    let outcome = session.explore().expect("planning succeeds");

    println!(
        "evaluated {} alternative designs; {} on the Pareto frontier\n",
        outcome.alternatives.len(),
        outcome.skyline.len()
    );

    // 4. Inspect the frontier: scores are (performance, data quality,
    //    reliability) against the initial flow at 100.
    for alt in outcome.skyline_alternatives().take(5) {
        println!(
            "  perf {:6.1}  dq {:6.1}  rel {:6.1}  — {}",
            alt.scores[0],
            alt.scores[1],
            alt.scores[2],
            alt.applied.join(" + ")
        );
    }

    // 5. Full Fig.-5-style report for the best design.
    let best = outcome.skyline_alternatives().next().unwrap();
    println!("\n{}", viz::render_bars(&outcome.report(best), true));
}
