//! The paper's demo part P3: define your own Flow Component Pattern, quality
//! policy and deployment preferences, add them to the palette, and plan with
//! them.
//!
//! ```sh
//! cargo run --release --example custom_pattern
//! ```

use datagen::fig2::{purchases_catalog, purchases_flow};
use datagen::DirtProfile;
use etl_model::{OpKind, Operation};
use fcp::custom::FitnessPreset;
use fcp::{CustomPattern, DeploymentPolicy, PatternRegistry, Prerequisite};
use poiesis::{Objective, Poiesis};
use quality::{Characteristic, MeasureId};

fn main() {
    let (flow, _) = purchases_flow();
    let catalog = purchases_catalog(1_000, &DirtProfile::demo(), 3);

    // P3 step 1: a user-defined pattern. `EncryptHop` interposes an
    // encryption operation on one edge — finer-grained than the process-wide
    // EncryptChannels — targeting hops that carry customer amounts.
    let encrypt_hop = CustomPattern::new(
        "EncryptHop",
        Characteristic::Security,
        vec![Prerequisite::SchemaHasAttr("amount".into())],
        FitnessPreset::NearSources,
        |_schema| Operation::new("ENCRYPT channel", OpKind::Encrypt),
    );

    // P3 step 2: extend the standard palette with it.
    let mut registry = PatternRegistry::standard_for_catalog(&catalog);
    registry.register(encrypt_hop);
    println!("palette now holds {} patterns:", registry.len());
    for p in registry.iter() {
        println!("  - {:<24} improves {}", p.name(), p.improves().name());
    }

    // P3 step 3: a custom deployment policy — data quality and security
    // patterns first, conservatively placed.
    let policy = DeploymentPolicy {
        name: "dq+security".into(),
        priorities: vec![Characteristic::DataQuality, Characteristic::Security],
        max_patterns_per_flow: 2,
        max_per_pattern: 1,
        min_fitness: 0.2,
        top_k_points_per_pattern: 5,
        constraints: vec![],
    };

    // P3 step 4: the quality objective — data quality weighs double,
    // security and performance ride along, and a hard constraint caps the
    // slowdown at 1.8× the baseline cycle time.
    let objective = Objective::new()
        .weighted(Characteristic::DataQuality, 2.0)
        .maximize(Characteristic::Security)
        .maximize(Characteristic::Performance)
        .constrain(MeasureId::CycleTimeMs, 1.8);

    let session = Poiesis::session()
        .flow(flow)
        .catalog(catalog)
        .registry(registry)
        .policy(policy)
        .objective(objective)
        .build()
        .expect("valid session inputs");
    let outcome = session.explore().expect("planning succeeds");
    println!(
        "\n{} admitted alternatives ({} rejected by the cycle-time constraint), {} on the frontier",
        outcome.alternatives.len(),
        outcome.rejected_by_constraints,
        outcome.skyline.len()
    );
    for alt in outcome.skyline_alternatives().take(5) {
        println!(
            "  dq {:6.1}  sec {:6.1}  perf {:6.1} — {}",
            alt.scores[0],
            alt.scores[1],
            alt.scores[2],
            alt.applied.join(" + ")
        );
    }

    // show that the custom pattern actually appears on the frontier
    let uses_custom = outcome
        .skyline_alternatives()
        .any(|a| a.applied.iter().any(|p| p.contains("EncryptHop")));
    println!("\ncustom pattern on the frontier: {uses_custom}");
}
