//! The paper's iterative redesign loop (§3, last paragraph) on the TPC-DS
//! workload: plan → inspect frontier → select → integrate → repeat, "until
//! the user considers that the flow adequately satisfies quality goals".
//!
//! ```sh
//! cargo run --release --example tpcds_iterative
//! ```

use datagen::tpcds::{tpcds_catalog, tpcds_flow};
use datagen::DirtProfile;
use fcp::DeploymentPolicy;
use poiesis::Poiesis;

fn main() {
    let (mut flow, ids) = tpcds_flow();
    // make the expensive derive somewhat failure-prone so reliability
    // patterns have work to do
    flow.op_mut(ids.derive_net).unwrap().cost.failure_rate = 0.08;

    let catalog = tpcds_catalog(800, &DirtProfile::demo(), 11);
    let mut session = Poiesis::session()
        .flow(flow)
        .catalog(catalog)
        .policy(DeploymentPolicy::balanced())
        .build()
        .expect("valid session inputs");

    for cycle in 1..=3 {
        let outcome = session.explore().expect("cycle plans");
        println!(
            "cycle {cycle}: {} alternatives, {} on the frontier",
            outcome.alternatives.len(),
            outcome.skyline.len()
        );
        for (i, alt) in outcome.skyline_alternatives().take(3).enumerate() {
            println!(
                "    #{i}: perf {:6.1} dq {:6.1} rel {:6.1} — {}",
                alt.scores[0],
                alt.scores[1],
                alt.scores[2],
                alt.applied.join(" + ")
            );
        }
        // the "user" picks the top design; the planner integrates it
        let selected = session
            .select(&outcome, 0)
            .expect("frontier non-empty")
            .selected
            .clone();
        println!(
            "    selected `{}`; flow is now {} ops\n",
            selected,
            session.current_flow().op_count()
        );
    }

    println!("redesign history:");
    for rec in session.history() {
        println!(
            "  cycle {}: {} (scores {:?})",
            rec.cycle, rec.selected, rec.scores
        );
    }
    let f = session.current_flow();
    println!(
        "\nfinal flow: {} ops, encrypted={}, resources={:?}, recurrence={} min",
        f.op_count(),
        f.config.encrypted,
        f.config.resources,
        f.config.recurrence_minutes
    );
    f.validate().expect("integrated flow stays valid");
}
