//! End-to-end integration: the full POIESIS loop on the demo workloads —
//! import, plan, select, integrate, re-plan, simulate, report.

use datagen::DirtProfile;
use fcp::PatternRegistry;
use poiesis::{Planner, PlannerConfig, Session};
use quality::{Characteristic, MeasureId};
use simulator::{simulate, SimConfig};

#[test]
fn tpch_full_cycle() {
    let (flow, _) = datagen::tpch::tpch_flow();
    let catalog = datagen::tpch::tpch_catalog(300, &DirtProfile::demo(), 1);
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let planner = Planner::new(flow, catalog, registry, PlannerConfig::default());
    let outcome = planner.plan().unwrap();
    assert!(outcome.alternatives.len() > 50);
    assert!(!outcome.skyline.is_empty());

    // every skyline flow is valid and simulable
    for &i in &outcome.skyline {
        let alt = &outcome.alternatives[i];
        alt.flow.validate().unwrap();
        let trace = simulate(&alt.flow, planner.catalog(), &SimConfig::default()).unwrap();
        assert!(trace.rows_loaded() > 0, "{} loads nothing", alt.name);
    }
}

#[test]
fn xlm_imported_flow_plans_identically() {
    // write → read → plan must give the same alternative space as planning
    // on the original model
    let (flow, _) = datagen::fig2::purchases_flow();
    let catalog = datagen::fig2::purchases_catalog(150, &DirtProfile::demo(), 2);
    let registry = PatternRegistry::standard_for_catalog(&catalog);

    let reloaded = xlm::read_flow(&xlm::write_flow(&flow)).unwrap();
    let p1 = Planner::new(
        flow,
        catalog.clone(),
        registry.clone(),
        PlannerConfig::default(),
    );
    let p2 = Planner::new(reloaded, catalog, registry, PlannerConfig::default());
    let (o1, o2) = (p1.plan().unwrap(), p2.plan().unwrap());
    assert_eq!(o1.alternatives.len(), o2.alternatives.len());
    assert_eq!(o1.skyline.len(), o2.skyline.len());
    let names1: Vec<&str> = o1.alternatives.iter().map(|a| a.name.as_str()).collect();
    let names2: Vec<&str> = o2.alternatives.iter().map(|a| a.name.as_str()).collect();
    assert_eq!(names1, names2);
}

#[test]
fn iterative_session_improves_reliability_goal() {
    // a reliability-first session on a fragile flow should, over cycles,
    // raise recoverability vs the original design
    let (mut flow, ids) = datagen::fig2::purchases_flow();
    flow.op_mut(ids.derive_values).unwrap().cost.failure_rate = 0.15;
    let catalog = datagen::fig2::purchases_catalog(200, &DirtProfile::demo(), 3);
    let base_v = quality::evaluate(
        &flow,
        &simulate(&flow, &catalog, &SimConfig::default()).unwrap(),
    );
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let config = PlannerConfig {
        policy: fcp::DeploymentPolicy::reliability_first(),
        objective: poiesis::Objective::new()
            .maximize(Characteristic::Reliability)
            .maximize(Characteristic::Performance),
        ..PlannerConfig::default()
    };
    let mut session = Session::new(Planner::new(flow, catalog.clone(), registry, config));
    session.auto_run(2).unwrap();
    let final_flow = session.current_flow();
    let final_v = quality::evaluate(
        final_flow,
        &simulate(final_flow, &catalog, &SimConfig::default()).unwrap(),
    );
    assert!(
        final_v.get(MeasureId::Recoverability).unwrap()
            > base_v.get(MeasureId::Recoverability).unwrap(),
        "reliability-first session must raise recoverability: {:?} -> {:?}",
        base_v.get(MeasureId::Recoverability),
        final_v.get(MeasureId::Recoverability)
    );
    assert!(!final_flow.ops_of_kind("checkpoint").is_empty());
}

#[test]
fn planner_skyline_has_no_dominated_point() {
    let (flow, _) = datagen::tpcds::tpcds_flow();
    let catalog = datagen::tpcds::tpcds_catalog(200, &DirtProfile::demo(), 4);
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let planner = Planner::new(flow, catalog, registry, PlannerConfig::default());
    let out = planner.plan().unwrap();
    for &i in &out.skyline {
        for (j, other) in out.alternatives.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(
                !poiesis::skyline::dominates(&other.scores, &out.alternatives[i].scores),
                "skyline member {} dominated by {}",
                out.alternatives[i].name,
                other.name
            );
        }
    }
}

#[test]
fn report_drilldown_consistent_with_measures() {
    let (flow, _) = datagen::tpch::tpch_flow();
    let catalog = datagen::tpch::tpch_catalog(200, &DirtProfile::demo(), 5);
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let planner = Planner::new(flow, catalog, registry, PlannerConfig::default());
    let out = planner.plan().unwrap();
    let alt = out.skyline_alternatives().next().unwrap();
    let report = out.report(alt);
    // every detail row's value matches the alternative's measure vector
    for c in Characteristic::ALL {
        for d in report.expand(c) {
            assert_eq!(Some(d.value), alt.measures.get(d.id));
            assert_eq!(Some(d.baseline), out.baseline.get(d.id));
        }
    }
}
