//! Fast canary that the workspace wiring stays intact.
//!
//! Unlike the other integration tests, this one reaches every crate through
//! the `poiesis-workspace` umbrella re-exports, so a broken `pub use` in
//! `src/lib.rs` or a dropped manifest dependency fails here even if the
//! direct-dependency tests still pass. It builds the smallest useful
//! `EtlFlow`, runs one Planner cycle, and checks the skyline is non-empty.

use poiesis_workspace::datagen::{Catalog, DirtProfile, TableSpec};
use poiesis_workspace::etl_model::expr::Expr;
use poiesis_workspace::etl_model::{Attribute, DataType, EtlFlow, Operation, Schema};
use poiesis_workspace::fcp::PatternRegistry;
use poiesis_workspace::poiesis::{Planner, PlannerConfig};
use poiesis_workspace::{flowgraph, quality, simulator, viz, xlm};

#[test]
fn one_planner_cycle_through_the_umbrella() {
    let schema = Schema::new(vec![
        Attribute::required("id", DataType::Int),
        Attribute::new("amount", DataType::Float),
    ]);
    let mut flow = EtlFlow::new("smoke");
    let ext = flow.add_op(Operation::extract("src", schema.clone()));
    let fil = flow.add_op(Operation::filter(
        "positive",
        Expr::col("amount").gt(Expr::lit_f(0.0)),
    ));
    let load = flow.add_op(Operation::load("dw"));
    flow.connect(ext, fil).unwrap();
    flow.connect(fil, load).unwrap();
    flow.validate().unwrap();

    let mut catalog = Catalog::new();
    catalog.add_generated(
        &TableSpec::new("src", schema, 100, "id"),
        &DirtProfile::demo(),
        7,
    );

    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let planner = Planner::new(flow, catalog, registry, PlannerConfig::default());
    let outcome = planner.plan().expect("planning succeeds");

    assert!(
        !outcome.skyline.is_empty(),
        "planner produced an empty skyline"
    );
    assert!(
        outcome.skyline.len() <= outcome.alternatives.len(),
        "skyline cannot exceed the alternative set"
    );
    // Every skyline member must carry a score per planning dimension.
    let dims = outcome
        .skyline_alternatives()
        .next()
        .expect("non-empty skyline has a first member")
        .scores
        .len();
    assert!(dims > 0, "alternatives carry no scores");
}

#[test]
fn sibling_crates_resolve_through_the_umbrella() {
    // One cheap call into each re-exported crate that the planner cycle
    // above does not touch directly.
    let g: flowgraph::DiGraph<u32, u32> = flowgraph::DiGraph::new();
    assert!(flowgraph::is_dag(&g));

    let (flow, _) = poiesis_workspace::datagen::fig2::purchases_flow();
    let catalog = poiesis_workspace::datagen::fig2::purchases_catalog(20, &DirtProfile::clean(), 1);

    let xml = xlm::write_flow(&flow);
    assert_eq!(xlm::read_flow(&xml).unwrap().op_count(), flow.op_count());

    let trace = simulator::simulate(&flow, &catalog, &simulator::SimConfig::default()).unwrap();
    let measures = quality::evaluate(&flow, &trace);
    assert!(measures.get(quality::MeasureId::CycleTimeMs).unwrap() > 0.0);

    let stats = quality::source_stats(&catalog);
    let estimate = quality::estimate(&flow, &stats);
    let report = quality::QualityReport::build("smoke", &estimate, &estimate);
    assert!(!viz::render_bars(&report, false).is_empty());
}
