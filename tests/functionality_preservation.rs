//! The defining FCP property (§2.2): patterns "improve certain quality
//! characteristics, but do not alter [the flow's] main functionality".
//!
//! For structure/config patterns (ParallelizeTask, AddCheckpoint, the graph
//! patterns) the loaded data must be *identical* up to row order. For
//! cleaning patterns the loaded data may only shrink (rows dropped) or be
//! repaired towards the clean reference — never invent rows.

use datagen::DirtProfile;
use etl_model::{EtlFlow, Tuple, Value};
use fcp::{PatternContext, PatternRegistry};
use simulator::{simulate, SimConfig, Trace};

fn sorted_load_keys(trace: &Trace) -> Vec<String> {
    let mut keys: Vec<String> = trace
        .loads
        .iter()
        .flat_map(|l| l.rows.iter().map(row_key))
        .collect();
    keys.sort();
    keys
}

fn row_key(row: &Tuple) -> String {
    row.iter()
        .map(Value::group_key)
        .collect::<Vec<_>>()
        .join("|")
}

fn for_each_application(
    flow: &EtlFlow,
    catalog: &datagen::Catalog,
    mut check: impl FnMut(&str, &EtlFlow, &Trace, &Trace),
) {
    let registry = PatternRegistry::standard_for_catalog(catalog);
    let cfg = SimConfig::default();
    let base_trace = simulate(flow, catalog, &cfg).unwrap();
    let ctx = PatternContext::new(flow).unwrap();
    let candidates: Vec<(String, fcp::ApplicationPoint)> = registry
        .iter()
        .flat_map(|p| {
            p.candidate_points(&ctx)
                .into_iter()
                .map(move |pt| (p.name().to_string(), pt))
        })
        .collect();
    drop(ctx);
    for (name, pt) in candidates {
        let pattern = registry.by_name(&name).unwrap();
        let mut g = flow.fork("probe");
        if pattern.apply(&mut g, pt).is_err() {
            continue;
        }
        let t = simulate(&g, catalog, &cfg).unwrap();
        check(&name, &g, &base_trace, &t);
    }
}

#[test]
fn structural_patterns_preserve_loaded_data_exactly() {
    let (flow, _) = datagen::fig2::purchases_flow();
    let catalog = datagen::fig2::purchases_catalog(200, &DirtProfile::demo(), 6);
    let preserving = [
        "ParallelizeTask",
        "AddCheckpoint",
        "EncryptChannels",
        "EnableAccessControl",
        "UpgradeResources",
        "IncreaseRecurrence",
    ];
    let mut checked = 0;
    for_each_application(&flow, &catalog, |name, _alt, base, t| {
        if preserving.contains(&name) {
            assert_eq!(
                sorted_load_keys(base),
                sorted_load_keys(t),
                "{name} altered the loaded data"
            );
            checked += 1;
        }
    });
    assert!(
        checked >= 6,
        "expected several preserving applications, got {checked}"
    );
}

#[test]
fn cleaning_patterns_never_invent_rows() {
    let (flow, _) = datagen::fig2::purchases_flow();
    let catalog = datagen::fig2::purchases_catalog(200, &DirtProfile::filthy(), 6);
    let mut checked = 0;
    for_each_application(&flow, &catalog, |name, _alt, base, t| {
        match name {
            "FilterNullValues" | "RemoveDuplicateEntries" => {
                // cleaned loads are a (multiset) subset of the base loads
                assert!(
                    t.rows_loaded() <= base.rows_loaded(),
                    "{name} grew the load from {} to {}",
                    base.rows_loaded(),
                    t.rows_loaded()
                );
                let base_keys = sorted_load_keys(base);
                for k in sorted_load_keys(t) {
                    assert!(
                        base_keys.binary_search(&k).is_ok(),
                        "{name} invented row {k}"
                    );
                }
                checked += 1;
            }
            "CrosscheckSources" => {
                // Repair changes values, not row identity. Cardinality can
                // still move when the repair happens *upstream* of a filter:
                // rows whose keys/dates were broken now pass the quality
                // gate (more rows is the expected direction — repaired data
                // qualifies where broken data did not).
                assert!(
                    t.rows_loaded() >= base.rows_loaded(),
                    "{name} lost rows: {} -> {}",
                    base.rows_loaded(),
                    t.rows_loaded()
                );
                assert!(
                    t.rows_loaded() <= base.rows_loaded() * 13 / 10,
                    "{name} inflated rows implausibly: {} -> {}",
                    base.rows_loaded(),
                    t.rows_loaded()
                );
                checked += 1;
            }
            _ => {}
        }
    });
    assert!(
        checked >= 10,
        "expected many cleaning applications, got {checked}"
    );
}

#[test]
fn combined_patterns_still_preserve_semantics() {
    // a parallelize + checkpoint + encrypt combination must keep loads
    // byte-identical to the base flow
    use poiesis::apply::apply_combination;
    use poiesis::generate::generate_uncapped;

    let (flow, ids) = datagen::fig2::purchases_flow();
    let catalog = datagen::fig2::purchases_catalog(200, &DirtProfile::demo(), 6);
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let cands = generate_uncapped(&flow, &registry).unwrap();
    let par = cands
        .iter()
        .find(|c| {
            c.pattern.name() == "ParallelizeTask"
                && c.point == fcp::ApplicationPoint::Node(ids.derive_values)
        })
        .unwrap();
    let cp = cands
        .iter()
        .find(|c| c.pattern.name() == "AddCheckpoint")
        .unwrap();
    let enc = cands
        .iter()
        .find(|c| c.pattern.name() == "EncryptChannels")
        .unwrap();
    let (alt, applied) = apply_combination(&flow, &[par, cp, enc], "combo").unwrap();
    assert_eq!(applied.len(), 3);

    let cfg = SimConfig::default();
    let base = simulate(&flow, &catalog, &cfg).unwrap();
    let t = simulate(&alt, &catalog, &cfg).unwrap();
    assert_eq!(sorted_load_keys(&base), sorted_load_keys(&t));
    // and the combination kept its quality promises directionally
    let vb = quality::evaluate(&flow, &base);
    let va = quality::evaluate(&alt, &t);
    assert!(
        va.get(quality::MeasureId::SecurityScore).unwrap()
            > vb.get(quality::MeasureId::SecurityScore).unwrap()
    );
}
