//! Cross-crate property-based tests: skyline laws, xLM/expression
//! round-trips over generated inputs, and estimator sanity over random
//! flow perturbations.

use etl_model::expr::Expr;
use etl_model::Value;
use proptest::prelude::*;

// ------------------------------------------------------------- skyline laws

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..max, 2usize..4).prop_flat_map(|(n, dims)| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..200.0, dims..=dims), n..=n)
    })
}

proptest! {
    #[test]
    fn skyline_members_are_mutually_incomparable(points in arb_points(120)) {
        let sky = poiesis::pareto_skyline(&points);
        for (a, &i) in sky.iter().enumerate() {
            for &j in sky.iter().skip(a + 1) {
                prop_assert!(!poiesis::skyline::dominates(&points[i], &points[j]));
                prop_assert!(!poiesis::skyline::dominates(&points[j], &points[i]));
            }
        }
    }

    #[test]
    fn every_non_skyline_point_is_dominated(points in arb_points(80)) {
        let sky = poiesis::pareto_skyline(&points);
        for i in 0..points.len() {
            if sky.contains(&i) {
                continue;
            }
            prop_assert!(
                points.iter().any(|p| poiesis::skyline::dominates(p, &points[i])),
                "point {i} excluded but not dominated"
            );
        }
    }

    #[test]
    fn skyline_algorithms_agree(points in arb_points(100)) {
        prop_assert_eq!(
            poiesis::pareto_skyline_bnl(&points),
            poiesis::pareto_skyline_sorted(&points)
        );
    }

    #[test]
    fn incremental_skyline_set_agrees_with_batch(points in arb_points(120)) {
        // dims 2–4 via arb_points; any insertion order must converge on the
        // batch frontier
        let mut set = poiesis::SkylineSet::new();
        for (i, p) in points.iter().enumerate() {
            set.insert(i, p.clone());
        }
        prop_assert_eq!(set.ids(), poiesis::pareto_skyline_bnl(&points));
        prop_assert_eq!(set.ids(), poiesis::pareto_skyline_sorted(&points));
        let mut reversed = poiesis::SkylineSet::new();
        for (i, p) in points.iter().enumerate().rev() {
            reversed.insert(i, p.clone());
        }
        prop_assert_eq!(reversed.ids(), set.ids());
    }
}

// ------------------------------------------- streaming engine equivalence

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn streaming_exhaustive_matches_materialized_skyline(
        depth in 1usize..3,
        top_k in 3usize..7,
        budget in 50usize..400,
        retain in any::<bool>(),
    ) {
        let (flow, _) = datagen::fig2::purchases_flow();
        let catalog = datagen::fig2::purchases_catalog(80, &datagen::DirtProfile::demo(), 3);
        let registry = fcp::PatternRegistry::standard_for_catalog(&catalog);
        let mut policy = fcp::DeploymentPolicy::exhaustive(depth);
        policy.top_k_points_per_pattern = top_k;
        let config = poiesis::PlannerConfig {
            policy,
            max_alternatives: budget,
            retain_dominated: retain,
            ..poiesis::PlannerConfig::default()
        };
        let planner = poiesis::Planner::new(flow, catalog, registry, config);
        let streaming = planner.plan().unwrap();
        let eager = planner.plan_materialized().unwrap();
        // identical frontier identity, whatever the budget/policy/retention
        prop_assert_eq!(streaming.skyline_names(), eager.skyline_names());
        prop_assert_eq!(&streaming.stats, &eager.stats);
        if retain {
            // full layout equivalence when everything is retained
            prop_assert_eq!(streaming.alternatives.len(), eager.alternatives.len());
            prop_assert_eq!(&streaming.skyline, &eager.skyline);
        } else {
            prop_assert_eq!(streaming.alternatives.len(), streaming.skyline.len());
        }
    }
}

// -------------------------------------------------- expression text roundtrip

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[a-z ']{0,12}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        (-40_000i64..40_000).prop_map(Value::Date),
        any::<i32>().prop_map(|t| Value::Timestamp(t as i64)),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(Expr::Col),
        arb_value().prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.lt(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
            inner.clone().prop_map(|a| a.is_null()),
            proptest::collection::vec(inner, 1..4).prop_map(Expr::Coalesce),
        ]
    })
}

proptest! {
    #[test]
    fn expression_text_roundtrips(e in arb_expr()) {
        let text = xlm::expr_text::write_expr(&e);
        let parsed = xlm::expr_text::parse_expr(&text)
            .map_err(|err| TestCaseError::fail(format!("parse `{text}`: {err}")))?;
        prop_assert_eq!(parsed, e);
    }
}

// ----------------------------------------------------- xLM flow perturbations

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn xlm_roundtrips_randomly_patterned_flows(picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..4)) {
        let (mut flow, _) = datagen::fig2::purchases_flow();
        let catalog = datagen::fig2::purchases_catalog(50, &datagen::DirtProfile::demo(), 9);
        let registry = fcp::PatternRegistry::standard_for_catalog(&catalog);
        // apply a random sequence of pattern applications
        for pick in picks {
            let ctx = fcp::PatternContext::new(&flow).unwrap();
            let mut cands = Vec::new();
            for p in registry.iter() {
                for pt in p.candidate_points(&ctx) {
                    cands.push((p.clone(), pt));
                }
            }
            drop(ctx);
            if cands.is_empty() {
                break;
            }
            let (p, pt) = &cands[pick.index(cands.len())];
            let _ = p.apply(&mut flow, *pt);
        }
        flow.validate().unwrap();
        let xml = xlm::write_flow(&flow);
        let back = xlm::read_flow(&xml).unwrap();
        prop_assert_eq!(back.op_count(), flow.op_count());
        prop_assert_eq!(back.edge_count(), flow.edge_count());
        // simulation equivalence: identical traces row-for-row
        let cfg = simulator::SimConfig::default();
        let t1 = simulator::simulate(&flow, &catalog, &cfg).unwrap();
        let t2 = simulator::simulate(&back, &catalog, &cfg).unwrap();
        prop_assert_eq!(t1.rows_loaded(), t2.rows_loaded());
        prop_assert!((t1.cycle_time_ms - t2.cycle_time_ms).abs() < 1e-9);
    }
}
