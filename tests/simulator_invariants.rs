//! Simulator invariants under random workload parameters: timing
//! monotonicity, row conservation, and estimator/simulator directional
//! agreement.

use datagen::fig2::{purchases_catalog, purchases_flow};
use datagen::DirtProfile;
use proptest::prelude::*;
use simulator::{simulate, SimConfig};

fn dirt(null_rate: f64, dup_rate: f64, stale: f64) -> DirtProfile {
    DirtProfile {
        null_rate,
        dup_rate,
        corrupt_rate: 0.0,
        staleness_hours: stale,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// More input rows never make the flow faster.
    #[test]
    fn cycle_time_monotone_in_scale(base in 50usize..150) {
        let (flow, _) = purchases_flow();
        let small = purchases_catalog(base, &DirtProfile::clean(), 3);
        let large = purchases_catalog(base * 4, &DirtProfile::clean(), 3);
        let cfg = SimConfig::default();
        let t_small = simulate(&flow, &small, &cfg).unwrap();
        let t_large = simulate(&flow, &large, &cfg).unwrap();
        prop_assert!(t_large.cycle_time_ms > t_small.cycle_time_ms);
        prop_assert!(t_large.rows_loaded() >= t_small.rows_loaded());
    }

    /// Loads can never exceed what the sources provided (the purchases flow
    /// contains no row-multiplying operator).
    #[test]
    fn loads_bounded_by_extracts(scale in 50usize..200, nr in 0.0f64..0.3, dr in 0.0f64..0.3) {
        let (flow, _) = purchases_flow();
        let catalog = purchases_catalog(scale, &dirt(nr, dr, 1.0), 7);
        let trace = simulate(&flow, &catalog, &SimConfig::default()).unwrap();
        let extracted: usize = trace
            .ops
            .iter()
            .filter(|o| o.kind == "extract")
            .map(|o| o.rows_out)
            .sum();
        prop_assert!(trace.rows_loaded() <= extracted);
        // and each op's trace is time-consistent
        for op in &trace.ops {
            prop_assert!(op.end_ms >= op.start_ms, "{} ends before it starts", op.name);
        }
    }

    /// Dirtier sources never yield *better* estimated data quality.
    #[test]
    fn estimator_dq_monotone_in_dirt(nr in 0.05f64..0.3) {
        let (flow, _) = purchases_flow();
        let clean_cat = purchases_catalog(120, &DirtProfile::clean(), 5);
        let dirty_cat = purchases_catalog(120, &dirt(nr, 0.1, 1.0), 5);
        let clean = quality::estimate(&flow, &quality::source_stats(&clean_cat));
        let dirty = quality::estimate(&flow, &quality::source_stats(&dirty_cat));
        let m = quality::MeasureId::Completeness;
        prop_assert!(dirty.get(m).unwrap() <= clean.get(m).unwrap() + 1e-9);
        let u = quality::MeasureId::Uniqueness;
        prop_assert!(dirty.get(u).unwrap() <= clean.get(u).unwrap() + 1e-9);
    }

    /// Failure injection only ever adds time, never changes the data.
    #[test]
    fn failures_add_time_not_rows(seed in 0u64..500) {
        let (mut flow, ids) = purchases_flow();
        flow.op_mut(ids.derive_values).unwrap().cost.failure_rate = 0.5;
        let catalog = purchases_catalog(100, &DirtProfile::clean(), 2);
        let clean = simulate(&flow, &catalog, &SimConfig { seed, inject_failures: false }).unwrap();
        let faulty = simulate(&flow, &catalog, &SimConfig { seed, inject_failures: true }).unwrap();
        prop_assert!(faulty.cycle_time_ms >= clean.cycle_time_ms);
        prop_assert_eq!(faulty.rows_loaded(), clean.rows_loaded());
        prop_assert!(faulty.total_redo_ms >= 0.0);
        if faulty.failures > 0 {
            prop_assert!(faulty.total_redo_ms > 0.0);
        }
    }
}
