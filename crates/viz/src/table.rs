//! Plain-text tables (Fig. 1 / Fig. 6 style listings).

/// Renders a header + rows as an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| format!("+{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "+\n";
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!("| {cell:<w$} "));
        }
        line.push_str("|\n");
        line
    };
    let mut out = String::new();
    out.push_str(&sep);
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out.push_str(&sep);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_table() {
        let t = render_table(
            &["FCP", "Related quality attribute"],
            &[
                vec!["FilterNullValues".into(), "Data Quality".into()],
                vec!["AddCheckpoint".into(), "Reliability".into()],
            ],
        );
        assert!(t.contains("| FCP "));
        assert!(t.contains("| FilterNullValues "));
        let widths: Vec<usize> = t.lines().map(|l| l.chars().count()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "all lines same width"
        );
    }

    #[test]
    fn short_rows_padded() {
        let t = render_table(&["a", "b"], &[vec!["only-a".into()]]);
        assert!(t.contains("| only-a |"));
    }
}
