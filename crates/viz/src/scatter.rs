//! The Fig. 4 multidimensional scatter-plot, as ASCII art and SVG.

use std::fmt::Write as _;

/// One point of the scatter-plot: an alternative ETL flow positioned by its
/// characteristic scores.
#[derive(Debug, Clone)]
pub struct ScatterPoint {
    /// Label (flow name).
    pub label: String,
    /// X coordinate (first quality dimension).
    pub x: f64,
    /// Y coordinate (second quality dimension).
    pub y: f64,
    /// Optional third dimension, encoded as glyph intensity.
    pub z: Option<f64>,
    /// Whether this point is on the Pareto frontier.
    pub on_skyline: bool,
}

fn bounds(points: &[ScatterPoint]) -> (f64, f64, f64, f64) {
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for p in points {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    if (max_x - min_x).abs() < 1e-9 {
        max_x = min_x + 1.0;
    }
    if (max_y - min_y).abs() < 1e-9 {
        max_y = min_y + 1.0;
    }
    (min_x, max_x, min_y, max_y)
}

/// Renders an ASCII scatter-plot of `width × height` characters.
///
/// Skyline points render as `◆`/`o` (high/low z); dominated points as `·`.
pub fn render_scatter(
    points: &[ScatterPoint],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    let width = width.max(10);
    let height = height.max(5);
    if points.is_empty() {
        return format!("(no points)\n x: {x_label}\n y: {y_label}\n");
    }
    let (min_x, max_x, min_y, max_y) = bounds(points);
    let (z_min, z_max) = points
        .iter()
        .filter_map(|p| p.z)
        .fold((f64::MAX, f64::MIN), |(lo, hi), z| (lo.min(z), hi.max(z)));

    let mut grid = vec![vec![' '; width]; height];
    for p in points {
        let cx = ((p.x - min_x) / (max_x - min_x) * (width - 1) as f64).round() as usize;
        let cy = ((p.y - min_y) / (max_y - min_y) * (height - 1) as f64).round() as usize;
        let row = height - 1 - cy;
        let glyph = if p.on_skyline {
            match p.z {
                Some(z) if z_max > z_min => {
                    if (z - z_min) / (z_max - z_min) > 0.5 {
                        '◆'
                    } else {
                        'o'
                    }
                }
                _ => '◆',
            }
        } else {
            '·'
        };
        // skyline glyphs win over dominated dots sharing a cell
        let cell = &mut grid[row][cx];
        if *cell == ' ' || *cell == '·' {
            *cell = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "  {y_label} ↑");
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    let _ = writeln!(out, "→ {x_label}");
    let _ = writeln!(
        out,
        "  ◆/o skyline (z high/low)   · dominated   [{} points, {} on frontier]",
        points.len(),
        points.iter().filter(|p| p.on_skyline).count()
    );
    out
}

/// Writes the scatter-plot as a standalone SVG document.
pub fn scatter_svg(
    points: &[ScatterPoint],
    width_px: usize,
    height_px: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    let margin = 40.0;
    let w = width_px as f64;
    let h = height_px as f64;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}" viewBox="0 0 {width_px} {height_px}">"#
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
    let _ = writeln!(
        svg,
        r#"<line x1="{margin}" y1="{y}" x2="{x2}" y2="{y}" stroke="black"/>"#,
        y = h - margin,
        x2 = w - margin / 2.0
    );
    let _ = writeln!(
        svg,
        r#"<line x1="{margin}" y1="{y1}" x2="{margin}" y2="{y2}" stroke="black"/>"#,
        y1 = h - margin,
        y2 = margin / 2.0
    );
    let _ = writeln!(
        svg,
        r#"<text x="{x}" y="{y}" font-size="12">{x_label}</text>"#,
        x = w / 2.0 - 30.0,
        y = h - 8.0
    );
    let _ = writeln!(
        svg,
        r#"<text x="12" y="{y}" font-size="12" transform="rotate(-90 12 {y})">{y_label}</text>"#,
        y = h / 2.0
    );
    if !points.is_empty() {
        let (min_x, max_x, min_y, max_y) = bounds(points);
        for p in points {
            let px = margin + (p.x - min_x) / (max_x - min_x) * (w - 1.5 * margin);
            let py = (h - margin) - (p.y - min_y) / (max_y - min_y) * (h - 1.5 * margin);
            let (r, fill) = if p.on_skyline {
                (4.0, "#d62728")
            } else {
                (2.0, "#9e9e9e")
            };
            let _ = writeln!(
                svg,
                r#"<circle cx="{px:.1}" cy="{py:.1}" r="{r}" fill="{fill}"><title>{}</title></circle>"#,
                xml_escape(&p.label)
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<ScatterPoint> {
        vec![
            ScatterPoint {
                label: "base".into(),
                x: 100.0,
                y: 100.0,
                z: Some(100.0),
                on_skyline: false,
            },
            ScatterPoint {
                label: "fast".into(),
                x: 150.0,
                y: 100.0,
                z: Some(90.0),
                on_skyline: true,
            },
            ScatterPoint {
                label: "safe".into(),
                x: 100.0,
                y: 140.0,
                z: Some(130.0),
                on_skyline: true,
            },
        ]
    }

    #[test]
    fn ascii_plot_contains_axes_and_counts() {
        let s = render_scatter(&pts(), 40, 12, "performance", "data quality");
        assert!(s.contains("performance"));
        assert!(s.contains("data quality"));
        assert!(s.contains("3 points, 2 on frontier"));
        assert!(s.contains('◆') || s.contains('o'));
        assert!(s.contains('·'));
    }

    #[test]
    fn empty_plot_does_not_panic() {
        let s = render_scatter(&[], 30, 10, "x", "y");
        assert!(s.contains("no points"));
    }

    #[test]
    fn degenerate_single_point() {
        let p = vec![ScatterPoint {
            label: "only".into(),
            x: 5.0,
            y: 5.0,
            z: None,
            on_skyline: true,
        }];
        let s = render_scatter(&p, 20, 8, "x", "y");
        assert!(s.contains('◆'));
    }

    #[test]
    fn svg_structure() {
        let svg = scatter_svg(&pts(), 400, 300, "perf", "dq");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("#d62728")); // skyline colour present
        assert!(svg.contains("<title>fast</title>"));
    }

    #[test]
    fn svg_escapes_labels() {
        let p = vec![ScatterPoint {
            label: "a<b&c".into(),
            x: 1.0,
            y: 1.0,
            z: None,
            on_skyline: true,
        }];
        let svg = scatter_svg(&p, 100, 100, "x", "y");
        assert!(svg.contains("a&lt;b&amp;c"));
    }
}
