//! `viz` — terminal and SVG renderings of the POIESIS visualisations.
//!
//! The original tool had an interactive GUI; the substance of its two views
//! is reproduced here as renderers the examples and bench binaries print:
//!
//! * [`scatter`]: the multidimensional scatter-plot of alternative flows
//!   (Fig. 4) — 2-D ASCII projection with the third dimension encoded in
//!   the glyph, plus an SVG writer for the same data;
//! * [`bars`]: the relative-change bar graph against the initial flow
//!   (Fig. 5), with the composite→detail drill-down;
//! * [`table`]: plain-text tables for the Fig. 1 / Fig. 6 style listings.

#![forbid(unsafe_code)]

pub mod bars;
pub mod scatter;
pub mod table;

pub use bars::render_bars;
pub use scatter::{render_scatter, scatter_svg, ScatterPoint};
pub use table::render_table;
