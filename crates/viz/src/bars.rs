//! The Fig. 5 bar graph: relative change of measures for an ETL flow,
//! compared with the initial flow as a baseline, with composite bars that
//! "expand" into detailed metrics.

use quality::{QualityReport, RelativeChange};
use std::fmt::Write as _;

const BAR_HALF_WIDTH: usize = 25;

fn bar(pct: f64) -> String {
    let clamped = pct.clamp(-100.0, 100.0);
    let cells = ((clamped.abs() / 100.0) * BAR_HALF_WIDTH as f64).round() as usize;
    let mut s = String::with_capacity(2 * BAR_HALF_WIDTH + 1);
    if clamped < 0.0 {
        s.push_str(&" ".repeat(BAR_HALF_WIDTH - cells));
        s.push_str(&"█".repeat(cells));
        s.push('|');
        s.push_str(&" ".repeat(BAR_HALF_WIDTH));
    } else {
        s.push_str(&" ".repeat(BAR_HALF_WIDTH));
        s.push('|');
        s.push_str(&"█".repeat(cells));
        s.push_str(&" ".repeat(BAR_HALF_WIDTH - cells));
    }
    s
}

fn detail_line(rc: &RelativeChange) -> String {
    format!(
        "      {:<36} {} {:+7.1}%  ({:.4} → {:.4})",
        rc.id.name(),
        bar(rc.improvement_pct),
        rc.improvement_pct,
        rc.baseline,
        rc.value
    )
}

/// Renders the Fig. 5 view for one alternative: one composite bar per
/// characteristic (score vs baseline-100), and — when `expand_all` — the
/// detailed measures under each (the click-to-expand interaction).
pub fn render_bars(report: &QualityReport, expand_all: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Relative change of measures — {} (baseline = 100)",
        report.flow_name
    );
    let _ = writeln!(
        out,
        "  {:<38} {:^width$} change",
        "characteristic",
        "worse  ←  |  →  better",
        width = 2 * BAR_HALF_WIDTH + 1
    );
    for c in &report.characteristics {
        if c.details.is_empty() {
            continue;
        }
        let pct = c.score - 100.0;
        let _ = writeln!(
            out,
            "  {:<38} {} {:+7.1}%",
            c.characteristic.name(),
            bar(pct),
            pct
        );
        if expand_all {
            for d in &c.details {
                let _ = writeln!(out, "{}", detail_line(d));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use quality::{MeasureId, MeasureVector};

    fn report() -> QualityReport {
        let mut base = MeasureVector::new();
        base.set(MeasureId::CycleTimeMs, 100.0);
        base.set(MeasureId::Completeness, 0.8);
        let mut alt = MeasureVector::new();
        alt.set(MeasureId::CycleTimeMs, 50.0);
        alt.set(MeasureId::Completeness, 0.72);
        QualityReport::build("alt_x", &base, &alt)
    }

    #[test]
    fn collapsed_view_shows_characteristics_only() {
        let s = render_bars(&report(), false);
        assert!(s.contains("performance"));
        assert!(s.contains("data quality"));
        assert!(!s.contains("process cycle time"));
        assert!(s.contains("alt_x"));
    }

    #[test]
    fn expanded_view_drills_down() {
        let s = render_bars(&report(), true);
        assert!(s.contains("process cycle time (ms)"));
        assert!(s.contains("completeness"));
        assert!(s.contains("0.8"));
    }

    #[test]
    fn improvement_and_regression_render_on_opposite_sides() {
        let s = render_bars(&report(), false);
        // performance improved (+100%), data quality regressed (-10%)
        let perf_line = s.lines().find(|l| l.contains("performance")).unwrap();
        let dq_line = s.lines().find(|l| l.contains("data quality")).unwrap();
        assert!(perf_line.contains("+"));
        assert!(dq_line.contains("-"));
        let bar_pos = |l: &str| l.find('|').unwrap();
        let perf_fill = perf_line[bar_pos(perf_line)..].matches('█').count();
        assert!(perf_fill > 0, "improvement fills right of the axis");
        let dq_fill = dq_line[..bar_pos(dq_line)].matches('█').count();
        assert!(dq_fill > 0, "regression fills left of the axis");
    }

    #[test]
    fn extreme_values_clamped() {
        let mut base = MeasureVector::new();
        base.set(MeasureId::CycleTimeMs, 1.0);
        let mut alt = MeasureVector::new();
        alt.set(MeasureId::CycleTimeMs, 1e9);
        let r = QualityReport::build("bad", &base, &alt);
        let s = render_bars(&r, true);
        // renders without panicking, bar capped at half width
        assert!(s.lines().all(|l| l.chars().count() < 140));
    }
}
