//! Total text serialisation for [`etl_model::expr::Expr`]: a writer and a
//! recursive-descent parser, so xLM documents can carry predicates and
//! derive expressions as readable strings.
//!
//! Grammar (priority low→high):
//!
//! ```text
//! expr    := or
//! or      := and ( "OR" and )*
//! and     := unary ( "AND" unary )*
//! unary   := "NOT" unary | cmp
//! cmp     := add ( ( "=" | "<>" | "<=" | ">=" | "<" | ">" ) add )?
//! add     := mul ( ( "+" | "-" ) mul )*
//! mul     := postfix ( ( "*" | "/" ) postfix )*
//! postfix := primary ( "IS" "NOT"? "NULL" )*
//! primary := "(" expr ")" | "COALESCE(" expr ("," expr)* ")"
//!          | "NULL" | "TRUE" | "FALSE"
//!          | "DATE(" int ")" | "TS(" int ")"
//!          | number | 'string' | identifier
//! ```
//!
//! Strings are single-quoted with `''` escaping. The writer fully
//! parenthesises binary operations, so `parse(write(e))` is the identity on
//! the AST (verified by property test).

use etl_model::expr::{BinOp, Expr};
use etl_model::Value;
use std::fmt;

/// Serialises an expression to the grammar above.
pub fn write_expr(e: &Expr) -> String {
    let mut s = String::new();
    write_into(e, &mut s);
    s
}

fn write_into(e: &Expr, out: &mut String) {
    match e {
        Expr::Col(c) => out.push_str(c),
        Expr::Lit(v) => match v {
            Value::Null => out.push_str("NULL"),
            Value::Bool(true) => out.push_str("TRUE"),
            Value::Bool(false) => out.push_str("FALSE"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                let s = format!("{f:?}"); // always keeps a decimal point / exponent
                out.push_str(&s);
            }
            Value::Str(s) => {
                out.push('\'');
                out.push_str(&s.replace('\'', "''"));
                out.push('\'');
            }
            Value::Date(d) => {
                out.push_str("DATE(");
                out.push_str(&d.to_string());
                out.push(')');
            }
            Value::Timestamp(t) => {
                out.push_str("TS(");
                out.push_str(&t.to_string());
                out.push(')');
            }
        },
        Expr::Bin(op, a, b) => {
            out.push('(');
            write_into(a, out);
            out.push(' ');
            out.push_str(op_symbol(*op));
            out.push(' ');
            write_into(b, out);
            out.push(')');
        }
        Expr::Not(a) => {
            // Self-parenthesised so a NOT may appear as an operand of any
            // binary operator (the AST is untyped; `a + NOT b` is writable).
            out.push_str("(NOT ");
            write_into(a, out);
            out.push(')');
        }
        Expr::IsNull(a) => {
            out.push('(');
            write_into(a, out);
            out.push_str(" IS NULL)");
        }
        Expr::Coalesce(xs) => {
            out.push_str("COALESCE(");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_into(x, out);
            }
            out.push(')');
        }
    }
}

fn op_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Eq => "=",
        BinOp::Ne => "<>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
    }
}

/// Expression parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprParseError {
    /// Byte offset.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ExprParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expression error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ExprParseError {}

/// Parses an expression in the module grammar.
pub fn parse_expr(input: &str) -> Result<Expr, ExprParseError> {
    let mut p = P { s: input, pos: 0 };
    p.ws();
    let e = p.or_expr()?;
    p.ws();
    if p.pos != input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct P<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> ExprParseError {
        ExprParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.s[self.pos..].chars().next()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, pat: &str) -> bool {
        if self.s[self.pos..].starts_with(pat) {
            self.pos += pat.len();
            true
        } else {
            false
        }
    }

    /// Case-sensitive keyword followed by a non-identifier char.
    fn keyword(&mut self, kw: &str) -> bool {
        let rest = &self.s[self.pos..];
        if let Some(tail) = rest.strip_prefix(kw) {
            let after = tail.chars().next();
            if !matches!(after, Some(c) if c.is_alphanumeric() || c == '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn or_expr(&mut self) -> Result<Expr, ExprParseError> {
        let mut e = self.and_expr()?;
        loop {
            self.ws();
            if self.keyword("OR") {
                self.ws();
                let rhs = self.and_expr()?;
                e = e.or(rhs);
            } else {
                return Ok(e);
            }
        }
    }

    fn and_expr(&mut self) -> Result<Expr, ExprParseError> {
        let mut e = self.unary()?;
        loop {
            self.ws();
            if self.keyword("AND") {
                self.ws();
                let rhs = self.unary()?;
                e = e.and(rhs);
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ExprParseError> {
        self.ws();
        if self.keyword("NOT") {
            self.ws();
            return Ok(self.unary()?.not());
        }
        self.cmp()
    }

    fn cmp(&mut self) -> Result<Expr, ExprParseError> {
        let lhs = self.add()?;
        self.ws();
        for (sym, op) in [
            ("<>", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("=", BinOp::Eq),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat(sym) {
                self.ws();
                let rhs = self.add()?;
                return Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn add(&mut self) -> Result<Expr, ExprParseError> {
        let mut e = self.mul()?;
        loop {
            self.ws();
            if self.eat("+") {
                self.ws();
                e = e.add(self.mul()?);
            } else if self.eat("-") {
                self.ws();
                e = e.sub(self.mul()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn mul(&mut self) -> Result<Expr, ExprParseError> {
        let mut e = self.postfix()?;
        loop {
            self.ws();
            if self.eat("*") {
                self.ws();
                e = e.mul(self.postfix()?);
            } else if self.eat("/") {
                self.ws();
                e = e.div(self.postfix()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn postfix(&mut self) -> Result<Expr, ExprParseError> {
        let mut e = self.primary()?;
        loop {
            self.ws();
            let save = self.pos;
            if self.keyword("IS") {
                self.ws();
                if self.keyword("NOT") {
                    self.ws();
                    if self.keyword("NULL") {
                        e = e.is_not_null();
                        continue;
                    }
                } else if self.keyword("NULL") {
                    e = e.is_null();
                    continue;
                }
                self.pos = save;
            }
            return Ok(e);
        }
    }

    fn primary(&mut self) -> Result<Expr, ExprParseError> {
        self.ws();
        if self.eat("(") {
            let e = self.or_expr()?;
            self.ws();
            if !self.eat(")") {
                return Err(self.err("expected `)`"));
            }
            // allow the postfix IS NULL the writer puts inside parens
            return self.postfix_tail(e);
        }
        if self.keyword("COALESCE") {
            self.ws();
            if !self.eat("(") {
                return Err(self.err("expected `(` after COALESCE"));
            }
            let mut args = vec![self.or_expr()?];
            loop {
                self.ws();
                if self.eat(",") {
                    args.push(self.or_expr()?);
                } else if self.eat(")") {
                    return Ok(Expr::Coalesce(args));
                } else {
                    return Err(self.err("expected `,` or `)` in COALESCE"));
                }
            }
        }
        if self.keyword("NULL") {
            return Ok(Expr::null());
        }
        if self.keyword("TRUE") {
            return Ok(Expr::lit_b(true));
        }
        if self.keyword("FALSE") {
            return Ok(Expr::lit_b(false));
        }
        if self.keyword("DATE") {
            return self.int_call().map(|v| Expr::Lit(Value::Date(v)));
        }
        if self.keyword("TS") {
            return self.int_call().map(|v| Expr::Lit(Value::Timestamp(v)));
        }
        match self.peek() {
            Some('\'') => self.string_lit(),
            Some(c) if c.is_ascii_digit() => self.number(false),
            // unary minus on a numeric literal
            Some('-') => {
                self.pos += 1;
                self.number(true)
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                    self.pos += 1;
                }
                Ok(Expr::col(&self.s[start..self.pos]))
            }
            _ => Err(self.err("expected a primary expression")),
        }
    }

    /// Continuation of postfix handling after a parenthesised expression
    /// (the writer emits `(x IS NULL)` with IS NULL inside the parens, but
    /// users may write `(x) IS NULL`).
    fn postfix_tail(&mut self, mut e: Expr) -> Result<Expr, ExprParseError> {
        loop {
            self.ws();
            let save = self.pos;
            if self.keyword("IS") {
                self.ws();
                if self.keyword("NOT") {
                    self.ws();
                    if self.keyword("NULL") {
                        e = e.is_not_null();
                        continue;
                    }
                } else if self.keyword("NULL") {
                    e = e.is_null();
                    continue;
                }
                self.pos = save;
            }
            return Ok(e);
        }
    }

    fn int_call(&mut self) -> Result<i64, ExprParseError> {
        self.ws();
        if !self.eat("(") {
            return Err(self.err("expected `(`"));
        }
        self.ws();
        let neg = self.eat("-");
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let v: i64 = self.s[start..self.pos]
            .parse()
            .map_err(|_| self.err("expected an integer"))?;
        self.ws();
        if !self.eat(")") {
            return Err(self.err("expected `)`"));
        }
        Ok(if neg { -v } else { v })
    }

    fn number(&mut self, negative: bool) -> Result<Expr, ExprParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some('.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let raw = &self.s[start..self.pos];
        if raw.is_empty() {
            return Err(self.err("expected a number"));
        }
        let sign = if negative { -1.0 } else { 1.0 };
        if is_float {
            let v: f64 = raw.parse().map_err(|_| self.err("bad float"))?;
            Ok(Expr::lit_f(sign * v))
        } else {
            let v: i64 = raw.parse().map_err(|_| self.err("bad integer"))?;
            Ok(Expr::lit_i(if negative { -v } else { v }))
        }
    }

    fn string_lit(&mut self) -> Result<Expr, ExprParseError> {
        debug_assert_eq!(self.peek(), Some('\''));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some('\'') => {
                    self.pos += 1;
                    if self.peek() == Some('\'') {
                        out.push('\'');
                        self.pos += 1;
                    } else {
                        return Ok(Expr::lit_s(out));
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string literal")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: &Expr) {
        let text = write_expr(e);
        let parsed =
            parse_expr(&text).unwrap_or_else(|err| panic!("failed to parse `{text}`: {err}"));
        assert_eq!(&parsed, e, "text was `{text}`");
    }

    #[test]
    fn literals_roundtrip() {
        roundtrip(&Expr::lit_i(42));
        roundtrip(&Expr::lit_i(-7));
        roundtrip(&Expr::lit_f(2.5));
        roundtrip(&Expr::lit_f(1.0e-9));
        roundtrip(&Expr::lit_s("plain"));
        roundtrip(&Expr::lit_s("it's quoted"));
        roundtrip(&Expr::lit_b(true));
        roundtrip(&Expr::lit_b(false));
        roundtrip(&Expr::null());
        roundtrip(&Expr::Lit(Value::Date(19000)));
        roundtrip(&Expr::Lit(Value::Timestamp(-5)));
    }

    #[test]
    fn operators_roundtrip() {
        let e = Expr::col("a")
            .add(Expr::col("b").mul(Expr::lit_i(2)))
            .sub(Expr::lit_f(0.5))
            .gt(Expr::lit_i(0))
            .and(
                Expr::col("s")
                    .eq(Expr::lit_s("HIGH"))
                    .or(Expr::col("x").is_null()),
            )
            .not();
        roundtrip(&e);
    }

    #[test]
    fn fig2_predicate_roundtrip() {
        let e = Expr::col("purchase_line_item_id")
            .eq(Expr::col("item_id"))
            .and(Expr::col("item_record_end_date").is_null())
            .and(Expr::col("store_record_end_date").is_null());
        roundtrip(&e);
    }

    #[test]
    fn coalesce_and_is_not_null() {
        roundtrip(&Expr::Coalesce(vec![
            Expr::col("a"),
            Expr::col("b").add(Expr::lit_i(1)),
            Expr::lit_i(0),
        ]));
        roundtrip(&Expr::col("a").is_not_null());
    }

    #[test]
    fn parses_hand_written_forms() {
        // unparenthesised with precedence
        let e = parse_expr("a + b * 2 > 10 AND NOT (c IS NULL)").unwrap();
        let expected = Expr::col("a")
            .add(Expr::col("b").mul(Expr::lit_i(2)))
            .gt(Expr::lit_i(10))
            .and(Expr::col("c").is_null().not());
        assert_eq!(e, expected);
        // postfix IS NULL outside parens
        assert_eq!(parse_expr("(a) IS NULL").unwrap(), Expr::col("a").is_null());
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse_expr("a +").is_err());
        assert!(parse_expr("'unterminated").is_err());
        assert!(parse_expr("(a").is_err());
        assert!(parse_expr("a b").is_err());
        assert!(parse_expr("").is_err());
    }

    #[test]
    fn keywords_do_not_swallow_identifiers() {
        // ANDREW is a column, not AND + REW
        let e = parse_expr("ANDREW > 1").unwrap();
        assert_eq!(e, Expr::col("ANDREW").gt(Expr::lit_i(1)));
        let e = parse_expr("NULLABLE = 1").unwrap();
        assert_eq!(e, Expr::col("NULLABLE").eq(Expr::lit_i(1)));
    }
}
