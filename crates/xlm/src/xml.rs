//! A minimal, dependency-free XML document model, parser and writer.
//!
//! Scope: what the xLM and PDI formats need — elements, attributes
//! (single- or double-quoted), text content, comments, processing
//! instructions/prolog (skipped), self-closing tags, and the five
//! predefined entities. No namespaces, DTDs or CDATA.

use std::fmt;

/// One XML element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XmlNode {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly under this element (trimmed).
    pub text: String,
}

impl XmlNode {
    /// New element with a tag name.
    pub fn new(name: impl Into<String>) -> Self {
        XmlNode {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Builder: adds an attribute.
    pub fn attr(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.attrs.push((key.into(), value.to_string()));
        self
    }

    /// Builder: adds a child.
    pub fn child(mut self, child: XmlNode) -> Self {
        self.children.push(child);
        self
    }

    /// Builder: sets text content.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Attribute lookup.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First child with the given tag name.
    pub fn find(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Serialises the element (and subtree) with 2-space indentation.
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write_into(out, depth + 1);
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// Escapes the five predefined entities.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, ch)) = chars.next() {
        if ch != '&' {
            out.push(ch);
            continue;
        }
        let rest = &s[i..];
        let end = rest
            .find(';')
            .ok_or_else(|| XmlError::at(i, "unterminated entity"))?;
        let ent = &rest[1..end];
        out.push(match ent {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ => return Err(XmlError::at(i, "unknown entity")),
        });
        // skip the entity body
        for _ in 0..end {
            chars.next();
        }
    }
    Ok(out)
}

/// Parse errors with byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl XmlError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        XmlError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<char> {
        self.s[self.pos..].chars().next()
    }

    fn starts_with(&self, pat: &str) -> bool {
        self.s[self.pos..].starts_with(pat)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn expect(&mut self, pat: &str) -> Result<(), XmlError> {
        if self.starts_with(pat) {
            self.pos += pat.len();
            Ok(())
        } else {
            Err(XmlError::at(self.pos, format!("expected `{pat}`")))
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                let end = self.s[self.pos..]
                    .find("-->")
                    .ok_or_else(|| XmlError::at(self.pos, "unterminated comment"))?;
                self.pos += end + 3;
            } else if self.starts_with("<?") {
                let end = self.s[self.pos..]
                    .find("?>")
                    .ok_or_else(|| XmlError::at(self.pos, "unterminated processing instruction"))?;
                self.pos += end + 2;
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || "_-.:".contains(c)) {
            self.bump();
        }
        if self.pos == start {
            return Err(XmlError::at(start, "expected a name"));
        }
        Ok(self.s[start..self.pos].to_string())
    }

    fn attribute(&mut self) -> Result<(String, String), XmlError> {
        let key = self.name()?;
        self.skip_ws();
        self.expect("=")?;
        self.skip_ws();
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(XmlError::at(self.pos, "expected quoted attribute value")),
        };
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                break;
            }
            self.bump();
        }
        let raw = &self.s[start..self.pos];
        self.expect(&quote.to_string())?;
        Ok((key, unescape(raw)?))
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        self.expect("<")?;
        let name = self.name()?;
        let mut node = XmlNode::new(name);
        loop {
            self.skip_ws();
            if self.starts_with("/>") {
                self.pos += 2;
                return Ok(node);
            }
            if self.starts_with(">") {
                self.pos += 1;
                break;
            }
            node.attrs.push(self.attribute()?);
        }
        // content
        let mut text = String::new();
        loop {
            if self.starts_with("<!--") || self.starts_with("<?") {
                self.skip_misc()?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != node.name {
                    return Err(XmlError::at(
                        self.pos,
                        format!("mismatched close tag `{close}` for `{}`", node.name),
                    ));
                }
                self.skip_ws();
                self.expect(">")?;
                node.text = unescape(text.trim())?;
                return Ok(node);
            }
            if self.starts_with("<") {
                node.children.push(self.element()?);
                continue;
            }
            match self.bump() {
                Some(c) => text.push(c),
                None => return Err(XmlError::at(self.pos, "unexpected end of input")),
            }
        }
    }
}

/// Parses a document, returning its root element.
pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
    let mut p = Parser { s: input, pos: 0 };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos != input.len() {
        return Err(XmlError::at(p.pos, "trailing content after root element"));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_document() {
        let doc = r#"<?xml version="1.0"?>
<!-- a flow -->
<flow name="demo">
  <node id="n0" type="extract"/>
  <node id="n1" type="load">text here</node>
</flow>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "flow");
        assert_eq!(root.get_attr("name"), Some("demo"));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[1].text, "text here");
        assert_eq!(root.find("node").unwrap().get_attr("id"), Some("n0"));
        assert_eq!(root.find_all("node").count(), 2);
    }

    #[test]
    fn entities_roundtrip() {
        let doc = r#"<a v="x &amp; y &lt; z">&quot;hi&apos;&gt;</a>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.get_attr("v"), Some("x & y < z"));
        assert_eq!(root.text, "\"hi'>");
    }

    #[test]
    fn single_quoted_attributes() {
        let root = parse(r#"<a v='single "inner"'/>"#).unwrap();
        assert_eq!(root.get_attr("v"), Some("single \"inner\""));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(parse("<!-- oops <a/>").is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&bogus;</a>").is_err());
    }

    #[test]
    fn writer_then_parser_roundtrip() {
        let node = XmlNode::new("design")
            .attr("name", "x & y")
            .child(
                XmlNode::new("node")
                    .attr("id", "n0")
                    .attr("expr", "(a > 1) AND 'it''s'")
                    .with_text("some <text>"),
            )
            .child(XmlNode::new("empty"));
        let xml = node.to_xml();
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed, node);
    }

    #[test]
    fn deep_nesting_roundtrip() {
        let mut node = XmlNode::new("leaf").attr("depth", 0);
        for d in 1..30 {
            node = XmlNode::new("level").attr("depth", d).child(node);
        }
        let parsed = parse(&node.to_xml()).unwrap();
        assert_eq!(parsed, node);
    }
}
