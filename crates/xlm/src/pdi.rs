//! PDI (Pentaho Data Integration / Kettle) `.ktr` subset importer.
//!
//! The paper lists PDI as the second supported input format. A `.ktr` file
//! is a `<transformation>` document with `<step>` elements and an
//! `<order>/<hop>` wiring section. This importer maps the common step types
//! onto the operator taxonomy:
//!
//! | PDI step `<type>` | operator |
//! |---|---|
//! | `TableInput` | Extract (fields from `<fields>`) |
//! | `FilterRows` | Filter (condition from `<condition>` text, expression grammar) |
//! | `Calculator` | Derive |
//! | `SelectValues` | Project |
//! | `Unique` | Dedup |
//! | `SortRows` | Sort |
//! | `MergeJoin` | Join |
//! | `Append`/`SortedMerge` | Merge |
//! | `SwitchCase` | Router |
//! | `TableOutput` | Load |
//!
//! Unknown step types are rejected with a clear error rather than silently
//! skipped — an imported flow must mean what the source meant.

use crate::expr_text::parse_expr;
use crate::xlm::XlmError;
use crate::xml::{parse, XmlNode};
use etl_model::{AggFunc, Channel, DataType, EtlFlow, NodeId, OpKind, Operation, Schema};
use std::collections::HashMap;

fn format_err(msg: impl Into<String>) -> XlmError {
    XlmError::Format(msg.into())
}

fn step_fields(step: &XmlNode) -> Result<Schema, XlmError> {
    let mut attrs = Vec::new();
    if let Some(fields) = step.find("fields") {
        for f in fields.find_all("field") {
            let name = f
                .find("name")
                .map(|n| n.text.clone())
                .filter(|t| !t.is_empty())
                .ok_or_else(|| format_err("field without <name>"))?;
            let dtype = f
                .find("type")
                .and_then(|t| DataType::parse(&t.text.to_lowercase()))
                .unwrap_or(DataType::Str);
            let nullable = f.find("nullable").is_none_or(|n| n.text != "N");
            attrs.push(etl_model::Attribute {
                name,
                dtype,
                nullable,
                sensitive: false,
            });
        }
    }
    Ok(Schema::new(attrs))
}

fn text_of(step: &XmlNode, tag: &str) -> Option<String> {
    step.find(tag)
        .map(|n| n.text.clone())
        .filter(|t| !t.is_empty())
}

fn convert_step(step: &XmlNode) -> Result<Operation, XlmError> {
    let name = text_of(step, "name").ok_or_else(|| format_err("step without <name>"))?;
    let ty = text_of(step, "type").ok_or_else(|| format_err("step without <type>"))?;
    let kind = match ty.as_str() {
        "TableInput" => OpKind::Extract {
            source: text_of(step, "table").unwrap_or_else(|| name.clone()),
            schema: step_fields(step)?,
        },
        "TableOutput" => OpKind::Load {
            target: text_of(step, "table").unwrap_or_else(|| name.clone()),
        },
        "FilterRows" => OpKind::Filter {
            predicate: parse_expr(
                &text_of(step, "condition")
                    .ok_or_else(|| format_err("FilterRows without <condition>"))?,
            )
            .map_err(|e| format_err(e.to_string()))?,
        },
        "Calculator" => {
            let mut outputs = Vec::new();
            for c in step.find_all("calculation") {
                let field = text_of(c, "field_name")
                    .ok_or_else(|| format_err("calculation without <field_name>"))?;
                let expr = parse_expr(
                    &text_of(c, "formula")
                        .ok_or_else(|| format_err("calculation without <formula>"))?,
                )
                .map_err(|e| format_err(e.to_string()))?;
                outputs.push((field, expr));
            }
            OpKind::Derive { outputs }
        }
        "SelectValues" => {
            let keep = step
                .find("fields")
                .map(|fs| {
                    fs.find_all("field")
                        .filter_map(|f| text_of(f, "name"))
                        .collect()
                })
                .unwrap_or_default();
            OpKind::Project { keep }
        }
        "Unique" => OpKind::Dedup {
            keys: step
                .find("fields")
                .map(|fs| {
                    fs.find_all("field")
                        .filter_map(|f| text_of(f, "name"))
                        .collect()
                })
                .unwrap_or_default(),
        },
        "SortRows" => OpKind::Sort {
            by: step
                .find("fields")
                .map(|fs| {
                    fs.find_all("field")
                        .filter_map(|f| text_of(f, "name"))
                        .collect()
                })
                .unwrap_or_default(),
        },
        "MergeJoin" => OpKind::Join {
            left_key: text_of(step, "key_1")
                .ok_or_else(|| format_err("MergeJoin without key_1"))?,
            right_key: text_of(step, "key_2")
                .ok_or_else(|| format_err("MergeJoin without key_2"))?,
        },
        "Append" | "SortedMerge" => OpKind::Merge,
        "SwitchCase" => OpKind::Router {
            predicate: parse_expr(
                &text_of(step, "condition")
                    .ok_or_else(|| format_err("SwitchCase without <condition>"))?,
            )
            .map_err(|e| format_err(e.to_string()))?,
        },
        "GroupBy" => {
            let group_by = step
                .find("group")
                .map(|g| {
                    g.find_all("field")
                        .filter_map(|f| text_of(f, "name"))
                        .collect()
                })
                .unwrap_or_default();
            let mut aggs = Vec::new();
            if let Some(fields) = step.find("fields") {
                for f in fields.find_all("field") {
                    let out = text_of(f, "name").ok_or_else(|| format_err("agg without name"))?;
                    let func = text_of(f, "aggregate")
                        .and_then(|a| AggFunc::parse(&a.to_lowercase()))
                        .ok_or_else(|| format_err("bad aggregate function"))?;
                    let input =
                        text_of(f, "subject").ok_or_else(|| format_err("agg without subject"))?;
                    aggs.push((out, func, input));
                }
            }
            OpKind::Aggregate { group_by, aggs }
        }
        other => {
            return Err(format_err(format!(
                "unsupported PDI step type `{other}` (step `{name}`)"
            )))
        }
    };
    Ok(Operation::new(name, kind))
}

/// Imports a PDI `.ktr` transformation document into an [`EtlFlow`].
pub fn import_ktr(input: &str) -> Result<EtlFlow, XlmError> {
    let root = parse(input).map_err(|e| XlmError::Xml(e.to_string()))?;
    if root.name != "transformation" {
        return Err(format_err("root element must be <transformation>"));
    }
    let name = root
        .find("info")
        .and_then(|i| i.find("name"))
        .map(|n| n.text.clone())
        .filter(|t| !t.is_empty())
        .unwrap_or_else(|| "pdi_import".to_string());
    let mut flow = EtlFlow::new(name);
    let mut by_name: HashMap<String, NodeId> = HashMap::new();
    for step in root.find_all("step") {
        let op = convert_step(step)?;
        let step_name = op.name.clone();
        let id = flow.add_op(op);
        if by_name.insert(step_name.clone(), id).is_some() {
            return Err(format_err(format!("duplicate step name `{step_name}`")));
        }
    }
    let order = root
        .find("order")
        .ok_or_else(|| format_err("missing <order>"))?;
    for hop in order.find_all("hop") {
        let from = text_of(hop, "from").ok_or_else(|| format_err("hop without <from>"))?;
        let to = text_of(hop, "to").ok_or_else(|| format_err("hop without <to>"))?;
        let src = *by_name
            .get(&from)
            .ok_or_else(|| format_err(format!("hop references unknown step `{from}`")))?;
        let dst = *by_name
            .get(&to)
            .ok_or_else(|| format_err(format!("hop references unknown step `{to}`")))?;
        flow.graph
            .add_edge(src, dst, Channel::default())
            .map_err(|e| format_err(e.to_string()))?;
    }
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_KTR: &str = r#"<?xml version="1.0"?>
<transformation>
  <info><name>orders_etl</name></info>
  <step>
    <name>read orders</name>
    <type>TableInput</type>
    <table>orders</table>
    <fields>
      <field><name>o_id</name><type>int</type><nullable>N</nullable></field>
      <field><name>o_total</name><type>float</type></field>
      <field><name>o_status</name><type>str</type></field>
    </fields>
  </step>
  <step>
    <name>only paid</name>
    <type>FilterRows</type>
    <condition>o_status = 'OK' AND o_total &gt; 0</condition>
  </step>
  <step>
    <name>net calc</name>
    <type>Calculator</type>
    <calculation><field_name>net</field_name><formula>o_total * 0.9</formula></calculation>
  </step>
  <step>
    <name>dedupe</name>
    <type>Unique</type>
    <fields><field><name>o_id</name></field></fields>
  </step>
  <step>
    <name>write dw</name>
    <type>TableOutput</type>
    <table>dw_orders</table>
  </step>
  <order>
    <hop><from>read orders</from><to>only paid</to></hop>
    <hop><from>only paid</from><to>net calc</to></hop>
    <hop><from>net calc</from><to>dedupe</to></hop>
    <hop><from>dedupe</from><to>write dw</to></hop>
  </order>
</transformation>"#;

    #[test]
    fn imports_sample_transformation() {
        let flow = import_ktr(SAMPLE_KTR).unwrap();
        assert_eq!(flow.name, "orders_etl");
        assert_eq!(flow.op_count(), 5);
        assert_eq!(flow.edge_count(), 4);
        flow.validate().unwrap();
        assert_eq!(flow.ops_of_kind("extract").len(), 1);
        assert_eq!(flow.ops_of_kind("dedup").len(), 1);
        // the condition parsed into a real predicate
        let filt = flow.ops_of_kind("filter")[0];
        let op = flow.op(filt).unwrap();
        assert!(matches!(&op.kind, OpKind::Filter { predicate }
            if crate::expr_text::write_expr(predicate).contains("o_status")));
    }

    #[test]
    fn imported_flow_is_plannable() {
        // the imported flow can go straight into the xLM writer
        let flow = import_ktr(SAMPLE_KTR).unwrap();
        let xml = crate::write_flow(&flow);
        let back = crate::read_flow(&xml).unwrap();
        assert_eq!(back.op_count(), 5);
    }

    #[test]
    fn unsupported_step_type_reported() {
        let doc = r#"<transformation><info><name>x</name></info>
          <step><name>s</name><type>RowNormaliser</type></step>
          <order/></transformation>"#;
        let err = import_ktr(doc).unwrap_err();
        assert!(matches!(err, XlmError::Format(m) if m.contains("RowNormaliser")));
    }

    #[test]
    fn unknown_hop_target_reported() {
        let doc = r#"<transformation><info><name>x</name></info>
          <step><name>a</name><type>Append</type></step>
          <order><hop><from>a</from><to>ghost</to></hop></order></transformation>"#;
        let err = import_ktr(doc).unwrap_err();
        assert!(matches!(err, XlmError::Format(m) if m.contains("ghost")));
    }

    #[test]
    fn switchcase_and_groupby_mapped() {
        let doc = r#"<transformation><info><name>x</name></info>
          <step><name>route</name><type>SwitchCase</type><condition>x &gt; 5</condition></step>
          <step><name>agg</name><type>GroupBy</type>
            <group><field><name>g</name></field></group>
            <fields><field><name>total</name><aggregate>SUM</aggregate><subject>v</subject></field></fields>
          </step>
          <order/></transformation>"#;
        let flow = import_ktr(doc).unwrap();
        assert_eq!(flow.ops_of_kind("router").len(), 1);
        let agg = flow.ops_of_kind("aggregate")[0];
        assert!(matches!(&flow.op(agg).unwrap().kind,
            OpKind::Aggregate { group_by, aggs }
            if group_by == &vec!["g".to_string()] && aggs.len() == 1));
    }
}
