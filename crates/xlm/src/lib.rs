//! `xlm` — logical ETL model interchange.
//!
//! §3 of the paper: "The first step is to import an initial ETL model to the
//! system. This model can be a logical representation of the ETL process and
//! we currently support the loading of xLM and PDI." xLM is the XML-based
//! logical ETL model of Wilkinson et al. (ER 2010); PDI is Pentaho Data
//! Integration's `.ktr` format.
//!
//! No XML crate exists in the sanctioned offline dependency set, so this
//! crate ships its own spec-scoped parser ([`xml`]): elements, attributes,
//! text, comments, prolog, the five predefined entities. On top of it:
//!
//! * [`write_flow`] / [`read_flow`] — a faithful xLM-style serialisation of
//!   [`etl_model::EtlFlow`] that round-trips every operator kind, schema,
//!   expression, cost annotation and graph-level configuration;
//! * [`pdi::import_ktr`] — a PDI subset importer mapping common Kettle step
//!   types onto the operator taxonomy;
//! * [`expr_text`] — a total writer + recursive-descent parser for the
//!   expression language (xLM stores predicates as text).

#![forbid(unsafe_code)]

pub mod expr_text;
pub mod pdi;
mod xlm;
pub mod xml;

pub use xlm::{read_flow, write_flow, XlmError};
