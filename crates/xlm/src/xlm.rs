//! xLM-style serialisation of [`EtlFlow`]: every operator kind, schema,
//! expression, cost annotation and graph-level configuration round-trips.

use crate::expr_text::{parse_expr, write_expr};
use crate::xml::{parse, XmlNode};
use etl_model::{
    AggFunc, Attribute, Channel, DataType, EtlFlow, NodeId, OpKind, Operation, ResourceClass,
    Schema,
};
use std::collections::HashMap;
use std::fmt;

/// xLM read errors.
#[derive(Debug, Clone, PartialEq)]
pub enum XlmError {
    /// Underlying XML was malformed.
    Xml(String),
    /// The document structure did not match the xLM schema.
    Format(String),
}

impl fmt::Display for XlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XlmError::Xml(e) => write!(f, "xml: {e}"),
            XlmError::Format(e) => write!(f, "xlm format: {e}"),
        }
    }
}

impl std::error::Error for XlmError {}

fn format_err(msg: impl Into<String>) -> XlmError {
    XlmError::Format(msg.into())
}

// ---------------------------------------------------------------- writing

fn schema_node(schema: &Schema) -> XmlNode {
    let mut n = XmlNode::new("schema");
    for a in schema.attrs() {
        let mut attr = XmlNode::new("attr")
            .attr("name", &a.name)
            .attr("type", a.dtype.name())
            .attr("nullable", a.nullable);
        // emitted only when set, so pre-existing documents round-trip
        // byte-identically
        if a.sensitive {
            attr = attr.attr("sensitive", true);
        }
        n.children.push(attr);
    }
    n
}

fn kind_node(kind: &OpKind) -> XmlNode {
    let mut n = XmlNode::new("kind").attr("type", kind.name());
    match kind {
        OpKind::Extract { source, schema } => {
            n = n.attr("source", source).child(schema_node(schema));
        }
        OpKind::Load { target } => n = n.attr("target", target),
        OpKind::Filter { predicate } | OpKind::Router { predicate } => {
            n = n.attr("predicate", write_expr(predicate));
        }
        OpKind::Project { keep } => {
            for k in keep {
                n.children.push(XmlNode::new("keep").attr("name", k));
            }
        }
        OpKind::Derive { outputs } => {
            for (name, expr) in outputs {
                n.children.push(
                    XmlNode::new("output")
                        .attr("name", name)
                        .attr("expr", write_expr(expr)),
                );
            }
        }
        OpKind::Convert { column, to } => {
            n = n.attr("column", column).attr("to", to.name());
        }
        OpKind::Join {
            left_key,
            right_key,
        } => {
            n = n.attr("left_key", left_key).attr("right_key", right_key);
        }
        OpKind::Aggregate { group_by, aggs } => {
            for g in group_by {
                n.children.push(XmlNode::new("group").attr("name", g));
            }
            for (out, func, input) in aggs {
                n.children.push(
                    XmlNode::new("agg")
                        .attr("name", out)
                        .attr("func", func.name())
                        .attr("input", input),
                );
            }
        }
        OpKind::Sort { by } => {
            for b in by {
                n.children.push(XmlNode::new("by").attr("name", b));
            }
        }
        OpKind::Dedup { keys } => {
            for k in keys {
                n.children.push(XmlNode::new("key").attr("name", k));
            }
        }
        OpKind::FilterNulls { columns } => {
            for c in columns {
                n.children.push(XmlNode::new("column").attr("name", c));
            }
        }
        OpKind::Crosscheck { alt_source, key } => {
            n = n.attr("alt_source", alt_source).attr("key", key);
        }
        OpKind::Checkpoint { tag } => n = n.attr("tag", tag),
        OpKind::Split | OpKind::Partition | OpKind::Merge | OpKind::Encrypt => {}
    }
    n
}

/// Serialises a flow to an xLM document string.
pub fn write_flow(flow: &EtlFlow) -> String {
    let mut design = XmlNode::new("design").attr("name", &flow.name);
    design.children.push(
        XmlNode::new("properties")
            .attr("encrypted", flow.config.encrypted)
            .attr("rbac", flow.config.role_based_access)
            .attr(
                "resources",
                match flow.config.resources {
                    ResourceClass::Small => "small",
                    ResourceClass::Medium => "medium",
                    ResourceClass::Large => "large",
                },
            )
            .attr("recurrence_min", flow.config.recurrence_minutes),
    );
    let mut nodes = XmlNode::new("nodes");
    for (id, op) in flow.graph.nodes() {
        let mut n = XmlNode::new("node")
            .attr("id", format!("n{}", id.index()))
            .attr("name", &op.name)
            .attr("parallelism", op.parallelism);
        if let Some(p) = &op.from_pattern {
            n = n.attr("from_pattern", p);
        }
        n.children.push(kind_node(&op.kind));
        n.children.push(
            XmlNode::new("cost")
                .attr("per_tuple_ms", op.cost.cost_per_tuple_ms)
                .attr("startup_ms", op.cost.startup_ms)
                .attr("failure_rate", op.cost.failure_rate)
                .attr(
                    "selectivity",
                    op.cost
                        .selectivity
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| "auto".to_string()),
                ),
        );
        nodes.children.push(n);
    }
    design.children.push(nodes);
    let mut edges = XmlNode::new("edges");
    for e in flow.graph.edges() {
        let mut en = XmlNode::new("edge")
            .attr("from", format!("n{}", e.src.index()))
            .attr("to", format!("n{}", e.dst.index()));
        if !e.weight.label.is_empty() {
            en = en.attr("label", &e.weight.label);
        }
        edges.children.push(en);
    }
    design.children.push(edges);
    XmlNode::new("xlm")
        .attr("version", "1.0")
        .child(design)
        .to_xml()
}

// ---------------------------------------------------------------- reading

fn read_schema(node: &XmlNode) -> Result<Schema, XlmError> {
    let mut attrs = Vec::new();
    for a in node.find_all("attr") {
        let name = a
            .get_attr("name")
            .ok_or_else(|| format_err("attr without name"))?;
        let dtype = a
            .get_attr("type")
            .and_then(DataType::parse)
            .ok_or_else(|| format_err(format!("bad type on attr `{name}`")))?;
        let nullable = a.get_attr("nullable").is_none_or(|v| v == "true");
        let sensitive = a.get_attr("sensitive") == Some("true");
        attrs.push(Attribute {
            name: name.to_string(),
            dtype,
            nullable,
            sensitive,
        });
    }
    Ok(Schema::new(attrs))
}

fn req_attr<'a>(node: &'a XmlNode, key: &str, ctx: &str) -> Result<&'a str, XlmError> {
    node.get_attr(key)
        .ok_or_else(|| format_err(format!("{ctx}: missing `{key}`")))
}

fn names_of(node: &XmlNode, tag: &str) -> Result<Vec<String>, XlmError> {
    node.find_all(tag)
        .map(|c| req_attr(c, "name", tag).map(str::to_string))
        .collect()
}

fn read_kind(node: &XmlNode) -> Result<OpKind, XlmError> {
    let t = req_attr(node, "type", "kind")?;
    Ok(match t {
        "extract" => OpKind::Extract {
            source: req_attr(node, "source", "extract")?.to_string(),
            schema: read_schema(
                node.find("schema")
                    .ok_or_else(|| format_err("extract without schema"))?,
            )?,
        },
        "load" => OpKind::Load {
            target: req_attr(node, "target", "load")?.to_string(),
        },
        "filter" => OpKind::Filter {
            predicate: parse_expr(req_attr(node, "predicate", "filter")?)
                .map_err(|e| format_err(e.to_string()))?,
        },
        "router" => OpKind::Router {
            predicate: parse_expr(req_attr(node, "predicate", "router")?)
                .map_err(|e| format_err(e.to_string()))?,
        },
        "project" => OpKind::Project {
            keep: names_of(node, "keep")?,
        },
        "derive" => {
            let mut outputs = Vec::new();
            for o in node.find_all("output") {
                let name = req_attr(o, "name", "output")?.to_string();
                let expr = parse_expr(req_attr(o, "expr", "output")?)
                    .map_err(|e| format_err(e.to_string()))?;
                outputs.push((name, expr));
            }
            OpKind::Derive { outputs }
        }
        "convert" => OpKind::Convert {
            column: req_attr(node, "column", "convert")?.to_string(),
            to: DataType::parse(req_attr(node, "to", "convert")?)
                .ok_or_else(|| format_err("bad convert target type"))?,
        },
        "join" => OpKind::Join {
            left_key: req_attr(node, "left_key", "join")?.to_string(),
            right_key: req_attr(node, "right_key", "join")?.to_string(),
        },
        "aggregate" => {
            let group_by = names_of(node, "group")?;
            let mut aggs = Vec::new();
            for a in node.find_all("agg") {
                aggs.push((
                    req_attr(a, "name", "agg")?.to_string(),
                    AggFunc::parse(req_attr(a, "func", "agg")?)
                        .ok_or_else(|| format_err("bad agg func"))?,
                    req_attr(a, "input", "agg")?.to_string(),
                ));
            }
            OpKind::Aggregate { group_by, aggs }
        }
        "sort" => OpKind::Sort {
            by: names_of(node, "by")?,
        },
        "split" => OpKind::Split,
        "partition" => OpKind::Partition,
        "merge" => OpKind::Merge,
        "dedup" => OpKind::Dedup {
            keys: names_of(node, "key")?,
        },
        "filter_nulls" => OpKind::FilterNulls {
            columns: names_of(node, "column")?,
        },
        "crosscheck" => OpKind::Crosscheck {
            alt_source: req_attr(node, "alt_source", "crosscheck")?.to_string(),
            key: req_attr(node, "key", "crosscheck")?.to_string(),
        },
        "checkpoint" => OpKind::Checkpoint {
            tag: req_attr(node, "tag", "checkpoint")?.to_string(),
        },
        "encrypt" => OpKind::Encrypt,
        other => return Err(format_err(format!("unknown operator kind `{other}`"))),
    })
}

/// Parses an xLM document into a flow.
pub fn read_flow(input: &str) -> Result<EtlFlow, XlmError> {
    let root = parse(input).map_err(|e| XlmError::Xml(e.to_string()))?;
    if root.name != "xlm" {
        return Err(format_err("root element must be <xlm>"));
    }
    let design = root
        .find("design")
        .ok_or_else(|| format_err("missing <design>"))?;
    let mut flow = EtlFlow::new(req_attr(design, "name", "design")?);

    if let Some(p) = design.find("properties") {
        flow.config.encrypted = p.get_attr("encrypted") == Some("true");
        flow.config.role_based_access = p.get_attr("rbac") == Some("true");
        flow.config.resources = match p.get_attr("resources") {
            Some("medium") => ResourceClass::Medium,
            Some("large") => ResourceClass::Large,
            _ => ResourceClass::Small,
        };
        if let Some(r) = p.get_attr("recurrence_min").and_then(|v| v.parse().ok()) {
            flow.config.recurrence_minutes = r;
        }
    }

    let nodes = design
        .find("nodes")
        .ok_or_else(|| format_err("missing <nodes>"))?;
    let mut id_map: HashMap<String, NodeId> = HashMap::new();
    for n in nodes.find_all("node") {
        let xml_id = req_attr(n, "id", "node")?.to_string();
        let name = req_attr(n, "name", "node")?.to_string();
        let kind = read_kind(
            n.find("kind")
                .ok_or_else(|| format_err(format!("node `{name}` missing <kind>")))?,
        )?;
        let mut op = Operation::new(name, kind);
        if let Some(c) = n.find("cost") {
            if let Some(v) = c.get_attr("per_tuple_ms").and_then(|v| v.parse().ok()) {
                op.cost.cost_per_tuple_ms = v;
            }
            if let Some(v) = c.get_attr("startup_ms").and_then(|v| v.parse().ok()) {
                op.cost.startup_ms = v;
            }
            if let Some(v) = c.get_attr("failure_rate").and_then(|v| v.parse().ok()) {
                op.cost.failure_rate = v;
            }
            match c.get_attr("selectivity") {
                Some("auto") | None => {}
                Some(v) => op.cost.selectivity = v.parse().ok(),
            }
        }
        if let Some(p) = n.get_attr("parallelism").and_then(|v| v.parse().ok()) {
            op.parallelism = p;
        }
        if let Some(p) = n.get_attr("from_pattern") {
            op.from_pattern = Some(p.to_string());
        }
        let id = flow.add_op(op);
        if id_map.insert(xml_id.clone(), id).is_some() {
            return Err(format_err(format!("duplicate node id `{xml_id}`")));
        }
    }

    let edges = design
        .find("edges")
        .ok_or_else(|| format_err("missing <edges>"))?;
    for e in edges.find_all("edge") {
        let from = req_attr(e, "from", "edge")?;
        let to = req_attr(e, "to", "edge")?;
        let src = *id_map
            .get(from)
            .ok_or_else(|| format_err(format!("edge references unknown node `{from}`")))?;
        let dst = *id_map
            .get(to)
            .ok_or_else(|| format_err(format!("edge references unknown node `{to}`")))?;
        let label = e.get_attr("label").unwrap_or("").to_string();
        flow.graph
            .add_edge(src, dst, Channel { label })
            .map_err(|err| format_err(err.to_string()))?;
    }
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::purchases_flow;
    use datagen::tpcds::tpcds_flow;
    use datagen::tpch::tpch_flow;

    fn assert_flow_roundtrip(flow: &EtlFlow) {
        let xml = write_flow(flow);
        let back = read_flow(&xml).unwrap();
        assert_eq!(back.name, flow.name);
        assert_eq!(back.op_count(), flow.op_count());
        assert_eq!(back.edge_count(), flow.edge_count());
        assert_eq!(back.config, flow.config);
        back.validate().unwrap();
        // node-by-node comparison (ids are assigned in iteration order, so
        // positions line up for freshly-built flows)
        let a: Vec<&Operation> = flow.graph.nodes().map(|(_, op)| op).collect();
        let b: Vec<&Operation> = back.graph.nodes().map(|(_, op)| op).collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.kind, y.kind, "kind mismatch on {}", x.name);
            assert_eq!(x.cost, y.cost, "cost mismatch on {}", x.name);
            assert_eq!(x.parallelism, y.parallelism);
            assert_eq!(x.from_pattern, y.from_pattern);
        }
        // and identical serialisation fixpoint
        assert_eq!(xml, write_flow(&back));
    }

    #[test]
    fn tpch_roundtrips() {
        let (f, _) = tpch_flow();
        assert_flow_roundtrip(&f);
    }

    #[test]
    fn tpcds_roundtrips() {
        let (f, _) = tpcds_flow();
        assert_flow_roundtrip(&f);
    }

    #[test]
    fn purchases_roundtrips_with_config_changes() {
        let (mut f, _) = purchases_flow();
        f.config.encrypted = true;
        f.config.resources = ResourceClass::Large;
        f.config.recurrence_minutes = 90.0;
        assert_flow_roundtrip(&f);
    }

    #[test]
    fn pattern_enriched_flow_roundtrips() {
        // flows after FCP application (checkpoints, dedups, crosschecks,
        // partitions) must serialise too
        let (mut f, ids) = purchases_flow();
        let e = f.graph.out_edges(ids.derive_values).next().unwrap();
        f.graph
            .interpose_on_edge(
                e,
                Operation::new("SAVE", OpKind::Checkpoint { tag: "sp1".into() })
                    .tag_pattern("AddCheckpoint"),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        assert_flow_roundtrip(&f);
    }

    #[test]
    fn sensitive_attributes_roundtrip() {
        let (mut f, _) = purchases_flow();
        let extract = f
            .graph
            .nodes()
            .find(|(_, op)| matches!(op.kind, OpKind::Extract { .. }))
            .map(|(id, _)| id)
            .unwrap();
        if let OpKind::Extract { schema, .. } = &mut f.graph.node_mut(extract).unwrap().kind {
            let attrs: Vec<_> = schema
                .attrs()
                .iter()
                .cloned()
                .map(|a| {
                    if a.name == "pu_id" {
                        a.mark_sensitive()
                    } else {
                        a
                    }
                })
                .collect();
            *schema = Schema::new(attrs);
        }
        let xml = write_flow(&f);
        assert!(xml.contains("sensitive=\"true\""));
        assert_flow_roundtrip(&f);
        // the flag survives the trip; unflagged attributes stay clear
        let back = read_flow(&xml).unwrap();
        if let OpKind::Extract { schema, .. } = &back.graph.node(extract).unwrap().kind {
            assert!(schema.attr("pu_id").unwrap().sensitive);
            assert!(!schema.attr("amount").unwrap().sensitive);
        } else {
            panic!("extract vanished on roundtrip");
        }
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(matches!(read_flow("<nope/>"), Err(XlmError::Format(_))));
        assert!(matches!(read_flow("not xml"), Err(XlmError::Xml(_))));
        let no_nodes = r#"<xlm><design name="x"><edges/></design></xlm>"#;
        assert!(matches!(read_flow(no_nodes), Err(XlmError::Format(_))));
    }

    #[test]
    fn unknown_kind_rejected() {
        let doc = r#"<xlm><design name="x"><nodes>
            <node id="n0" name="weird"><kind type="teleport"/></node>
        </nodes><edges/></design></xlm>"#;
        let err = read_flow(doc).unwrap_err();
        assert!(matches!(err, XlmError::Format(m) if m.contains("teleport")));
    }

    #[test]
    fn edge_to_unknown_node_rejected() {
        let doc = r#"<xlm><design name="x"><nodes>
            <node id="n0" name="e"><kind type="merge"/></node>
        </nodes><edges><edge from="n0" to="n9"/></edges></design></xlm>"#;
        assert!(matches!(read_flow(doc), Err(XlmError::Format(m)) if m.contains("n9")));
    }
}
