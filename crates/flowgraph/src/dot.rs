//! Graphviz DOT export, used by the examples to render flows.

use crate::graph::DiGraph;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax using the provided labellers.
pub fn to_dot<N, E>(
    g: &DiGraph<N, E>,
    name: &str,
    node_label: impl Fn(&N) -> String,
    edge_label: impl Fn(&E) -> String,
) -> String {
    let mut s = String::with_capacity(64 + 32 * (g.node_count() + g.edge_count()));
    let _ = writeln!(s, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(s, "  rankdir=LR;");
    for (id, w) in g.nodes() {
        let _ = writeln!(
            s,
            "  {} [label=\"{}\", shape=box];",
            id,
            escape(&node_label(w))
        );
    }
    for e in g.edges() {
        let lbl = edge_label(e.weight);
        if lbl.is_empty() {
            let _ = writeln!(s, "  {} -> {};", e.src, e.dst);
        } else {
            let _ = writeln!(s, "  {} -> {} [label=\"{}\"];", e.src, e.dst, escape(&lbl));
        }
    }
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        let a = g.add_node("extract");
        let b = g.add_node("load");
        g.add_edge(a, b, "rows").unwrap();
        let dot = to_dot(&g, "demo", |n| n.to_string(), |e| e.to_string());
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("n0 [label=\"extract\""));
        assert!(dot.contains("n0 -> n1 [label=\"rows\"]"));
    }

    #[test]
    fn escapes_quotes() {
        let mut g: DiGraph<String, ()> = DiGraph::new();
        g.add_node("say \"hi\"".to_string());
        let dot = to_dot(&g, "q", |n| n.clone(), |_| String::new());
        assert!(dot.contains("say \\\"hi\\\""));
    }

    #[test]
    fn empty_edge_label_omitted() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, ()).unwrap();
        let dot = to_dot(&g, "x", |n| n.to_string(), |_| String::new());
        assert!(dot.contains("n0 -> n1;"));
    }
}
