//! Structural graph metrics backing the paper's manageability measures
//! (Fig. 1: coupling of the process workflow, number of merge elements, …).

use crate::graph::{DiGraph, NodeId};

/// Summary statistics over node degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Mean total degree (in + out) over live nodes.
    pub mean: f64,
    /// Maximum total degree.
    pub max: usize,
    /// Number of nodes with total degree ≥ 3 (branch/merge points).
    pub branchy: usize,
}

/// Fan-in of a node (number of incoming edges).
pub fn fan_in<N, E>(g: &DiGraph<N, E>, n: NodeId) -> usize {
    g.in_degree(n)
}

/// Fan-out of a node (number of outgoing edges).
pub fn fan_out<N, E>(g: &DiGraph<N, E>, n: NodeId) -> usize {
    g.out_degree(n)
}

/// Edge density: `|E| / (|V| * (|V| - 1))` for a simple directed graph.
/// Returns 0 for graphs with fewer than two nodes.
pub fn density<N, E>(g: &DiGraph<N, E>) -> f64 {
    let v = g.node_count();
    if v < 2 {
        return 0.0;
    }
    g.edge_count() as f64 / (v as f64 * (v as f64 - 1.0))
}

/// Workflow coupling in the sense of Reijers & Vanderfeesten, the metric the
/// paper's manageability characteristic cites: the probability that two
/// distinct activities are directly connected, i.e. the mean over nodes of
/// `degree(n) / (|V| - 1)`; equivalently `2|E| / (|V|·(|V|−1))` for simple
/// graphs. Higher coupling means edits ripple further, hurting manageability.
pub fn coupling<N, E>(g: &DiGraph<N, E>) -> f64 {
    let v = g.node_count();
    if v < 2 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / (v as f64 * (v as f64 - 1.0))
}

/// Degree statistics over the whole graph.
pub fn degree_stats<N, E>(g: &DiGraph<N, E>) -> DegreeStats {
    let mut total = 0usize;
    let mut max = 0usize;
    let mut branchy = 0usize;
    let mut count = 0usize;
    for n in g.node_ids() {
        let d = g.in_degree(n) + g.out_degree(n);
        total += d;
        max = max.max(d);
        if d >= 3 {
            branchy += 1;
        }
        count += 1;
    }
    DegreeStats {
        mean: if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        },
        max,
        branchy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, c, ()).unwrap();
        g.add_edge(b, d, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g
    }

    #[test]
    fn fan_in_out() {
        let g = diamond();
        let a = g.node_ids().next().unwrap();
        assert_eq!(fan_out(&g, a), 2);
        assert_eq!(fan_in(&g, a), 0);
    }

    #[test]
    fn density_and_coupling() {
        let g = diamond();
        // 4 edges, 4 nodes: density 4/12, coupling 8/12.
        assert!((density(&g) - 4.0 / 12.0).abs() < 1e-12);
        assert!((coupling(&g) - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn coupling_degenerate() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(coupling(&g), 0.0);
        g.add_node(());
        assert_eq!(coupling(&g), 0.0);
    }

    #[test]
    fn chain_has_lower_coupling_than_clique_ish() {
        let mut chain: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..5).map(|_| chain.add_node(())).collect();
        for w in ids.windows(2) {
            chain.add_edge(w[0], w[1], ()).unwrap();
        }
        let mut dense: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..5).map(|_| dense.add_node(())).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                dense.add_edge(ids[i], ids[j], ()).unwrap();
            }
        }
        assert!(coupling(&chain) < coupling(&dense));
    }

    #[test]
    fn stats() {
        let g = diamond();
        let s = degree_stats(&g);
        assert_eq!(s.max, 2);
        assert_eq!(s.branchy, 0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }
}
