//! Graph algorithms used by the POIESIS quality measures and the planner:
//! topological order, cycle checks, longest/critical paths, reachability.

use crate::graph::{DiGraph, NodeId};

/// Error returned by [`topo_sort`] when the graph has a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoError {
    /// One node that participates in (or is reachable only through) a cycle.
    pub witness: NodeId,
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains a cycle (witness node {})", self.witness)
    }
}

impl std::error::Error for TopoError {}

/// Kahn's algorithm. Returns the nodes in a topological order, or a
/// [`TopoError`] naming a node stuck on a cycle.
pub fn topo_sort<N, E>(g: &DiGraph<N, E>) -> Result<Vec<NodeId>, TopoError> {
    let mut indeg = vec![0usize; g.node_bound()];
    for n in g.node_ids() {
        indeg[n.index()] = g.in_degree(n);
    }
    let mut queue: Vec<NodeId> = g.sources().collect();
    let mut order = Vec::with_capacity(g.node_count());
    while let Some(n) = queue.pop() {
        order.push(n);
        for s in g.successors(n) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() == g.node_count() {
        Ok(order)
    } else {
        let witness = g
            .node_ids()
            .find(|n| indeg[n.index()] > 0)
            .expect("cycle implies a node with positive residual in-degree");
        Err(TopoError { witness })
    }
}

/// True if the graph is acyclic.
pub fn is_dag<N, E>(g: &DiGraph<N, E>) -> bool {
    topo_sort(g).is_ok()
}

/// True if the graph contains at least one directed cycle.
pub fn has_cycle<N, E>(g: &DiGraph<N, E>) -> bool {
    !is_dag(g)
}

/// Length (in edges) of the longest directed path in a DAG.
///
/// This is the paper's manageability measure *"length of process workflow's
/// longest path"* (Fig. 1). Returns `None` when the graph has a cycle.
pub fn longest_path_len<N, E>(g: &DiGraph<N, E>) -> Option<usize> {
    let order = topo_sort(g).ok()?;
    let mut dist = vec![0usize; g.node_bound()];
    let mut best = 0;
    // Process in reverse topological order: dist[n] = longest path starting at n.
    for &n in order.iter().rev() {
        let d = g
            .successors(n)
            .map(|s| dist[s.index()] + 1)
            .max()
            .unwrap_or(0);
        dist[n.index()] = d;
        best = best.max(d);
    }
    Some(best)
}

/// Critical (maximum-weight) path through a DAG where each node carries a
/// non-negative cost. Returns `(total_cost, path)` or `None` on a cycle.
///
/// Used by the analytic performance estimator: the process cycle time of a
/// pipelined flow is dominated by its most expensive source→sink chain.
pub fn critical_path<N, E>(
    g: &DiGraph<N, E>,
    node_cost: impl Fn(NodeId, &N) -> f64,
) -> Option<(f64, Vec<NodeId>)> {
    let order = topo_sort(g).ok()?;
    let mut dist = vec![f64::NEG_INFINITY; g.node_bound()];
    let mut next: Vec<Option<NodeId>> = vec![None; g.node_bound()];
    for &n in order.iter().rev() {
        let own = node_cost(n, g.node(n).expect("live node"));
        debug_assert!(own >= 0.0, "node costs must be non-negative");
        let mut best_succ: Option<(f64, NodeId)> = None;
        for s in g.successors(n) {
            let d = dist[s.index()];
            if best_succ.is_none_or(|(bd, _)| d > bd) {
                best_succ = Some((d, s));
            }
        }
        match best_succ {
            Some((d, s)) => {
                dist[n.index()] = own + d;
                next[n.index()] = Some(s);
            }
            None => dist[n.index()] = own,
        }
    }
    let start = g
        .node_ids()
        .max_by(|a, b| dist[a.index()].total_cmp(&dist[b.index()]))?;
    let mut path = vec![start];
    let mut cur = start;
    while let Some(s) = next[cur.index()] {
        path.push(s);
        cur = s;
    }
    Some((dist[start.index()], path))
}

/// Topological order of the *affected region*: `seeds` plus every node
/// reachable from them, restricted to live nodes. Returns `None` when the
/// affected region contains a directed cycle.
///
/// This powers delta re-evaluation: after a patch, only the touched nodes and
/// their descendants can change, so this local order is all that needs to be
/// re-walked. Cycle detection over the region alone is sound for patched DAGs
/// because any cycle introduced by a patch must pass through a touched node
/// (the base was acyclic, so the cycle uses a changed edge, whose endpoints
/// are touched) — and every node on such a cycle is reachable from that
/// touched node, hence inside the region.
pub fn affected_topo<N, E>(g: &DiGraph<N, E>, seeds: &[NodeId]) -> Option<Vec<NodeId>> {
    let bound = g.node_bound();
    let mut affected = vec![false; bound];
    let mut members: Vec<NodeId> = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if g.contains_node(s) && !affected[s.index()] {
            affected[s.index()] = true;
            members.push(s);
            stack.push(s);
        }
    }
    while let Some(n) = stack.pop() {
        for m in g.successors(n) {
            if !affected[m.index()] {
                affected[m.index()] = true;
                members.push(m);
                stack.push(m);
            }
        }
    }
    // Kahn restricted to the region: in-degree counts only edges from other
    // affected nodes; edges entering from the stable part are satisfied by
    // construction.
    let mut indeg = vec![0usize; bound];
    for &n in &members {
        indeg[n.index()] = g.predecessors(n).filter(|p| affected[p.index()]).count();
    }
    let mut queue: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|n| indeg[n.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(members.len());
    while let Some(n) = queue.pop() {
        order.push(n);
        for s in g.successors(n) {
            if affected[s.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
    }
    if order.len() == members.len() {
        Some(order)
    } else {
        None
    }
}

/// Set of nodes reachable from `start` (inclusive), as a sorted vector.
pub fn reachable_from<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_bound()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(n) = stack.pop() {
        for s in g.successors(n) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    let mut out: Vec<NodeId> = g.node_ids().filter(|n| seen[n.index()]).collect();
    out.sort();
    out
}

/// Length (in edges) of the shortest directed path `from → to`, if any.
pub fn shortest_path_len<N, E>(g: &DiGraph<N, E>, from: NodeId, to: NodeId) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let mut dist = vec![usize::MAX; g.node_bound()];
    dist[from.index()] = 0;
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(n) = queue.pop_front() {
        for s in g.successors(n) {
            if dist[s.index()] == usize::MAX {
                dist[s.index()] = dist[n.index()] + 1;
                if s == to {
                    return Some(dist[s.index()]);
                }
                queue.push_back(s);
            }
        }
    }
    None
}

/// Weakly connected components (edge direction ignored), each sorted.
pub fn weakly_connected_components<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    let mut comp = vec![usize::MAX; g.node_bound()];
    let mut n_comp = 0;
    for start in g.node_ids() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let c = n_comp;
        n_comp += 1;
        let mut stack = vec![start];
        comp[start.index()] = c;
        while let Some(n) = stack.pop() {
            for m in g.successors(n).chain(g.predecessors(n)) {
                if comp[m.index()] == usize::MAX {
                    comp[m.index()] = c;
                    stack.push(m);
                }
            }
        }
    }
    let mut out = vec![Vec::new(); n_comp];
    for n in g.node_ids() {
        out[comp[n.index()]].push(n);
    }
    for c in &mut out {
        c.sort();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (DiGraph<usize, ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn topo_sort_chain_in_order() {
        let (g, ids) = chain(5);
        let order = topo_sort(&g).unwrap();
        let pos: Vec<usize> = ids
            .iter()
            .map(|id| order.iter().position(|o| o == id).unwrap())
            .collect();
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn topo_sort_detects_cycle() {
        let (mut g, ids) = chain(3);
        g.add_edge(ids[2], ids[0], ()).unwrap();
        assert!(topo_sort(&g).is_err());
        assert!(has_cycle(&g));
        assert!(!is_dag(&g));
    }

    #[test]
    fn topo_sort_after_node_removal() {
        let (mut g, ids) = chain(4);
        g.remove_node(ids[1]);
        let order = topo_sort(&g).unwrap();
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn longest_path_on_chain_and_diamond() {
        let (g, _) = chain(6);
        assert_eq!(longest_path_len(&g), Some(5));

        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let e = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, c, ()).unwrap();
        g.add_edge(b, d, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, e, ()).unwrap();
        // longest: a->b->d->e = 3 edges
        assert_eq!(longest_path_len(&g), Some(3));
    }

    #[test]
    fn longest_path_none_on_cycle() {
        let (mut g, ids) = chain(3);
        g.add_edge(ids[2], ids[0], ()).unwrap();
        assert_eq!(longest_path_len(&g), None);
    }

    #[test]
    fn critical_path_prefers_expensive_branch() {
        let mut g = DiGraph::new();
        let a = g.add_node(1.0);
        let cheap = g.add_node(1.0);
        let costly = g.add_node(10.0);
        let z = g.add_node(1.0);
        g.add_edge(a, cheap, ()).unwrap();
        g.add_edge(a, costly, ()).unwrap();
        g.add_edge(cheap, z, ()).unwrap();
        g.add_edge(costly, z, ()).unwrap();
        let (cost, path) = critical_path(&g, |_, w| *w).unwrap();
        assert_eq!(cost, 12.0);
        assert_eq!(path, vec![a, costly, z]);
    }

    #[test]
    fn critical_path_single_node() {
        let mut g: DiGraph<f64, ()> = DiGraph::new();
        let a = g.add_node(3.5);
        let (cost, path) = critical_path(&g, |_, w| *w).unwrap();
        assert_eq!(cost, 3.5);
        assert_eq!(path, vec![a]);
    }

    #[test]
    fn affected_topo_orders_downstream_closure() {
        let (g, ids) = chain(6);
        let order = affected_topo(&g, &[ids[2]]).unwrap();
        assert_eq!(order, vec![ids[2], ids[3], ids[4], ids[5]]);
        // A seed with no successors is its own region.
        assert_eq!(affected_topo(&g, &[ids[5]]).unwrap(), vec![ids[5]]);
        // No seeds → empty region.
        assert_eq!(affected_topo(&g, &[]).unwrap(), Vec::<NodeId>::new());
        // Dead seeds are ignored.
        let mut g2 = g.clone();
        g2.remove_node(ids[4]);
        assert_eq!(affected_topo(&g2, &[ids[4]]).unwrap(), Vec::<NodeId>::new());
    }

    #[test]
    fn affected_topo_respects_cross_edges_within_region() {
        // a → b → d, a → c → d: seeding {b, c} must yield d after both.
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, c, ()).unwrap();
        g.add_edge(b, d, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let order = affected_topo(&g, &[b, c]).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert_eq!(order.len(), 3);
        assert!(pos(d) > pos(b) && pos(d) > pos(c));
    }

    #[test]
    fn affected_topo_detects_cycle_in_region() {
        let (mut g, ids) = chain(4);
        g.add_edge(ids[3], ids[1], ()).unwrap();
        assert!(affected_topo(&g, &[ids[1]]).is_none());
        // Region not touching the cycle is still fine… but here everything
        // downstream of ids[0] includes the cycle.
        assert!(affected_topo(&g, &[ids[0]]).is_none());
    }

    #[test]
    fn reachability() {
        let (mut g, ids) = chain(4);
        let island = g.add_node(99);
        assert_eq!(reachable_from(&g, ids[1]), vec![ids[1], ids[2], ids[3]]);
        assert_eq!(reachable_from(&g, island), vec![island]);
    }

    #[test]
    fn shortest_path() {
        let (g, ids) = chain(5);
        assert_eq!(shortest_path_len(&g, ids[0], ids[4]), Some(4));
        assert_eq!(shortest_path_len(&g, ids[4], ids[0]), None);
        assert_eq!(shortest_path_len(&g, ids[2], ids[2]), Some(0));
    }

    #[test]
    fn components() {
        let (mut g, ids) = chain(3);
        let x = g.add_node(7);
        let y = g.add_node(8);
        g.add_edge(y, x, ()).unwrap();
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&vec![ids[0], ids[1], ids[2]]));
        assert!(comps.contains(&vec![x, y]));
    }
}
