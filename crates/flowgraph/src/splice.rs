//! Structural splice operations: the graph edits behind FCP application.
//!
//! The paper (§2.2) defines three kinds of application point — a node, an
//! edge, or the entire graph. Edge application interposes the pattern's flow
//! between two consecutive operations; node application replaces an operation
//! with a sub-flow (e.g. `partition → replicas → merge` for
//! `ParallelizeTask`). Both reduce to the operations in this module.

use crate::graph::{DiGraph, EdgeId, GraphError, NodeId};

/// Result of interposing a single node on an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterposeSplice {
    /// The newly inserted node.
    pub node: NodeId,
    /// The (pre-existing, retargeted) edge now ending at `node`.
    pub in_edge: EdgeId,
    /// The new edge from `node` to the original destination.
    pub out_edge: EdgeId,
}

/// Result of embedding a subgraph (node id remapping) plus the boundary
/// edges created to stitch it in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubgraphSplice {
    /// For each node id in the donor graph (dense by donor `NodeId::index`),
    /// the corresponding id in the host graph, if the donor slot was live.
    pub node_map: Vec<Option<NodeId>>,
    /// Edges created from the host into the embedded subgraph.
    pub entry_edges: Vec<EdgeId>,
    /// Edges created from the embedded subgraph back into the host.
    pub exit_edges: Vec<EdgeId>,
}

impl SubgraphSplice {
    /// Maps a donor-graph node id to its host-graph id.
    pub fn mapped(&self, donor: NodeId) -> Option<NodeId> {
        self.node_map.get(donor.index()).copied().flatten()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Interposes one new node on an existing edge `u → v`, producing
    /// `u → new → v`. The original edge keeps its id and weight but is
    /// retargeted at the new node; a fresh edge carries `out_weight`.
    pub fn interpose_on_edge(
        &mut self,
        e: EdgeId,
        node_weight: N,
        _in_weight_unused: E,
        out_weight: E,
    ) -> Result<InterposeSplice, GraphError>
    where
        N: Clone,
        E: Clone,
    {
        let (_, dst) = self.endpoints(e).ok_or(GraphError::MissingEdge(e))?;
        let pos = self
            .in_edges(dst)
            .position(|x| x == e)
            .expect("edge is incoming at its dst");
        let node = self.add_node(node_weight);
        self.retarget_edge(e, node)?;
        let out_edge = self.add_edge(node, dst, out_weight)?;
        // Keep dst's input ordering: the replacement edge takes the slot the
        // original edge occupied (a join's sides are positional).
        self.set_in_position(dst, out_edge, pos)?;
        Ok(InterposeSplice {
            node,
            in_edge: e,
            out_edge,
        })
    }

    /// Embeds a disjoint copy of `donor` into `self`, remapping ids.
    /// No boundary edges are created; use the returned map to stitch.
    pub fn embed(&mut self, donor: &DiGraph<N, E>) -> SubgraphSplice
    where
        N: Clone,
        E: Clone,
    {
        let mut node_map: Vec<Option<NodeId>> = vec![None; donor.node_bound()];
        for (id, w) in donor.nodes() {
            node_map[id.index()] = Some(self.add_node(w.clone()));
        }
        for er in donor.edges() {
            let s = node_map[er.src.index()].expect("donor edge endpoints are live");
            let d = node_map[er.dst.index()].expect("donor edge endpoints are live");
            self.add_edge(s, d, er.weight.clone())
                .expect("embedding a valid donor edge cannot fail");
        }
        SubgraphSplice {
            node_map,
            entry_edges: Vec::new(),
            exit_edges: Vec::new(),
        }
    }

    /// Interposes an entire donor sub-flow on edge `u → v`.
    ///
    /// The donor must have exactly one source (entry) and one sink (exit);
    /// the result is `u → entry … exit → v`. The original edge keeps its id
    /// and is retargeted at the entry node.
    pub fn interpose_subgraph_on_edge(
        &mut self,
        e: EdgeId,
        donor: &DiGraph<N, E>,
        out_weight: E,
    ) -> Result<SubgraphSplice, GraphError>
    where
        N: Clone,
        E: Clone,
    {
        let (_, dst) = self.endpoints(e).ok_or(GraphError::MissingEdge(e))?;
        let pos = self
            .in_edges(dst)
            .position(|x| x == e)
            .expect("edge is incoming at its dst");
        let entry = single(donor.sources()).ok_or(GraphError::InvalidSubgraph(
            "donor must have exactly one source",
        ))?;
        let exit = single(donor.sinks()).ok_or(GraphError::InvalidSubgraph(
            "donor must have exactly one sink",
        ))?;
        let mut splice = self.embed(donor);
        let entry_host = splice.mapped(entry).expect("entry is live");
        let exit_host = splice.mapped(exit).expect("exit is live");
        self.retarget_edge(e, entry_host)?;
        let out = self.add_edge(exit_host, dst, out_weight)?;
        self.set_in_position(dst, out, pos)?;
        splice.entry_edges.push(e);
        splice.exit_edges.push(out);
        Ok(splice)
    }

    /// Replaces node `n` with a donor sub-flow.
    ///
    /// Every incoming edge of `n` is retargeted at the donor's single source;
    /// every outgoing edge is re-sourced from the donor's single sink; `n`
    /// itself is removed. Edge ids and weights of the boundary edges are
    /// preserved. Returns the splice map plus the removed node's weight.
    pub fn replace_node_with_subgraph(
        &mut self,
        n: NodeId,
        donor: &DiGraph<N, E>,
    ) -> Result<(SubgraphSplice, N), GraphError>
    where
        N: Clone,
        E: Clone,
    {
        if !self.contains_node(n) {
            return Err(GraphError::MissingNode(n));
        }
        let entry = single(donor.sources()).ok_or(GraphError::InvalidSubgraph(
            "donor must have exactly one source",
        ))?;
        let exit = single(donor.sinks()).ok_or(GraphError::InvalidSubgraph(
            "donor must have exactly one sink",
        ))?;
        let mut splice = self.embed(donor);
        let entry_host = splice.mapped(entry).expect("entry is live");
        let exit_host = splice.mapped(exit).expect("exit is live");
        let in_edges: Vec<EdgeId> = self.in_edges(n).collect();
        let out_edges: Vec<EdgeId> = self.out_edges(n).collect();
        for e in &in_edges {
            self.retarget_edge(*e, entry_host)?;
        }
        for e in &out_edges {
            self.resource_edge(*e, exit_host)?;
        }
        let weight = self.remove_node(n).expect("node was checked live");
        splice.entry_edges = in_edges;
        splice.exit_edges = out_edges;
        Ok((splice, weight))
    }
}

fn single<I: Iterator<Item = NodeId>>(mut it: I) -> Option<NodeId> {
    let first = it.next()?;
    if it.next().is_some() {
        None
    } else {
        Some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{is_dag, topo_sort};

    fn chain(labels: &[&'static str]) -> (DiGraph<&'static str, u32>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = labels.iter().map(|&l| g.add_node(l)).collect();
        for (i, w) in ids.windows(2).enumerate() {
            g.add_edge(w[0], w[1], i as u32).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn interpose_single_node() {
        let (mut g, ids) = chain(&["a", "b"]);
        let e = g.out_edges(ids[0]).next().unwrap();
        let s = g.interpose_on_edge(e, "mid", 0, 7).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(ids[0]).collect::<Vec<_>>(), vec![s.node]);
        assert_eq!(g.successors(s.node).collect::<Vec<_>>(), vec![ids[1]]);
        // original edge id survives, new edge has requested weight
        assert_eq!(s.in_edge, e);
        assert_eq!(g.edge(s.out_edge), Some(&7));
        assert!(is_dag(&g));
    }

    #[test]
    fn interpose_preserves_input_position_of_multi_input_node() {
        // left -> join, right -> join; interposing on the LEFT edge must
        // keep the join's predecessor order [left-side, right-side].
        let mut g: DiGraph<&str, u32> = DiGraph::new();
        let left = g.add_node("left");
        let right = g.add_node("right");
        let join = g.add_node("join");
        let e_left = g.add_edge(left, join, 0).unwrap();
        g.add_edge(right, join, 1).unwrap();
        let s = g.interpose_on_edge(e_left, "mid", 0, 2).unwrap();
        let preds: Vec<NodeId> = g.predecessors(join).collect();
        assert_eq!(preds, vec![s.node, right], "left side must stay first");
    }

    #[test]
    fn interpose_subgraph_preserves_input_position() {
        let mut g: DiGraph<&str, u32> = DiGraph::new();
        let left = g.add_node("left");
        let right = g.add_node("right");
        let join = g.add_node("join");
        let e_left = g.add_edge(left, join, 0).unwrap();
        g.add_edge(right, join, 1).unwrap();
        let (donor, _) = chain(&["p1", "p2"]);
        let s = g.interpose_subgraph_on_edge(e_left, &donor, 9).unwrap();
        let exit = s.mapped(donor.sinks().next().unwrap()).unwrap();
        let preds: Vec<NodeId> = g.predecessors(join).collect();
        assert_eq!(preds, vec![exit, right]);
    }

    #[test]
    fn interpose_missing_edge_fails() {
        let (mut g, _) = chain(&["a", "b"]);
        let ghost = EdgeId(42);
        assert!(matches!(
            g.interpose_on_edge(ghost, "x", 0, 0),
            Err(GraphError::MissingEdge(_))
        ));
    }

    #[test]
    fn embed_is_disjoint() {
        let (mut host, _) = chain(&["a", "b"]);
        let (donor, _) = chain(&["x", "y", "z"]);
        let splice = host.embed(&donor);
        assert_eq!(host.node_count(), 5);
        assert_eq!(host.edge_count(), 3);
        assert_eq!(splice.node_map.iter().flatten().count(), 3);
    }

    #[test]
    fn interpose_subgraph() {
        let (mut g, ids) = chain(&["u", "v"]);
        let (donor, _) = chain(&["p1", "p2"]);
        let e = g.out_edges(ids[0]).next().unwrap();
        let s = g.interpose_subgraph_on_edge(e, &donor, 99).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        let order = topo_sort(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&o| o == n).unwrap();
        let entry = s.mapped(donor.sources().next().unwrap()).unwrap();
        let exit = s.mapped(donor.sinks().next().unwrap()).unwrap();
        assert!(pos(ids[0]) < pos(entry));
        assert!(pos(exit) < pos(ids[1]));
    }

    #[test]
    fn interpose_subgraph_requires_single_entry_exit() {
        let (mut g, ids) = chain(&["u", "v"]);
        let e = g.out_edges(ids[0]).next().unwrap();
        // Donor with two sources.
        let mut donor: DiGraph<&str, u32> = DiGraph::new();
        let a = donor.add_node("a");
        let b = donor.add_node("b");
        let c = donor.add_node("c");
        donor.add_edge(a, c, 0).unwrap();
        donor.add_edge(b, c, 0).unwrap();
        assert!(matches!(
            g.interpose_subgraph_on_edge(e, &donor, 0),
            Err(GraphError::InvalidSubgraph(_))
        ));
    }

    #[test]
    fn replace_node_with_parallel_block() {
        // a -> work -> z   becomes   a -> split -> {w1,w2} -> merge -> z
        let (mut g, ids) = chain(&["a", "work", "z"]);
        let mut donor: DiGraph<&str, u32> = DiGraph::new();
        let split = donor.add_node("split");
        let w1 = donor.add_node("w1");
        let w2 = donor.add_node("w2");
        let merge = donor.add_node("merge");
        donor.add_edge(split, w1, 0).unwrap();
        donor.add_edge(split, w2, 0).unwrap();
        donor.add_edge(w1, merge, 0).unwrap();
        donor.add_edge(w2, merge, 0).unwrap();

        let (splice, removed) = g.replace_node_with_subgraph(ids[1], &donor).unwrap();
        assert_eq!(removed, "work");
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert!(is_dag(&g));
        let split_h = splice.mapped(split).unwrap();
        let merge_h = splice.mapped(merge).unwrap();
        assert_eq!(g.successors(ids[0]).collect::<Vec<_>>(), vec![split_h]);
        assert_eq!(g.predecessors(ids[2]).collect::<Vec<_>>(), vec![merge_h]);
        // boundary edges preserved their ids
        assert_eq!(splice.entry_edges.len(), 1);
        assert_eq!(splice.exit_edges.len(), 1);
    }

    #[test]
    fn replace_missing_node_fails() {
        let (mut g, _) = chain(&["a", "b"]);
        let (donor, _) = chain(&["x"]);
        assert!(matches!(
            g.replace_node_with_subgraph(NodeId(77), &donor),
            Err(GraphError::MissingNode(_))
        ));
    }

    #[test]
    fn replace_preserves_multiple_boundary_edges() {
        // Node with 2 ins and 2 outs.
        let mut g: DiGraph<&str, u32> = DiGraph::new();
        let i1 = g.add_node("i1");
        let i2 = g.add_node("i2");
        let mid = g.add_node("mid");
        let o1 = g.add_node("o1");
        let o2 = g.add_node("o2");
        g.add_edge(i1, mid, 1).unwrap();
        g.add_edge(i2, mid, 2).unwrap();
        g.add_edge(mid, o1, 3).unwrap();
        g.add_edge(mid, o2, 4).unwrap();
        let (donor, _) = chain(&["solo"]);
        let (splice, _) = g.replace_node_with_subgraph(mid, &donor).unwrap();
        let solo = splice.mapped(donor.node_ids().next().unwrap()).unwrap();
        assert_eq!(g.in_degree(solo), 2);
        assert_eq!(g.out_degree(solo), 2);
        // weights intact
        let mut ws: Vec<u32> = g.edges().map(|e| *e.weight).collect();
        ws.sort();
        assert_eq!(ws, vec![1, 2, 3, 4]);
    }
}
