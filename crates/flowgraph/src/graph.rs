//! Core arena-based directed graph with stable node/edge ids.
//!
//! Storage is copy-on-write: every slot sits behind an [`Arc`], so cloning a
//! graph is `O(n)` refcount bumps and a clone's mutations copy only the slots
//! they touch ([`Arc::make_mut`]). [`DiGraph::cow_delta`] recovers exactly
//! which nodes diverged between a fork and its base by pointer comparison,
//! which is what makes delta re-evaluation of forked flows possible.

use std::fmt;
use std::sync::Arc;

/// Stable handle to a node in a [`DiGraph`].
///
/// Ids are never reused within one graph instance, so a `NodeId` obtained
/// while enumerating application points stays valid (or is reported as
/// removed) across subsequent edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Stable handle to an edge in a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Raw index, mainly useful for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index (e.g. deserialisation). The id is
    /// only meaningful against the graph it originally came from.
    pub fn from_raw(i: u32) -> Self {
        NodeId(i)
    }
}

impl EdgeId {
    /// Raw index, mainly useful for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index (e.g. deserialisation). The id is
    /// only meaningful against the graph it originally came from.
    pub fn from_raw(i: u32) -> Self {
        EdgeId(i)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Errors produced by structural graph edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The referenced node does not exist (never existed or was removed).
    MissingNode(NodeId),
    /// The referenced edge does not exist (never existed or was removed).
    MissingEdge(EdgeId),
    /// An edit would have produced a self-loop where none is allowed.
    SelfLoop(NodeId),
    /// A splice operation received an empty or otherwise unusable subgraph.
    InvalidSubgraph(&'static str),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingNode(n) => write!(f, "node {n} does not exist"),
            GraphError::MissingEdge(e) => write!(f, "edge {e} does not exist"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on {n} is not allowed"),
            GraphError::InvalidSubgraph(msg) => write!(f, "invalid subgraph: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[derive(Debug, Clone)]
struct NodeSlot<N> {
    weight: N,
    /// Outgoing edge ids, in insertion order.
    out: Vec<EdgeId>,
    /// Incoming edge ids, in insertion order.
    inc: Vec<EdgeId>,
}

#[derive(Debug, Clone)]
struct EdgeSlot<E> {
    weight: E,
    src: NodeId,
    dst: NodeId,
}

/// A borrowed view of one edge: id, endpoints and weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef<'a, E> {
    /// The edge's stable id.
    pub id: EdgeId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Borrowed edge weight.
    pub weight: &'a E,
}

/// Arena-backed directed multigraph with stable ids.
///
/// * `N` — node weight (an ETL operation in the POIESIS model).
/// * `E` — edge weight (a transition; often carries schema/channel info).
///
/// Parallel edges are allowed (the ETL model itself forbids them at a higher
/// layer where needed); self-loops are rejected because an ETL transition
/// from an operation to itself is meaningless.
///
/// Slots are `Arc`-shared: `clone()` is cheap and structurally shares every
/// slot with the original; mutating either side copies only the touched slots
/// (copy-on-write), so a fork never observes writes through to its base.
#[derive(Debug)]
pub struct DiGraph<N, E> {
    nodes: Vec<Option<Arc<NodeSlot<N>>>>,
    edges: Vec<Option<Arc<EdgeSlot<E>>>>,
    node_count: usize,
    edge_count: usize,
}

impl<N, E> Clone for DiGraph<N, E> {
    /// `O(n)` refcount bumps; no node or edge weight is cloned.
    fn clone(&self) -> Self {
        DiGraph {
            nodes: self.nodes.clone(),
            edges: self.edges.clone(),
            node_count: self.node_count,
            edge_count: self.edge_count,
        }
    }
}

/// Difference between a copy-on-write fork and the base it was cloned from,
/// recovered by [`DiGraph::cow_delta`].
#[derive(Debug, Clone, Default)]
pub struct CowDelta {
    /// Live nodes of the fork whose slot diverged from the base: added nodes,
    /// nodes with edited weights, and nodes whose adjacency changed. Endpoints
    /// of edges with diverged slots are folded in too, so any semantic change
    /// is anchored at a touched node. Sorted ascending, deduplicated.
    pub touched_nodes: Vec<NodeId>,
    /// Nodes live in the base but removed in the fork. Sorted ascending.
    pub removed_nodes: Vec<NodeId>,
}

impl CowDelta {
    /// True when the fork's structure is identical (slot-for-slot shared)
    /// with its base.
    pub fn is_empty(&self) -> bool {
        self.touched_nodes.is_empty() && self.removed_nodes.is_empty()
    }
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            node_count: 0,
            edge_count: 0,
        }
    }

    /// Creates an empty graph with pre-allocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            node_count: 0,
            edge_count: 0,
        }
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Upper bound (exclusive) on node indices ever allocated; useful for
    /// dense side tables indexed by [`NodeId::index`].
    pub fn node_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Upper bound (exclusive) on edge indices ever allocated.
    pub fn edge_bound(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node, returning its stable id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(Arc::new(NodeSlot {
            weight,
            out: Vec::new(),
            inc: Vec::new(),
        })));
        self.node_count += 1;
        id
    }

    /// Adds a directed edge `src → dst`.
    ///
    /// Fails if either endpoint is missing or if `src == dst`.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) -> Result<EdgeId, GraphError>
    where
        N: Clone,
    {
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        if !self.contains_node(src) {
            return Err(GraphError::MissingNode(src));
        }
        if !self.contains_node(dst) {
            return Err(GraphError::MissingNode(dst));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges
            .push(Some(Arc::new(EdgeSlot { weight, src, dst })));
        self.slot_mut(src).out.push(id);
        self.slot_mut(dst).inc.push(id);
        self.edge_count += 1;
        Ok(id)
    }

    /// True if the node id refers to a live node.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(|s| s.is_some())
    }

    /// True if the edge id refers to a live edge.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some_and(|s| s.is_some())
    }

    fn slot(&self, n: NodeId) -> &NodeSlot<N> {
        self.nodes[n.index()].as_ref().expect("live node")
    }

    /// Copy-on-write access: unshares the slot from any fork before handing
    /// out the mutable borrow.
    fn slot_mut(&mut self, n: NodeId) -> &mut NodeSlot<N>
    where
        N: Clone,
    {
        Arc::make_mut(self.nodes[n.index()].as_mut().expect("live node"))
    }

    fn eslot(&self, e: EdgeId) -> &EdgeSlot<E> {
        self.edges[e.index()].as_ref().expect("live edge")
    }

    fn eslot_mut(&mut self, e: EdgeId) -> &mut EdgeSlot<E>
    where
        E: Clone,
    {
        Arc::make_mut(self.edges[e.index()].as_mut().expect("live edge"))
    }

    /// Borrow a node weight.
    pub fn node(&self, n: NodeId) -> Option<&N> {
        self.nodes.get(n.index())?.as_deref().map(|s| &s.weight)
    }

    /// Mutably borrow a node weight (copy-on-write: unshares the slot).
    pub fn node_mut(&mut self, n: NodeId) -> Option<&mut N>
    where
        N: Clone,
    {
        self.nodes
            .get_mut(n.index())?
            .as_mut()
            .map(|s| &mut Arc::make_mut(s).weight)
    }

    /// Borrow an edge weight.
    pub fn edge(&self, e: EdgeId) -> Option<&E> {
        self.edges.get(e.index())?.as_deref().map(|s| &s.weight)
    }

    /// Mutably borrow an edge weight (copy-on-write: unshares the slot).
    pub fn edge_mut(&mut self, e: EdgeId) -> Option<&mut E>
    where
        E: Clone,
    {
        self.edges
            .get_mut(e.index())?
            .as_mut()
            .map(|s| &mut Arc::make_mut(s).weight)
    }

    /// Endpoints `(src, dst)` of a live edge.
    pub fn endpoints(&self, e: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges.get(e.index())?.as_ref().map(|s| (s.src, s.dst))
    }

    /// Removes a node and every incident edge, returning its weight.
    pub fn remove_node(&mut self, n: NodeId) -> Option<N>
    where
        N: Clone,
        E: Clone,
    {
        if !self.contains_node(n) {
            return None;
        }
        let incident: Vec<EdgeId> = {
            let slot = self.slot(n);
            slot.out.iter().chain(slot.inc.iter()).copied().collect()
        };
        for e in incident {
            self.remove_edge(e);
        }
        let slot = self.nodes[n.index()].take().expect("live node");
        self.node_count -= 1;
        Some(Arc::try_unwrap(slot).map_or_else(|s| s.weight.clone(), |s| s.weight))
    }

    /// Removes an edge, returning its weight.
    pub fn remove_edge(&mut self, e: EdgeId) -> Option<E>
    where
        N: Clone,
        E: Clone,
    {
        if !self.contains_edge(e) {
            return None;
        }
        let slot = self.edges[e.index()].take().expect("live edge");
        self.slot_mut(slot.src).out.retain(|&x| x != e);
        self.slot_mut(slot.dst).inc.retain(|&x| x != e);
        self.edge_count -= 1;
        Some(Arc::try_unwrap(slot).map_or_else(|s| s.weight.clone(), |s| s.weight))
    }

    /// Iterator over live node ids, ascending.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| NodeId(i as u32)))
    }

    /// Iterator over `(id, &weight)` for live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (NodeId(i as u32), &s.weight)))
    }

    /// Iterator over live edge ids, ascending.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| EdgeId(i as u32)))
    }

    /// Iterator over borrowed edge views.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref().map(|s| EdgeRef {
                id: EdgeId(i as u32),
                src: s.src,
                dst: s.dst,
                weight: &s.weight,
            })
        })
    }

    /// Outgoing edges of `n`, in insertion order.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.slot(n).out.iter().copied()
    }

    /// Incoming edges of `n`, in insertion order.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.slot(n).inc.iter().copied()
    }

    /// Successor nodes of `n` (one entry per outgoing edge).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.slot(n).out.iter().map(move |&e| self.eslot(e).dst)
    }

    /// Predecessor nodes of `n` (one entry per incoming edge).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.slot(n).inc.iter().map(move |&e| self.eslot(e).src)
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.slot(n).out.len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.slot(n).inc.len()
    }

    /// Nodes with in-degree 0 (ETL sources sit here).
    pub fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.in_degree(n) == 0)
    }

    /// Nodes with out-degree 0 (ETL sinks / load targets sit here).
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.out_degree(n) == 0)
    }

    /// Retargets an existing edge to a new destination, keeping its id and
    /// weight. Used by splice operations.
    pub fn retarget_edge(&mut self, e: EdgeId, new_dst: NodeId) -> Result<(), GraphError>
    where
        N: Clone,
        E: Clone,
    {
        if !self.contains_edge(e) {
            return Err(GraphError::MissingEdge(e));
        }
        if !self.contains_node(new_dst) {
            return Err(GraphError::MissingNode(new_dst));
        }
        let (src, old_dst) = self.endpoints(e).expect("live edge");
        if src == new_dst {
            return Err(GraphError::SelfLoop(src));
        }
        if old_dst == new_dst {
            return Ok(());
        }
        self.slot_mut(old_dst).inc.retain(|&x| x != e);
        self.slot_mut(new_dst).inc.push(e);
        self.eslot_mut(e).dst = new_dst;
        Ok(())
    }

    /// Re-sources an existing edge from a new origin, keeping id and weight.
    pub fn resource_edge(&mut self, e: EdgeId, new_src: NodeId) -> Result<(), GraphError>
    where
        N: Clone,
        E: Clone,
    {
        if !self.contains_edge(e) {
            return Err(GraphError::MissingEdge(e));
        }
        if !self.contains_node(new_src) {
            return Err(GraphError::MissingNode(new_src));
        }
        let (old_src, dst) = self.endpoints(e).expect("live edge");
        if dst == new_src {
            return Err(GraphError::SelfLoop(dst));
        }
        if old_src == new_src {
            return Ok(());
        }
        self.slot_mut(old_src).out.retain(|&x| x != e);
        self.slot_mut(new_src).out.push(e);
        self.eslot_mut(e).src = new_src;
        Ok(())
    }

    /// Moves edge `e` (already incoming at `v`) to position `pos` within
    /// `v`'s incoming-edge order. Splice operations use this to preserve
    /// the input ordering of multi-input operators (a join's left/right
    /// sides are positional).
    pub fn set_in_position(&mut self, v: NodeId, e: EdgeId, pos: usize) -> Result<(), GraphError>
    where
        N: Clone,
    {
        if !self.contains_node(v) {
            return Err(GraphError::MissingNode(v));
        }
        let inc = &mut self.slot_mut(v).inc;
        let cur = inc
            .iter()
            .position(|&x| x == e)
            .ok_or(GraphError::MissingEdge(e))?;
        let e = inc.remove(cur);
        let pos = pos.min(inc.len());
        inc.insert(pos, e);
        Ok(())
    }

    /// Maps node and edge weights into a new graph, preserving ids exactly
    /// (including tombstones), so side tables remain valid.
    pub fn map<N2, E2>(
        &self,
        mut fnode: impl FnMut(NodeId, &N) -> N2,
        mut fedge: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiGraph<N2, E2> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    s.as_ref().map(|s| {
                        Arc::new(NodeSlot {
                            weight: fnode(NodeId(i as u32), &s.weight),
                            out: s.out.clone(),
                            inc: s.inc.clone(),
                        })
                    })
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    s.as_ref().map(|s| {
                        Arc::new(EdgeSlot {
                            weight: fedge(EdgeId(i as u32), &s.weight),
                            src: s.src,
                            dst: s.dst,
                        })
                    })
                })
                .collect(),
            node_count: self.node_count,
            edge_count: self.edge_count,
        }
    }

    /// Recovers the set of nodes on which `self` (a copy-on-write fork)
    /// diverged from `base`, by comparing slot pointers.
    ///
    /// Any mutation — weight edit, adjacency change, node/edge add or remove —
    /// unshares the slots it touches, so pointer inequality is a sound
    /// overapproximation of "semantically changed" and pointer equality is an
    /// exact proof of "identical". Endpoints of edges whose slot diverged are
    /// folded into `touched_nodes` so edge-weight edits (which do not unshare
    /// node slots) are still anchored at a node.
    ///
    /// `base` must be the graph this one was cloned from (ids are only
    /// comparable within one clone family); `self.cow_delta(self)` is empty.
    pub fn cow_delta(&self, base: &Self) -> CowDelta {
        let mut touched: Vec<NodeId> = Vec::new();
        let mut removed: Vec<NodeId> = Vec::new();
        let upper = self.nodes.len().max(base.nodes.len());
        for i in 0..upper {
            let ours = self.nodes.get(i).and_then(|s| s.as_ref());
            let theirs = base.nodes.get(i).and_then(|s| s.as_ref());
            match (ours, theirs) {
                (Some(a), Some(b)) => {
                    if !Arc::ptr_eq(a, b) {
                        touched.push(NodeId(i as u32));
                    }
                }
                (Some(_), None) => touched.push(NodeId(i as u32)),
                (None, Some(_)) => removed.push(NodeId(i as u32)),
                (None, None) => {}
            }
        }
        let eupper = self.edges.len().max(base.edges.len());
        for i in 0..eupper {
            let ours = self.edges.get(i).and_then(|s| s.as_ref());
            let theirs = base.edges.get(i).and_then(|s| s.as_ref());
            let diverged = match (ours, theirs) {
                (Some(a), Some(b)) => !Arc::ptr_eq(a, b),
                (Some(_), None) => true,
                // Edge removed: remove_edge unshared both endpoint slots, so
                // the anchoring nodes are already in `touched` (or removed).
                (None, _) => false,
            };
            if diverged {
                let s = ours.expect("diverged implies live in self");
                touched.push(s.src);
                touched.push(s.dst);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        CowDelta {
            touched_nodes: touched,
            removed_nodes: removed,
        }
    }

    /// Number of live node slots structurally shared (same allocation) with
    /// `base`. Diagnostic for tests and benchmarks of copy-on-write forking.
    pub fn shared_node_slots(&self, base: &Self) -> usize {
        self.nodes
            .iter()
            .zip(base.nodes.iter())
            .filter(|(a, b)| match (a, b) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, u32>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(a, c, 2).unwrap();
        g.add_edge(b, d, 3).unwrap();
        g.add_edge(c, d, 4).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn add_and_query_nodes_edges() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.node(a), Some(&"a"));
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.predecessors(d).collect::<Vec<_>>(), vec![b, c]);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        assert_eq!(g.add_edge(a, a, ()), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn missing_endpoint_rejected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let ghost = NodeId(99);
        assert_eq!(
            g.add_edge(a, ghost, ()),
            Err(GraphError::MissingNode(ghost))
        );
        assert_eq!(
            g.add_edge(ghost, a, ()),
            Err(GraphError::MissingNode(ghost))
        );
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let (mut g, [a, b, _c, d]) = diamond();
        let e = g.out_edges(a).next().unwrap();
        assert_eq!(g.remove_edge(e), Some(1));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(b), 0);
        assert!(!g.contains_edge(e));
        // d untouched
        assert_eq!(g.in_degree(d), 2);
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, [a, b, c, d]) = diamond();
        assert_eq!(g.remove_node(b), Some("b"));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(d), 1);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![c]);
    }

    #[test]
    fn ids_stable_after_removal() {
        let (mut g, [a, b, c, d]) = diamond();
        g.remove_node(b);
        // Remaining ids still resolve.
        assert_eq!(g.node(a), Some(&"a"));
        assert_eq!(g.node(c), Some(&"c"));
        assert_eq!(g.node(d), Some(&"d"));
        assert_eq!(g.node(b), None);
        // New node takes a fresh id, not b's.
        let e = g.add_node("e");
        assert_ne!(e, b);
    }

    #[test]
    fn sources_and_sinks() {
        let (g, [a, _b, _c, d]) = diamond();
        assert_eq!(g.sources().collect::<Vec<_>>(), vec![a]);
        assert_eq!(g.sinks().collect::<Vec<_>>(), vec![d]);
    }

    #[test]
    fn retarget_edge_moves_incoming_list() {
        let (mut g, [a, b, c, _d]) = diamond();
        let ab = g.out_edges(a).next().unwrap();
        g.retarget_edge(ab, c).unwrap();
        assert_eq!(g.endpoints(ab), Some((a, c)));
        assert_eq!(g.in_degree(b), 0);
        assert_eq!(g.in_degree(c), 2);
        // weight preserved
        assert_eq!(g.edge(ab), Some(&1));
    }

    #[test]
    fn resource_edge_moves_outgoing_list() {
        let (mut g, [a, b, c, _d]) = diamond();
        let ab = g.out_edges(a).next().unwrap();
        g.resource_edge(ab, c).unwrap();
        assert_eq!(g.endpoints(ab), Some((c, b)));
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.out_degree(c), 2);
    }

    #[test]
    fn retarget_rejects_self_loop() {
        let (mut g, [a, _b, _c, _d]) = diamond();
        let ab = g.out_edges(a).next().unwrap();
        assert_eq!(g.retarget_edge(ab, a), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn map_preserves_structure() {
        let (g, [a, _b, _c, d]) = diamond();
        let g2 = g.map(|_, n| n.to_uppercase(), |_, e| *e * 10);
        assert_eq!(g2.node(a), Some(&"A".to_string()));
        assert_eq!(g2.node_count(), 4);
        assert_eq!(g2.edge_count(), 4);
        let w: Vec<u32> = g2.edges().map(|e| *e.weight).collect();
        assert_eq!(w, vec![10, 20, 30, 40]);
        assert_eq!(g2.in_degree(d), 2);
    }

    #[test]
    fn cow_clone_shares_all_slots() {
        let (g, _) = diamond();
        let f = g.clone();
        assert_eq!(f.shared_node_slots(&g), 4);
        assert!(f.cow_delta(&g).is_empty());
        assert!(g.cow_delta(&g).is_empty());
    }

    #[test]
    fn cow_fork_mutation_never_observed_by_base() {
        let (g, [a, b, _c, d]) = diamond();
        let mut f = g.clone();
        *f.node_mut(a).unwrap() = "A!";
        f.remove_node(b);
        assert_eq!(g.node(a), Some(&"a"));
        assert!(g.contains_node(b));
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(f.node(a), Some(&"A!"));
        assert!(!f.contains_node(b));
    }

    #[test]
    fn cow_delta_reports_touched_and_removed() {
        let (g, [a, b, c, d]) = diamond();
        let mut f = g.clone();
        *f.node_mut(c).unwrap() = "C!";
        f.remove_node(b); // also unshares a (out list) and d (inc list)
        let x = f.add_node("x");
        f.add_edge(c, x, 9).unwrap();
        let delta = f.cow_delta(&g);
        assert_eq!(delta.removed_nodes, vec![b]);
        assert_eq!(delta.touched_nodes, vec![a, c, d, x]);
    }

    #[test]
    fn cow_delta_anchors_edge_weight_edits_at_endpoints() {
        let (g, [a, b, _c, _d]) = diamond();
        let mut f = g.clone();
        let ab = f.out_edges(a).next().unwrap();
        *f.edge_mut(ab).unwrap() = 100;
        // Edge weight edit does not unshare node slots…
        assert_eq!(f.shared_node_slots(&g), 4);
        // …but the delta still anchors the change at both endpoints.
        let delta = f.cow_delta(&g);
        assert_eq!(delta.touched_nodes, vec![a, b]);
        assert!(delta.removed_nodes.is_empty());
        assert_eq!(g.edge(ab), Some(&1));
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(a, b, 2).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b, b]);
    }
}
