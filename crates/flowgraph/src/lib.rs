//! `flowgraph` — a small, dependency-light directed graph library purpose-built
//! for modelling ETL process flows and splicing *Flow Component Patterns*
//! (FCPs) into them, as required by the POIESIS planner (EDBT 2015).
//!
//! The paper models an ETL process as a graph `G = (V, E)` where each node is
//! an ETL flow operation and each directed edge a transition between
//! operations. Pattern application needs three structural edits that generic
//! graph crates do not expose directly:
//!
//! * **interpose on an edge** — insert a node (or a whole sub-flow) between
//!   two consecutive operations (e.g. `FilterNullValues` on an edge);
//! * **replace a node with a sub-graph** — e.g. `ParallelizeTask` replaces an
//!   operation with `partition → k replicas → merge`;
//! * **disjoint merge** — embed one graph into another with stable id
//!   remapping, used when a pattern's internal representation (itself an ETL
//!   flow) is deployed onto the host flow.
//!
//! Nodes and edges live in slab arenas with stable ids: removing an element
//! never invalidates the ids of the remaining ones, which the planner relies
//! on when it enumerates application points once and then applies many
//! alternative combinations against the same base flow.
//!
//! # Example
//!
//! ```
//! use flowgraph::DiGraph;
//!
//! let mut g: DiGraph<&str, ()> = DiGraph::new();
//! let a = g.add_node("extract");
//! let b = g.add_node("load");
//! let e = g.add_edge(a, b, ()).unwrap();
//! // Interpose a cleaning step on the edge.
//! let splice = g.interpose_on_edge(e, "filter", (), ()).unwrap();
//! assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![splice.node]);
//! assert_eq!(g.successors(splice.node).collect::<Vec<_>>(), vec![b]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod algo;
mod dot;
mod graph;
mod metrics;
mod splice;

pub use algo::{
    affected_topo, critical_path, has_cycle, is_dag, longest_path_len, reachable_from,
    shortest_path_len, topo_sort, weakly_connected_components, TopoError,
};
pub use dot::to_dot;
pub use graph::{CowDelta, DiGraph, EdgeId, EdgeRef, GraphError, NodeId};
pub use metrics::{coupling, degree_stats, density, fan_in, fan_out, DegreeStats};
pub use splice::{InterposeSplice, SubgraphSplice};
