//! Property-based tests for the flowgraph invariants the planner relies on:
//! splices never create cycles in a DAG, id stability, and adjacency
//! consistency under random edit sequences.

use flowgraph::{is_dag, longest_path_len, topo_sort, DiGraph, NodeId};
use proptest::prelude::*;

/// Builds a random DAG with `n` nodes; edges only go from lower to higher
/// node index so acyclicity holds by construction.
fn arb_dag(max_nodes: usize) -> impl Strategy<Value = DiGraph<u32, u32>> {
    (2..max_nodes).prop_flat_map(|n| {
        let pairs = proptest::collection::vec((0..n, 0..n), 0..n * 2);
        pairs.prop_map(move |pairs| {
            let mut g = DiGraph::new();
            let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(i as u32)).collect();
            for (a, b) in pairs {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                if lo != hi {
                    let _ = g.add_edge(ids[lo], ids[hi], (lo * 100 + hi) as u32);
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn dag_by_construction_is_dag(g in arb_dag(20)) {
        prop_assert!(is_dag(&g));
    }

    #[test]
    fn topo_order_respects_edges(g in arb_dag(20)) {
        let order = topo_sort(&g).unwrap();
        prop_assert_eq!(order.len(), g.node_count());
        let mut pos = vec![usize::MAX; g.node_bound()];
        for (i, n) in order.iter().enumerate() {
            pos[n.index()] = i;
        }
        for e in g.edges() {
            prop_assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn interpose_preserves_dag_and_grows_by_one(g in arb_dag(15), pick in any::<prop::sample::Index>()) {
        let mut g = g;
        let edges: Vec<_> = g.edge_ids().collect();
        prop_assume!(!edges.is_empty());
        let e = edges[pick.index(edges.len())];
        let before_nodes = g.node_count();
        let before_edges = g.edge_count();
        let lp_before = longest_path_len(&g).unwrap();
        g.interpose_on_edge(e, 999, 0, 0).unwrap();
        prop_assert!(is_dag(&g));
        prop_assert_eq!(g.node_count(), before_nodes + 1);
        prop_assert_eq!(g.edge_count(), before_edges + 1);
        // Longest path never shrinks when a node is interposed.
        prop_assert!(longest_path_len(&g).unwrap() >= lp_before);
    }

    #[test]
    fn node_removal_keeps_adjacency_consistent(g in arb_dag(15), pick in any::<prop::sample::Index>()) {
        let mut g = g;
        let nodes: Vec<_> = g.node_ids().collect();
        let victim = nodes[pick.index(nodes.len())];
        g.remove_node(victim);
        // No edge may reference the removed node.
        for e in g.edges() {
            prop_assert!(e.src != victim && e.dst != victim);
            prop_assert!(g.contains_node(e.src) && g.contains_node(e.dst));
        }
        // Degree bookkeeping must match edge list.
        for n in g.node_ids() {
            let out = g.edges().filter(|e| e.src == n).count();
            let inc = g.edges().filter(|e| e.dst == n).count();
            prop_assert_eq!(g.out_degree(n), out);
            prop_assert_eq!(g.in_degree(n), inc);
        }
    }

    #[test]
    fn embed_preserves_both_structures(host in arb_dag(10), donor in arb_dag(8)) {
        let mut host = host;
        let hn = host.node_count();
        let he = host.edge_count();
        let splice = host.embed(&donor);
        prop_assert_eq!(host.node_count(), hn + donor.node_count());
        prop_assert_eq!(host.edge_count(), he + donor.edge_count());
        prop_assert!(is_dag(&host));
        // Every donor edge must exist (remapped) in the host.
        for e in donor.edges() {
            let s = splice.mapped(e.src).unwrap();
            let d = splice.mapped(e.dst).unwrap();
            prop_assert!(host.successors(s).any(|x| x == d));
        }
    }
}
