//! `datagen` — workload generation for the POIESIS reproduction.
//!
//! The paper's demo (§4) loads two initial ETL processes "based on the TPC-DS
//! and TPC-H benchmarks … contain\[ing\] tens of operators, extracting data
//! from multiple sources". We do not have the authors' xLM exports, so this
//! crate rebuilds equivalent workloads:
//!
//! * **source catalogs** ([`Catalog`]) with TPC-H- and TPC-DS-shaped tables,
//!   generated synthetically with a seeded RNG and a configurable
//!   [`DirtProfile`] (null rate, duplicate rate, corruption rate, staleness)
//!   so the data-quality FCPs have measurable work to do;
//! * the **demo ETL flows**: [`tpch::tpch_flow`] (~21 operators) and
//!   [`tpcds::tpcds_flow`] (~30 operators), plus [`fig2::purchases_flow`],
//!   a faithful reconstruction of the S_Purchases sub-flow in the paper's
//!   Fig. 2 (FILTER → SPLIT required attributes → DERIVE VALUES →
//!   Group_A/Group_B branches → MERGE);
//! * clean **reference tables** (`ref_<table>`) that the `CrosscheckSources`
//!   pattern consults to repair corrupted or missing values.
//!
//! Every generator is deterministic in its seed, so experiments are
//! reproducible run-to-run.

#![forbid(unsafe_code)]

mod catalog;
mod dirt;
pub mod fig2;
mod gen;
pub mod tpcds;
pub mod tpch;

pub use catalog::{Catalog, Table};
pub use dirt::DirtProfile;
pub use gen::{generate_table, TableSpec, REQUEST_TIME};

/// Marker appended to string values by the corruption injector and detected
/// by the accuracy measure. `CrosscheckSources` repairs values carrying it.
pub const CORRUPT_MARKER: &str = "~ERR";
