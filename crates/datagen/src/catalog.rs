//! The source catalog: named tables the simulator's Extract operations read.

use crate::dirt::DirtProfile;
use crate::gen::{generate_table, TableSpec, REQUEST_TIME};
use etl_model::{Schema, Tuple};
use std::collections::HashMap;

/// One materialised source table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Schema of the rows.
    pub schema: Schema,
    /// The (possibly dirty) rows an Extract reads.
    pub rows: Vec<Tuple>,
    /// Match-key attribute name (protected from dirt).
    pub key: String,
    /// Unix time of the source's last refresh; `REQUEST_TIME − last_update`
    /// is the paper's "request time − time of last update" measure.
    pub last_update: i64,
}

/// Named collection of source tables plus their clean reference twins.
///
/// For every table `t` registered with dirt, a clean `ref_t` twin is also
/// registered — that twin is what `CrosscheckSources` consults (the paper's
/// "crosschecking with alternative data sources").
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The moment "now" for freshness measures: fixed so experiments are
    /// reproducible.
    pub fn request_time(&self) -> i64 {
        REQUEST_TIME
    }

    /// Generates and registers a table (and its `ref_` twin) from a spec.
    pub fn add_generated(&mut self, spec: &TableSpec, dirt: &DirtProfile, seed: u64) {
        let (clean, dirty) = generate_table(spec, dirt, seed);
        let last_update = REQUEST_TIME - (dirt.staleness_hours * 3600.0) as i64;
        self.tables.insert(
            spec.name.clone(),
            Table {
                schema: spec.schema.clone(),
                rows: dirty,
                key: spec.key.clone(),
                last_update,
            },
        );
        self.tables.insert(
            format!("ref_{}", spec.name),
            Table {
                schema: spec.schema.clone(),
                rows: clean,
                key: spec.key.clone(),
                last_update: REQUEST_TIME,
            },
        );
    }

    /// Registers a pre-built table verbatim.
    pub fn add_table(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Iterates over `(name, table)` pairs (unordered).
    pub fn tables(&self) -> impl Iterator<Item = (&String, &Table)> {
        self.tables.iter()
    }

    /// Number of registered tables (including `ref_` twins).
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Worst (oldest) `last_update` across the named sources; used by the
    /// freshness measures. Unknown names are skipped.
    pub fn oldest_update(&self, sources: &[String]) -> Option<i64> {
        sources
            .iter()
            .filter_map(|s| self.tables.get(s))
            .map(|t| t.last_update)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etl_model::{Attribute, DataType};

    fn spec() -> TableSpec {
        TableSpec::new(
            "orders",
            Schema::new(vec![
                Attribute::required("o_id", DataType::Int),
                Attribute::new("o_status", DataType::Str),
            ]),
            100,
            "o_id",
        )
    }

    #[test]
    fn generated_table_registers_ref_twin() {
        let mut c = Catalog::new();
        c.add_generated(&spec(), &DirtProfile::filthy(), 1);
        assert!(c.table("orders").is_some());
        assert!(c.table("ref_orders").is_some());
        assert_eq!(c.len(), 2);
        // twin is clean: exactly the base row count, no marker
        let r = c.table("ref_orders").unwrap();
        assert_eq!(r.rows.len(), 100);
        assert_eq!(r.last_update, c.request_time());
    }

    #[test]
    fn staleness_reflected_in_last_update() {
        let mut c = Catalog::new();
        let dirt = DirtProfile {
            staleness_hours: 10.0,
            ..DirtProfile::clean()
        };
        c.add_generated(&spec(), &dirt, 1);
        let t = c.table("orders").unwrap();
        assert_eq!(c.request_time() - t.last_update, 36_000);
    }

    #[test]
    fn oldest_update_picks_minimum() {
        let mut c = Catalog::new();
        c.add_generated(
            &spec(),
            &DirtProfile {
                staleness_hours: 5.0,
                ..DirtProfile::clean()
            },
            1,
        );
        let mut other = spec();
        other.name = "items".into();
        c.add_generated(
            &other,
            &DirtProfile {
                staleness_hours: 50.0,
                ..DirtProfile::clean()
            },
            2,
        );
        let oldest = c
            .oldest_update(&["orders".to_string(), "items".to_string()])
            .unwrap();
        assert_eq!(c.request_time() - oldest, 180_000);
        assert_eq!(c.oldest_update(&["ghost".to_string()]), None);
    }
}
