//! TPC-DS-shaped demo workload: the second, larger initial ETL process of
//! the paper's demo (§4) — a retail-sales flow with five sources and three
//! warehouse marts.

use crate::catalog::Catalog;
use crate::dirt::DirtProfile;
use crate::gen::TableSpec;
use etl_model::expr::Expr;
use etl_model::{AggFunc, Attribute, DataType, EtlFlow, NodeId, OpKind, Operation, Schema};

/// Schema of the `store_sales`-like fact source.
pub fn store_sales_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("ss_id", DataType::Int),
        Attribute::new("ss_item_id", DataType::Int),
        Attribute::new("ss_store_id", DataType::Int),
        Attribute::new("ss_customer_id", DataType::Int),
        Attribute::new("ss_qty", DataType::Int),
        Attribute::new("ss_sales_price", DataType::Float),
        Attribute::new("ss_discount", DataType::Float),
        Attribute::new("ss_sold_ts", DataType::Timestamp),
    ])
}

/// Schema of the `item` dimension (type-2: `i_record_end_date` null for the
/// current record — exactly the predicate in the paper's Fig. 2).
pub fn item_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("i_item_id", DataType::Int),
        Attribute::new("i_name", DataType::Str),
        Attribute::new("i_category", DataType::Str),
        Attribute::new("i_current_price", DataType::Float),
        Attribute::new("i_record_end_date", DataType::Timestamp),
    ])
}

/// Schema of the `store` dimension (also type-2).
pub fn store_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("s_store_id", DataType::Int),
        Attribute::new("s_name", DataType::Str),
        Attribute::new("s_city", DataType::Str),
        Attribute::new("s_record_end_date", DataType::Timestamp),
    ])
}

/// Schema of the `customer_dim` dimension.
pub fn customer_dim_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("cd_customer_id", DataType::Int),
        Attribute::new("cd_name", DataType::Str),
        Attribute::new("cd_segment", DataType::Str),
        Attribute::new("cd_email", DataType::Str),
    ])
}

/// Schema of the `promotion` dimension.
pub fn promotion_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("p_promo_id", DataType::Int),
        Attribute::new("p_item_id", DataType::Int),
        Attribute::new("p_discount_rate", DataType::Float),
        Attribute::new("p_active", DataType::Bool),
    ])
}

/// Builds the TPC-DS-shaped catalog. `scale` is the `store_sales` row count.
pub fn tpcds_catalog(scale: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("store_sales", store_sales_schema(), scale, "ss_id"),
        dirt,
        seed,
    );
    c.add_generated(
        &TableSpec::new("item", item_schema(), scale / 5, "i_item_id"),
        dirt,
        seed.wrapping_add(1),
    );
    c.add_generated(
        &TableSpec::new("store", store_schema(), (scale / 50).max(4), "s_store_id"),
        dirt,
        seed.wrapping_add(2),
    );
    c.add_generated(
        &TableSpec::new(
            "customer_dim",
            customer_dim_schema(),
            scale / 8,
            "cd_customer_id",
        ),
        dirt,
        seed.wrapping_add(3),
    );
    c.add_generated(
        &TableSpec::new(
            "promotion",
            promotion_schema(),
            (scale / 20).max(4),
            "p_promo_id",
        ),
        dirt,
        seed.wrapping_add(4),
    );
    c
}

/// Handles to noteworthy operations of the TPC-DS flow.
#[derive(Debug, Clone, Copy)]
pub struct TpcdsFlowIds {
    /// The expensive net-amount derivation (`ParallelizeTask` target).
    pub derive_net: NodeId,
    /// The item join (early, near the sources).
    pub join_item: NodeId,
    /// The segment mart load.
    pub load_segment: NodeId,
}

/// Builds the TPC-DS demo ETL flow (~32 operators, 5 sources, 3 targets).
pub fn tpcds_flow() -> (EtlFlow, TpcdsFlowIds) {
    let mut f = EtlFlow::new("tpcds_etl");

    // fact leg
    let ext_ss = f.add_op(Operation::extract("store_sales", store_sales_schema()));
    let f_ss = f.add_op(
        Operation::filter(
            "FILTER positive qty",
            Expr::col("ss_qty").gt(Expr::lit_i(0)),
        )
        .with_selectivity(0.95),
    );
    let d_gross = f.add_op(
        Operation::derive(
            "DERIVE gross",
            vec![(
                "gross".to_string(),
                Expr::col("ss_qty").mul(Expr::col("ss_sales_price")),
            )],
        )
        .with_cost(0.020),
    );

    // item leg (type-2 current records, as in Fig. 2)
    let ext_i = f.add_op(Operation::extract("item", item_schema()));
    let f_i = f.add_op(
        Operation::filter(
            "FILTER current items",
            Expr::col("i_record_end_date").is_null(),
        )
        .with_selectivity(0.8),
    );
    let p_i = f.add_op(Operation::project(
        "PROJECT item attrs",
        vec![
            "i_item_id".into(),
            "i_name".into(),
            "i_category".into(),
            "i_current_price".into(),
        ],
    ));
    let j_item = f.add_op(Operation::new(
        "JOIN items",
        OpKind::Join {
            left_key: "ss_item_id".into(),
            right_key: "i_item_id".into(),
        },
    ));

    // store leg
    let ext_s = f.add_op(Operation::extract("store", store_schema()));
    let f_s = f.add_op(
        Operation::filter(
            "FILTER current stores",
            Expr::col("s_record_end_date").is_null(),
        )
        .with_selectivity(0.8),
    );
    let p_s = f.add_op(Operation::project(
        "PROJECT store attrs",
        vec!["s_store_id".into(), "s_name".into(), "s_city".into()],
    ));
    let j_store = f.add_op(Operation::new(
        "JOIN stores",
        OpKind::Join {
            left_key: "ss_store_id".into(),
            right_key: "s_store_id".into(),
        },
    ));

    // net derivation + group branches
    let conv = f.add_op(Operation::new(
        "CONVERT qty to float",
        OpKind::Convert {
            column: "ss_qty".into(),
            to: DataType::Float,
        },
    ));
    let d_net = f.add_op(
        Operation::derive(
            "DERIVE net with discounts",
            vec![(
                "net".to_string(),
                Expr::col("gross").mul(Expr::lit_f(1.0).sub(Expr::col("ss_discount"))),
            )],
        )
        .with_cost(0.040),
    );
    let router = f.add_op(Operation::new(
        "ROUTE bulk vs retail",
        OpKind::Router {
            predicate: Expr::col("ss_qty").gt(Expr::lit_f(25.0)),
        },
    ));
    let d_a = f.add_op(Operation::derive(
        "DERIVE score Group_A",
        vec![("score".to_string(), Expr::col("net").mul(Expr::lit_f(0.9)))],
    ));
    let d_b = f.add_op(Operation::derive(
        "DERIVE score Group_B",
        vec![("score".to_string(), Expr::col("net").mul(Expr::lit_f(1.1)))],
    ));
    let merge = f.add_op(Operation::new("MERGE groups", OpKind::Merge));
    let split = f.add_op(Operation::new("SPLIT to marts", OpKind::Split));

    // customer mart
    let ext_c = f.add_op(Operation::extract("customer_dim", customer_dim_schema()));
    let p_c = f.add_op(Operation::project(
        "PROJECT customer attrs",
        vec!["cd_customer_id".into(), "cd_segment".into()],
    ));
    let j_c = f.add_op(Operation::new(
        "JOIN customers",
        OpKind::Join {
            left_key: "ss_customer_id".into(),
            right_key: "cd_customer_id".into(),
        },
    ));
    let agg1 = f.add_op(Operation::new(
        "AGGREGATE by segment",
        OpKind::Aggregate {
            group_by: vec!["cd_segment".into()],
            aggs: vec![
                ("segment_net".into(), AggFunc::Sum, "net".into()),
                ("sale_count".into(), AggFunc::Count, "ss_id".into()),
            ],
        },
    ));
    let sort1 = f.add_op(Operation::new(
        "SORT by segment",
        OpKind::Sort {
            by: vec!["cd_segment".into()],
        },
    ));
    let load1 = f.add_op(Operation::load("dw_segment_mart"));

    // city mart
    let agg2 = f.add_op(Operation::new(
        "AGGREGATE by city",
        OpKind::Aggregate {
            group_by: vec!["s_city".into()],
            aggs: vec![
                ("city_net".into(), AggFunc::Sum, "net".into()),
                ("city_qty".into(), AggFunc::Sum, "ss_qty".into()),
            ],
        },
    ));
    let sort2 = f.add_op(Operation::new(
        "SORT by city",
        OpKind::Sort {
            by: vec!["s_city".into()],
        },
    ));
    let load2 = f.add_op(Operation::load("dw_city_mart"));

    // promotion mart
    let ext_p = f.add_op(Operation::extract("promotion", promotion_schema()));
    let f_p = f.add_op(
        Operation::filter(
            "FILTER active promos",
            Expr::col("p_active").eq(Expr::lit_b(true)),
        )
        .with_selectivity(0.5),
    );
    let j_p = f.add_op(Operation::new(
        "JOIN promotions",
        OpKind::Join {
            left_key: "ss_item_id".into(),
            right_key: "p_item_id".into(),
        },
    ));
    let d_promo = f.add_op(Operation::derive(
        "DERIVE promo net",
        vec![(
            "promo_net".to_string(),
            Expr::col("net").mul(Expr::lit_f(1.0).sub(Expr::col("p_discount_rate"))),
        )],
    ));
    let agg3 = f.add_op(Operation::new(
        "AGGREGATE by promo",
        OpKind::Aggregate {
            group_by: vec!["p_promo_id".into()],
            aggs: vec![("promo_total".into(), AggFunc::Sum, "promo_net".into())],
        },
    ));
    let load3 = f.add_op(Operation::load("dw_promo_mart"));

    // wiring
    f.connect(ext_ss, f_ss).unwrap();
    f.connect(f_ss, d_gross).unwrap();
    f.connect(ext_i, f_i).unwrap();
    f.connect(f_i, p_i).unwrap();
    f.connect(d_gross, j_item).unwrap();
    f.connect(p_i, j_item).unwrap();
    f.connect(ext_s, f_s).unwrap();
    f.connect(f_s, p_s).unwrap();
    f.connect(j_item, j_store).unwrap();
    f.connect(p_s, j_store).unwrap();
    f.connect(j_store, conv).unwrap();
    f.connect(conv, d_net).unwrap();
    f.connect(d_net, router).unwrap();
    f.connect_labelled(router, d_a, "Group_A").unwrap();
    f.connect_labelled(router, d_b, "Group_B").unwrap();
    f.connect(d_a, merge).unwrap();
    f.connect(d_b, merge).unwrap();
    f.connect(merge, split).unwrap();
    f.connect(ext_c, p_c).unwrap();
    f.connect(split, j_c).unwrap();
    f.connect(p_c, j_c).unwrap();
    f.connect(j_c, agg1).unwrap();
    f.connect(agg1, sort1).unwrap();
    f.connect(sort1, load1).unwrap();
    f.connect(split, agg2).unwrap();
    f.connect(agg2, sort2).unwrap();
    f.connect(sort2, load2).unwrap();
    f.connect(ext_p, f_p).unwrap();
    f.connect(split, j_p).unwrap();
    f.connect(f_p, j_p).unwrap();
    f.connect(j_p, d_promo).unwrap();
    f.connect(d_promo, agg3).unwrap();
    f.connect(agg3, load3).unwrap();

    (
        f,
        TpcdsFlowIds {
            derive_net: d_net,
            join_item: j_item,
            load_segment: load1,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_validates() {
        let (f, _) = tpcds_flow();
        f.validate().unwrap();
    }

    #[test]
    fn flow_is_larger_than_tpch() {
        let (ds, _) = tpcds_flow();
        let (h, _) = crate::tpch::tpch_flow();
        assert!(ds.op_count() > h.op_count());
        assert!(ds.op_count() >= 30);
        assert_eq!(ds.ops_of_kind("extract").len(), 5);
        assert_eq!(ds.ops_of_kind("load").len(), 3);
    }

    #[test]
    fn catalog_has_all_sources() {
        let c = tpcds_catalog(1000, &DirtProfile::demo(), 9);
        for t in ["store_sales", "item", "store", "customer_dim", "promotion"] {
            assert!(c.table(t).is_some(), "missing {t}");
        }
        assert_eq!(c.len(), 10); // 5 sources + 5 ref twins
    }

    #[test]
    fn flow_ids_resolve() {
        let (f, ids) = tpcds_flow();
        assert_eq!(f.op(ids.derive_net).unwrap().kind.name(), "derive");
        assert_eq!(f.op(ids.join_item).unwrap().kind.name(), "join");
        assert_eq!(f.op(ids.load_segment).unwrap().kind.name(), "load");
    }
}
