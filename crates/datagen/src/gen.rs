//! Column-aware synthetic tuple generation.

use crate::dirt::DirtProfile;
use crate::CORRUPT_MARKER;
use etl_model::{DataType, Schema, Tuple, Value};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Specification of one synthetic table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name (the `source` an Extract names).
    pub name: String,
    /// Schema; the first attribute named `key` (below) is the match key.
    pub schema: Schema,
    /// Number of clean base rows.
    pub rows: usize,
    /// Name of the key attribute, protected from dirt.
    pub key: String,
}

impl TableSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        rows: usize,
        key: impl Into<String>,
    ) -> Self {
        TableSpec {
            name: name.into(),
            schema,
            rows,
            key: key.into(),
        }
    }
}

/// Reference epoch used for generated dates/timestamps (2026-01-01 UTC,
/// fixed so runs are comparable).
pub const REQUEST_TIME: i64 = 1_767_225_600;

const WORDS: &[&str] = &[
    "alpha", "bravo", "carmine", "delta", "ember", "falcon", "garnet", "harbor", "indigo",
    "juniper", "krypton", "lumen", "meridian", "nocturne", "opal", "prairie", "quartz", "rustic",
    "sable", "timber", "umber", "verdant", "willow", "xenon", "yonder", "zephyr",
];

/// Generates one column value for row `row` based on the attribute's name
/// and type, vaguely imitating TPC value distributions.
fn gen_value(attr_name: &str, dtype: DataType, row: usize, rng: &mut SmallRng) -> Value {
    let lower = attr_name.to_ascii_lowercase();
    match dtype {
        DataType::Int => {
            if lower.ends_with("_id") || lower.ends_with("key") || lower == "id" {
                Value::Int(row as i64 + 1)
            } else if lower.contains("qty") || lower.contains("quantity") || lower.contains("count")
            {
                Value::Int(rng.gen_range(1..=50))
            } else {
                Value::Int(rng.gen_range(0..=10_000))
            }
        }
        DataType::Float => {
            if lower.contains("price") || lower.contains("amount") || lower.contains("cost") {
                Value::Float((rng.gen_range(100..=100_000) as f64) / 100.0)
            } else if lower.contains("discount") || lower.contains("tax") || lower.contains("rate")
            {
                Value::Float((rng.gen_range(0..=30) as f64) / 100.0)
            } else {
                Value::Float(rng.gen_range(0.0..1_000.0))
            }
        }
        DataType::Str => {
            let w = WORDS.choose(rng).expect("WORDS is non-empty");
            if lower.contains("status") {
                Value::Str(
                    ["OK", "PENDING", "SHIPPED"]
                        .choose(rng)
                        .unwrap()
                        .to_string(),
                )
            } else if lower.contains("priority") {
                Value::Str(["HIGH", "MEDIUM", "LOW"].choose(rng).unwrap().to_string())
            } else {
                Value::Str(format!("{w}-{}", rng.gen_range(0..10_000)))
            }
        }
        DataType::Bool => Value::Bool(rng.gen_bool(0.5)),
        DataType::Date => {
            // within ~3 years before the request time
            let day = REQUEST_TIME / 86_400 - rng.gen_range(0..1_095);
            Value::Date(day)
        }
        DataType::Timestamp => {
            if lower.contains("end_date") {
                // Paper's Fig. 2 predicate checks `record_end_date = null` for
                // current records: most rows are current (null end date).
                if rng.gen_bool(0.8) {
                    Value::Null
                } else {
                    Value::Timestamp(REQUEST_TIME - rng.gen_range(0..86_400 * 365))
                }
            } else {
                Value::Timestamp(REQUEST_TIME - rng.gen_range(0..86_400 * 30))
            }
        }
    }
}

/// Generates `(clean_rows, dirty_rows)` for a table spec.
///
/// Dirty rows are the clean rows with nulls/corruption injected per the
/// profile plus duplicated rows appended; the key column is never touched.
pub fn generate_table(spec: &TableSpec, dirt: &DirtProfile, seed: u64) -> (Vec<Tuple>, Vec<Tuple>) {
    assert!(dirt.is_valid(), "invalid dirt profile");
    let mut rng = SmallRng::seed_from_u64(seed);
    let key_idx = spec.schema.index_of(&spec.key);
    let mut clean = Vec::with_capacity(spec.rows);
    for row in 0..spec.rows {
        let tuple: Tuple = spec
            .schema
            .attrs()
            .iter()
            .map(|a| gen_value(&a.name, a.dtype, row, &mut rng))
            .collect();
        clean.push(tuple);
    }
    let mut dirty = Vec::with_capacity(spec.rows);
    for t in &clean {
        let mut row = t.clone();
        for (i, v) in row.iter_mut().enumerate() {
            if Some(i) == key_idx {
                continue;
            }
            let attr = &spec.schema.attrs()[i];
            if attr.nullable && rng.gen_bool(dirt.null_rate) {
                *v = Value::Null;
                continue;
            }
            if attr.dtype == DataType::Str && rng.gen_bool(dirt.corrupt_rate) {
                if let Value::Str(s) = v {
                    s.push_str(CORRUPT_MARKER);
                }
            }
        }
        dirty.push(row.clone());
        if rng.gen_bool(dirt.dup_rate) {
            dirty.push(row);
        }
    }
    (clean, dirty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etl_model::Attribute;

    fn spec(rows: usize) -> TableSpec {
        TableSpec::new(
            "t",
            Schema::new(vec![
                Attribute::required("t_id", DataType::Int),
                Attribute::new("name", DataType::Str),
                Attribute::new("price", DataType::Float),
                Attribute::new("updated", DataType::Timestamp),
            ]),
            rows,
            "t_id",
        )
    }

    #[test]
    fn deterministic_in_seed() {
        let s = spec(50);
        let a = generate_table(&s, &DirtProfile::demo(), 7);
        let b = generate_table(&s, &DirtProfile::demo(), 7);
        assert_eq!(a, b);
        let c = generate_table(&s, &DirtProfile::demo(), 8);
        assert_ne!(a.1, c.1);
    }

    #[test]
    fn clean_profile_produces_identical_rows() {
        let s = spec(100);
        let (clean, dirty) = generate_table(&s, &DirtProfile::clean(), 1);
        assert_eq!(clean, dirty);
        assert_eq!(clean.len(), 100);
    }

    #[test]
    fn keys_are_sequential_and_protected() {
        let s = spec(200);
        let (_, dirty) = generate_table(&s, &DirtProfile::filthy(), 2);
        for row in &dirty {
            assert!(
                matches!(row[0], Value::Int(k) if k >= 1),
                "key must survive dirt"
            );
        }
    }

    #[test]
    fn filthy_profile_injects_nulls_dups_corruption() {
        let s = spec(500);
        let (clean, dirty) = generate_table(&s, &DirtProfile::filthy(), 3);
        assert!(dirty.len() > clean.len(), "expected duplicates");
        let nulls = dirty
            .iter()
            .flat_map(|r| r.iter())
            .filter(|v| v.is_null())
            .count();
        let clean_nulls = clean
            .iter()
            .flat_map(|r| r.iter())
            .filter(|v| v.is_null())
            .count();
        assert!(nulls > clean_nulls, "expected injected nulls");
        let corrupted = dirty
            .iter()
            .flat_map(|r| r.iter())
            .filter(|v| matches!(v, Value::Str(s) if s.ends_with(CORRUPT_MARKER)))
            .count();
        assert!(corrupted > 0, "expected corrupted strings");
    }

    #[test]
    fn value_shapes_follow_column_names() {
        let s = TableSpec::new(
            "shape",
            Schema::new(vec![
                Attribute::required("x_id", DataType::Int),
                Attribute::new("qty", DataType::Int),
                Attribute::new("discount", DataType::Float),
                Attribute::new("status", DataType::Str),
            ]),
            300,
            "x_id",
        );
        let (clean, _) = generate_table(&s, &DirtProfile::clean(), 4);
        for (i, row) in clean.iter().enumerate() {
            assert_eq!(row[0], Value::Int(i as i64 + 1));
            if let Value::Int(q) = row[1] {
                assert!((1..=50).contains(&q));
            } else {
                panic!("qty must be int");
            }
            if let Value::Float(d) = row[2] {
                assert!((0.0..=0.3).contains(&d));
            } else {
                panic!("discount must be float");
            }
            if let Value::Str(st) = &row[3] {
                assert!(["OK", "PENDING", "SHIPPED"].contains(&st.as_str()));
            } else {
                panic!("status must be str");
            }
        }
    }
}
