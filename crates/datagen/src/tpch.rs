//! TPC-H-shaped demo workload: source catalog and the first of the two
//! initial ETL processes the paper demonstrates with (§4).

use crate::catalog::Catalog;
use crate::dirt::DirtProfile;
use crate::gen::TableSpec;
use etl_model::expr::Expr;
use etl_model::{AggFunc, Attribute, DataType, EtlFlow, NodeId, OpKind, Operation, Schema};

/// Schema of the `lineitem`-like source.
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("l_lineid", DataType::Int),
        Attribute::new("l_orderkey", DataType::Int),
        Attribute::new("l_qty", DataType::Int),
        Attribute::new("l_extendedprice", DataType::Float),
        Attribute::new("l_discount", DataType::Float),
        Attribute::new("l_tax", DataType::Float),
        Attribute::new("l_shipdate", DataType::Date),
        Attribute::new("l_status", DataType::Str),
        Attribute::new("l_comment", DataType::Str),
    ])
}

/// Schema of the `orders`-like source.
pub fn orders_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("o_orderkey", DataType::Int),
        Attribute::new("o_custkey", DataType::Int),
        Attribute::new("o_status", DataType::Str),
        Attribute::new("o_totalprice", DataType::Float),
        Attribute::new("o_orderdate", DataType::Date),
        Attribute::new("o_priority", DataType::Str),
    ])
}

/// Schema of the `customer`-like source.
pub fn customer_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("c_custkey", DataType::Int),
        Attribute::new("c_name", DataType::Str),
        Attribute::new("c_nationkey", DataType::Int),
        Attribute::new("c_acctbal", DataType::Float),
        Attribute::new("c_segment", DataType::Str),
    ])
}

/// Builds the TPC-H-shaped source catalog. `scale` is the base row count of
/// `lineitem`; the other tables scale proportionally like the benchmark.
pub fn tpch_catalog(scale: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("lineitem", lineitem_schema(), scale, "l_lineid"),
        dirt,
        seed,
    );
    c.add_generated(
        &TableSpec::new("orders", orders_schema(), scale / 4, "o_orderkey"),
        dirt,
        seed.wrapping_add(1),
    );
    c.add_generated(
        &TableSpec::new("customer", customer_schema(), scale / 10, "c_custkey"),
        dirt,
        seed.wrapping_add(2),
    );
    c
}

/// Handles to noteworthy operations of the TPC-H flow, for tests and
/// benchmarks that need to point at specific application points.
#[derive(Debug, Clone, Copy)]
pub struct TpchFlowIds {
    /// The expensive revenue-derivation node (`ParallelizeTask` target).
    pub derive_revenue: NodeId,
    /// The first join.
    pub join_orders: NodeId,
    /// The segment-level load.
    pub load_segment: NodeId,
}

/// Builds the TPC-H demo ETL flow (21 operators, 3 sources, 2 targets).
///
/// Shape: lineitem and orders are filtered and joined; revenue is derived;
/// a router splits high-priority orders from the rest, each branch derives a
/// priority-specific score and the branches merge; the result is joined with
/// customers and aggregated into a per-segment mart, while a parallel branch
/// aggregates into a per-day mart.
pub fn tpch_flow() -> (EtlFlow, TpchFlowIds) {
    let mut f = EtlFlow::new("tpch_etl");

    // lineitem leg
    let ext_li = f.add_op(Operation::extract("lineitem", lineitem_schema()));
    let f_li = f.add_op(
        Operation::filter(
            "FILTER valid lineitems",
            Expr::col("l_qty")
                .gt(Expr::lit_i(0))
                .and(Expr::col("l_shipdate").is_not_null()),
        )
        .with_selectivity(0.9),
    );
    let conv = f.add_op(Operation::new(
        "CONVERT qty to float",
        OpKind::Convert {
            column: "l_qty".into(),
            to: DataType::Float,
        },
    ));
    let d_rev = f.add_op(
        Operation::derive(
            "DERIVE revenue",
            vec![
                (
                    "revenue".to_string(),
                    Expr::col("l_extendedprice").mul(Expr::lit_f(1.0).sub(Expr::col("l_discount"))),
                ),
                (
                    "net".to_string(),
                    Expr::col("l_extendedprice")
                        .mul(Expr::lit_f(1.0).sub(Expr::col("l_discount")))
                        .mul(Expr::lit_f(1.0).add(Expr::col("l_tax"))),
                ),
            ],
        )
        .with_cost(0.030),
    );

    // orders leg
    let ext_o = f.add_op(Operation::extract("orders", orders_schema()));
    let f_o = f.add_op(
        Operation::filter(
            "FILTER open orders",
            Expr::col("o_status").ne(Expr::lit_s("PENDING")),
        )
        .with_selectivity(0.66),
    );

    // join + priority split
    let j1 = f.add_op(Operation::new(
        "JOIN lineitem orders",
        OpKind::Join {
            left_key: "l_orderkey".into(),
            right_key: "o_orderkey".into(),
        },
    ));
    let router = f.add_op(Operation::new(
        "ROUTE by priority",
        OpKind::Router {
            predicate: Expr::col("o_priority").eq(Expr::lit_s("HIGH")),
        },
    ));
    let d_a = f.add_op(Operation::derive(
        "DERIVE score Group_A",
        vec![(
            "score".to_string(),
            Expr::col("revenue").mul(Expr::lit_f(1.25)),
        )],
    ));
    let d_b = f.add_op(Operation::derive(
        "DERIVE score Group_B",
        vec![(
            "score".to_string(),
            Expr::col("revenue").mul(Expr::lit_f(0.8)),
        )],
    ));
    let merge = f.add_op(Operation::new("MERGE priority groups", OpKind::Merge));
    let split = f.add_op(Operation::new("SPLIT to marts", OpKind::Split));

    // customer mart leg
    let ext_c = f.add_op(Operation::extract("customer", customer_schema()));
    let p_c = f.add_op(Operation::project(
        "PROJECT customer attrs",
        vec![
            "c_custkey".into(),
            "c_name".into(),
            "c_acctbal".into(),
            "c_segment".into(),
        ],
    ));
    let j2 = f.add_op(Operation::new(
        "JOIN customers",
        OpKind::Join {
            left_key: "o_custkey".into(),
            right_key: "c_custkey".into(),
        },
    ));
    let d_flag = f.add_op(Operation::derive(
        "DERIVE high_value flag",
        vec![(
            "high_value".to_string(),
            Expr::col("c_acctbal").gt(Expr::lit_f(500.0)),
        )],
    ));
    let agg1 = f.add_op(Operation::new(
        "AGGREGATE by segment",
        OpKind::Aggregate {
            group_by: vec!["c_segment".into()],
            aggs: vec![
                ("total_revenue".into(), AggFunc::Sum, "revenue".into()),
                ("order_count".into(), AggFunc::Count, "o_orderkey".into()),
                ("avg_score".into(), AggFunc::Avg, "score".into()),
            ],
        },
    ));
    let sort1 = f.add_op(Operation::new(
        "SORT by segment",
        OpKind::Sort {
            by: vec!["c_segment".into()],
        },
    ));
    let load1 = f.add_op(Operation::load("dw_segment_sales"));

    // daily mart leg
    let agg2 = f.add_op(Operation::new(
        "AGGREGATE by day",
        OpKind::Aggregate {
            group_by: vec!["o_orderdate".into()],
            aggs: vec![
                ("daily_revenue".into(), AggFunc::Sum, "revenue".into()),
                ("daily_qty".into(), AggFunc::Sum, "l_qty".into()),
            ],
        },
    ));
    let load2 = f.add_op(Operation::load("dw_daily_sales"));

    // wiring
    f.connect(ext_li, f_li).unwrap();
    f.connect(f_li, conv).unwrap();
    f.connect(conv, d_rev).unwrap();
    f.connect(ext_o, f_o).unwrap();
    f.connect(d_rev, j1).unwrap();
    f.connect(f_o, j1).unwrap();
    f.connect(j1, router).unwrap();
    f.connect_labelled(router, d_a, "Group_A").unwrap();
    f.connect_labelled(router, d_b, "Group_B").unwrap();
    f.connect(d_a, merge).unwrap();
    f.connect(d_b, merge).unwrap();
    f.connect(merge, split).unwrap();
    f.connect(ext_c, p_c).unwrap();
    f.connect(split, j2).unwrap();
    f.connect(p_c, j2).unwrap();
    f.connect(j2, d_flag).unwrap();
    f.connect(d_flag, agg1).unwrap();
    f.connect(agg1, sort1).unwrap();
    f.connect(sort1, load1).unwrap();
    f.connect(split, agg2).unwrap();
    f.connect(agg2, load2).unwrap();

    (
        f,
        TpchFlowIds {
            derive_revenue: d_rev,
            join_orders: j1,
            load_segment: load1,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_validates() {
        let (f, _) = tpch_flow();
        f.validate().unwrap();
    }

    #[test]
    fn flow_has_tens_of_operators() {
        let (f, _) = tpch_flow();
        assert!(
            f.op_count() >= 20,
            "paper demo flows have tens of operators"
        );
        assert_eq!(f.ops_of_kind("extract").len(), 3);
        assert_eq!(f.ops_of_kind("load").len(), 2);
    }

    #[test]
    fn catalog_contains_sources_and_refs() {
        let c = tpch_catalog(400, &DirtProfile::demo(), 42);
        for t in ["lineitem", "orders", "customer"] {
            assert!(c.table(t).is_some(), "missing {t}");
            assert!(c.table(&format!("ref_{t}")).is_some());
        }
        assert_eq!(c.table("lineitem").unwrap().schema, lineitem_schema());
        assert!(c.table("orders").unwrap().rows.len() >= 100);
    }

    #[test]
    fn ids_point_at_expected_ops() {
        let (f, ids) = tpch_flow();
        assert_eq!(f.op(ids.derive_revenue).unwrap().kind.name(), "derive");
        assert_eq!(f.op(ids.join_orders).unwrap().kind.name(), "join");
        assert_eq!(f.op(ids.load_segment).unwrap().kind.name(), "load");
    }
}
