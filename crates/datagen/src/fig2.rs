//! Reconstruction of the paper's Fig. 2 S_Purchases sub-flow: the running
//! example on which the two FCP generations are illustrated — horizontal
//! partitioning + parallel derive for performance (Fig. 2a) and savepoints
//! for reliability (Fig. 2b).

use crate::catalog::Catalog;
use crate::dirt::DirtProfile;
use crate::gen::TableSpec;
use etl_model::expr::Expr;
use etl_model::{Attribute, DataType, EtlFlow, NodeId, OpKind, Operation, Schema};

/// Schema shared by the two purchases sources (S_Purchases_3/S_Purchases_4).
pub fn purchases_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("pu_id", DataType::Int),
        Attribute::new("purchase_line_item_id", DataType::Int),
        Attribute::new("item_id", DataType::Int),
        Attribute::new("item_record_end_date", DataType::Timestamp),
        Attribute::new("store_record_end_date", DataType::Timestamp),
        Attribute::new("amount", DataType::Float),
        Attribute::new("qty", DataType::Int),
    ])
}

/// Handles to the Fig. 2 flow's noteworthy operations.
#[derive(Debug, Clone, Copy)]
pub struct PurchasesFlowIds {
    /// The computationally intensive "DERIVE VALUES" node — the target the
    /// paper parallelises in Fig. 2a and guards with savepoints in Fig. 2b.
    pub derive_values: NodeId,
    /// The filter from the figure.
    pub filter: NodeId,
    /// The final merge of the Group_A/Group_B branches.
    pub merge_groups: NodeId,
}

/// Builds the Fig. 2 purchases sub-flow (11 operators).
///
/// `S_Purchases_3 ∪ S_Purchases_4 → FILTER (current records) → SPLIT
/// required attributes (projection) → DERIVE VALUES (expensive) →
/// route Group_A/Group_B → derive per group → MERGE → load`.
pub fn purchases_flow() -> (EtlFlow, PurchasesFlowIds) {
    let mut f = EtlFlow::new("s_purchases");
    let ext3 = f.add_op(Operation::extract("s_purchases_3", purchases_schema()));
    let ext4 = f.add_op(Operation::extract("s_purchases_4", purchases_schema()));
    let union = f.add_op(Operation::new("MERGE purchase sources", OpKind::Merge));
    let filter = f.add_op(
        Operation::filter(
            "FILTER current records",
            Expr::col("purchase_line_item_id")
                .eq(Expr::col("item_id"))
                .or(Expr::col("item_record_end_date")
                    .is_null()
                    .and(Expr::col("store_record_end_date").is_null())),
        )
        .with_selectivity(0.65),
    );
    let project = f.add_op(Operation::project(
        "SPLIT required attributes",
        vec![
            "pu_id".into(),
            "item_id".into(),
            "amount".into(),
            "qty".into(),
        ],
    ));
    let derive = f.add_op(
        Operation::derive(
            "DERIVE VALUES",
            vec![(
                "derived_value".to_string(),
                Expr::col("amount").mul(Expr::col("qty")),
            )],
        )
        // "computational-intensive task" per the paper
        .with_cost(0.080),
    );
    let router = f.add_op(Operation::new(
        "ROUTE purchase groups",
        OpKind::Router {
            predicate: Expr::col("qty").gt(Expr::lit_i(25)),
        },
    ));
    let d_a = f.add_op(Operation::derive(
        "DERIVE VALUES for Group_A",
        vec![(
            "group_value".to_string(),
            Expr::col("derived_value").mul(Expr::lit_f(1.1)),
        )],
    ));
    let d_b = f.add_op(Operation::derive(
        "DERIVE VALUES for Group_B",
        vec![(
            "group_value".to_string(),
            Expr::col("derived_value").mul(Expr::lit_f(0.9)),
        )],
    ));
    let merge = f.add_op(Operation::new("MERGE", OpKind::Merge));
    let load = f.add_op(Operation::load("dw_purchases"));

    f.connect(ext3, union).unwrap();
    f.connect(ext4, union).unwrap();
    f.connect(union, filter).unwrap();
    f.connect(filter, project).unwrap();
    f.connect(project, derive).unwrap();
    f.connect(derive, router).unwrap();
    f.connect_labelled(router, d_a, "Group_A").unwrap();
    f.connect_labelled(router, d_b, "Group_B").unwrap();
    f.connect(d_a, merge).unwrap();
    f.connect(d_b, merge).unwrap();
    f.connect(merge, load).unwrap();

    (
        f,
        PurchasesFlowIds {
            derive_values: derive,
            filter,
            merge_groups: merge,
        },
    )
}

/// Catalog for the purchases flow: both sources plus reference twins.
pub fn purchases_catalog(scale: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("s_purchases_3", purchases_schema(), scale, "pu_id"),
        dirt,
        seed,
    );
    c.add_generated(
        &TableSpec::new("s_purchases_4", purchases_schema(), scale, "pu_id"),
        dirt,
        seed.wrapping_add(1),
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_validates() {
        let (f, _) = purchases_flow();
        f.validate().unwrap();
    }

    #[test]
    fn has_the_figure_shape() {
        let (f, ids) = purchasesflow_shape();
        assert_eq!(f.op_count(), 11);
        assert_eq!(f.ops_of_kind("extract").len(), 2);
        assert_eq!(f.ops_of_kind("merge").len(), 2);
        assert_eq!(f.op(ids.derive_values).unwrap().name, "DERIVE VALUES");
        // the derive is the most expensive op
        let max_cost = f
            .graph
            .nodes()
            .map(|(_, op)| op.cost.cost_per_tuple_ms)
            .fold(0.0f64, f64::max);
        assert_eq!(
            f.op(ids.derive_values).unwrap().cost.cost_per_tuple_ms,
            max_cost
        );
    }

    fn purchasesflow_shape() -> (EtlFlow, PurchasesFlowIds) {
        purchases_flow()
    }

    #[test]
    fn catalog_has_both_sources() {
        let c = purchases_catalog(100, &DirtProfile::demo(), 5);
        assert!(c.table("s_purchases_3").is_some());
        assert!(c.table("s_purchases_4").is_some());
        assert_eq!(c.len(), 4);
    }
}
