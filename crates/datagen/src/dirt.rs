//! Data-dirtiness configuration for synthetic sources.

/// Controls how much noise the generator injects into a source table.
///
/// The rates are per-cell (nulls, corruption) or per-row (duplicates)
/// probabilities in `[0, 1]`. Key attributes (used for matching against the
/// clean reference) are never nulled or corrupted, so repair by
/// `CrosscheckSources` stays well-defined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirtProfile {
    /// Probability a nullable non-key cell becomes null.
    pub null_rate: f64,
    /// Probability a whole row is emitted twice.
    pub dup_rate: f64,
    /// Probability a string non-key cell is corrupted (suffix
    /// [`crate::CORRUPT_MARKER`] appended).
    pub corrupt_rate: f64,
    /// Age of the source's last update, in hours, at extraction time
    /// (drives the freshness measures of Fig. 1).
    pub staleness_hours: f64,
}

impl DirtProfile {
    /// Perfectly clean, freshly updated data.
    pub fn clean() -> Self {
        DirtProfile {
            null_rate: 0.0,
            dup_rate: 0.0,
            corrupt_rate: 0.0,
            staleness_hours: 0.0,
        }
    }

    /// The default used by the demo workloads: visibly dirty but not
    /// pathological (5% nulls, 3% duplicates, 4% corruption, half a day
    /// stale).
    pub fn demo() -> Self {
        DirtProfile {
            null_rate: 0.05,
            dup_rate: 0.03,
            corrupt_rate: 0.04,
            staleness_hours: 12.0,
        }
    }

    /// Heavily degraded source, for stress tests.
    pub fn filthy() -> Self {
        DirtProfile {
            null_rate: 0.25,
            dup_rate: 0.15,
            corrupt_rate: 0.20,
            staleness_hours: 96.0,
        }
    }

    /// Validates all rates are probabilities and staleness non-negative.
    pub fn is_valid(&self) -> bool {
        let p = |x: f64| (0.0..=1.0).contains(&x);
        p(self.null_rate) && p(self.dup_rate) && p(self.corrupt_rate) && self.staleness_hours >= 0.0
    }
}

impl Default for DirtProfile {
    fn default() -> Self {
        DirtProfile::demo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(DirtProfile::clean().is_valid());
        assert!(DirtProfile::demo().is_valid());
        assert!(DirtProfile::filthy().is_valid());
    }

    #[test]
    fn invalid_rates_detected() {
        let mut d = DirtProfile::clean();
        d.null_rate = 1.5;
        assert!(!d.is_valid());
        d.null_rate = 0.0;
        d.staleness_hours = -1.0;
        assert!(!d.is_valid());
    }

    #[test]
    fn clean_is_all_zero() {
        let c = DirtProfile::clean();
        assert_eq!(c.null_rate, 0.0);
        assert_eq!(c.dup_rate, 0.0);
        assert_eq!(c.corrupt_rate, 0.0);
    }
}
