//! Measures obtained from analysis of runtime traces (second family in the
//! paper's Fig. 1): performance, data quality and reliability.

use crate::measure::{MeasureId, MeasureVector};
use datagen::CORRUPT_MARKER;
use etl_model::{EtlFlow, OpKind, Value};
use simulator::{Trace, TrialSummary};

/// Evaluates all trace-derived measures.
pub fn evaluate_trace(flow: &EtlFlow, trace: &Trace) -> MeasureVector {
    let mut v = MeasureVector::new();
    fill_from_trace(&mut v, flow, trace);
    v
}

/// Fills `v` with the trace-derived measures (shared with [`crate::evaluate`]).
pub fn fill_from_trace(v: &mut MeasureVector, flow: &EtlFlow, trace: &Trace) {
    // --- performance ------------------------------------------------------
    v.set(MeasureId::CycleTimeMs, trace.cycle_time_ms);
    v.set(MeasureId::AvgLatencyMs, trace.avg_latency_ms);
    if trace.cycle_time_ms > 0.0 {
        v.set(
            MeasureId::Throughput,
            trace.rows_loaded() as f64 / (trace.cycle_time_ms / 1_000.0),
        );
    }

    // --- data quality -----------------------------------------------------
    let (mut cells, mut null_cells) = (0usize, 0usize);
    let (mut str_cells, mut corrupt_cells) = (0usize, 0usize);
    let (mut rows_total, mut rows_distinct) = (0usize, 0usize);
    for load in &trace.loads {
        rows_total += load.rows.len();
        let mut seen = std::collections::HashSet::with_capacity(load.rows.len());
        for row in &load.rows {
            let key: String = row
                .iter()
                .map(Value::group_key)
                .collect::<Vec<_>>()
                .join("\u{1}");
            if seen.insert(key) {
                rows_distinct += 1;
            }
            for val in row {
                cells += 1;
                match val {
                    Value::Null => null_cells += 1,
                    Value::Str(s) => {
                        str_cells += 1;
                        if s.ends_with(CORRUPT_MARKER) {
                            corrupt_cells += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    if cells > 0 {
        v.set(
            MeasureId::Completeness,
            1.0 - null_cells as f64 / cells as f64,
        );
    }
    if rows_total > 0 {
        v.set(
            MeasureId::Uniqueness,
            rows_distinct as f64 / rows_total as f64,
        );
    }
    if str_cells > 0 {
        v.set(
            MeasureId::Accuracy,
            1.0 - corrupt_cells as f64 / str_cells as f64,
        );
    } else if cells > 0 {
        v.set(MeasureId::Accuracy, 1.0);
    }
    if let Some(age_s) = trace.stalest_source_age() {
        v.set(
            MeasureId::FreshnessAgeS,
            effective_age_s(age_s as f64, flow.config.recurrence_minutes),
        );
        v.set(
            MeasureId::FreshnessScore,
            freshness_score(age_s as f64, flow.config.recurrence_minutes),
        );
    }

    // --- reliability --------------------------------------------------------
    let expected_redo = expected_redo_ms(flow, trace);
    v.set(MeasureId::ExpectedRedoMs, expected_redo);
    let clean_cycle = trace.cycle_time_ms - trace.total_redo_ms;
    v.set(
        MeasureId::Recoverability,
        recoverability(clean_cycle, expected_redo),
    );

    // --- cost ---------------------------------------------------------------
    v.set(
        MeasureId::MonetaryCost,
        monetary_cost(trace.cycle_time_ms, flow),
    );
}

/// Relative monetary cost per *day*: per-run compute cost (cycle time ×
/// resource-class price) times the number of runs the recurrence schedule
/// demands. Running twice as often for fresher data costs twice as much —
/// the trade-off behind the `AdjustRecurrence` graph-level pattern.
pub fn monetary_cost(cycle_time_ms: f64, flow: &EtlFlow) -> f64 {
    let runs_per_day = if flow.config.recurrence_minutes > 0.0 {
        (24.0 * 60.0) / flow.config.recurrence_minutes
    } else {
        1.0
    };
    cycle_time_ms * flow.config.resources.cost_factor() * runs_per_day / 1_000.0
}

/// Adds the Monte-Carlo-only reliability measures from a trial summary.
pub fn fill_from_trials(v: &mut MeasureVector, trials: &TrialSummary) {
    v.set(MeasureId::DeadlineSuccess, trials.within_deadline_fraction);
    v.set(MeasureId::ExpectedRedoMs, trials.mean_redo_ms);
    v.set(
        MeasureId::Recoverability,
        recoverability(trials.clean_cycle_ms, trials.mean_redo_ms),
    );
}

/// Nominal source update frequency (updates/hour) in the freshness score —
/// the "Frequency of updates" of Fig. 1, fixed since synthetic sources don't
/// model their own update cadence.
const SOURCE_UPDATES_PER_HOUR: f64 = 1.0;

/// Expected age (seconds) of warehouse content at a uniformly random request
/// time: source staleness at the last run plus half the recurrence period
/// (on average the last run happened `recurrence/2` ago). This is the
/// "request time − time of last update" measure of Fig. 1, made
/// recurrence-aware so the `IncreaseRecurrence` pattern has its intended
/// effect.
pub fn effective_age_s(source_age_s: f64, recurrence_minutes: f64) -> f64 {
    source_age_s + recurrence_minutes.max(0.0) * 30.0
}

/// The paper's Fig. 1 freshness formula `1 / (1 - age * frequency of
/// updates)`.
///
/// The formula as printed diverges as `age·freq → 1` and flips sign beyond
/// it; we use the guarded form `1 / (1 + age · freq)` over the *effective*
/// age (see [`effective_age_s`]) so the score is a proper `(0, 1]` quantity
/// that decreases with staleness and increases with recurrence. The
/// deviation from the printed formula is documented in DESIGN.md.
pub fn freshness_score(source_age_s: f64, recurrence_minutes: f64) -> f64 {
    let age_hours = effective_age_s(source_age_s, recurrence_minutes) / 3_600.0;
    (1.0 / (1.0 + age_hours * SOURCE_UPDATES_PER_HOUR)).clamp(0.0, 1.0)
}

/// Recoverability in `[0, 1]`: the fraction of a run's expected wall time
/// that is useful (non-recovery) work.
pub fn recoverability(clean_cycle_ms: f64, expected_redo_ms: f64) -> f64 {
    if clean_cycle_ms <= 0.0 {
        return 1.0;
    }
    clean_cycle_ms / (clean_cycle_ms + expected_redo_ms.max(0.0))
}

/// Expected recovery time per run: `Σ_op p_fail(op) · redo_span(op)`, where
/// the redo span re-runs the segment from the nearest upstream savepoint
/// (or the extracts). Reconstructed from the trace's service times plus the
/// flow structure.
pub fn expected_redo_ms(flow: &EtlFlow, trace: &Trace) -> f64 {
    let order = match flow.topo_order() {
        Ok(o) => o,
        Err(_) => return 0.0,
    };
    let mut span = vec![0.0f64; flow.graph.node_bound()];
    let mut expected = 0.0;
    for n in order {
        let op = flow.op(n).expect("live node");
        let service = trace
            .op(n)
            .map(|o| o.service_ms() - o.redo_ms)
            .unwrap_or(0.0);
        let upstream = flow
            .graph
            .predecessors(n)
            .map(|p| {
                let pop = flow.op(p).expect("live node");
                if matches!(pop.kind, OpKind::Checkpoint { .. }) {
                    pop.cost.startup_ms
                } else {
                    span[p.index()]
                }
            })
            .fold(0.0f64, f64::max);
        span[n.index()] = service + upstream;
        expected += op.cost.failure_rate.clamp(0.0, 1.0) * span[n.index()];
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use simulator::{simulate, SimConfig};

    fn run(dirt: DirtProfile) -> (etl_model::EtlFlow, Trace) {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(300, &dirt, 11);
        let t = simulate(&f, &cat, &SimConfig::default()).unwrap();
        (f, t)
    }

    #[test]
    fn performance_measures_present() {
        let (f, t) = run(DirtProfile::demo());
        let v = evaluate_trace(&f, &t);
        assert!(v.get(MeasureId::CycleTimeMs).unwrap() > 0.0);
        assert!(v.get(MeasureId::AvgLatencyMs).unwrap() > 0.0);
        assert!(v.get(MeasureId::Throughput).unwrap() > 0.0);
    }

    #[test]
    fn dirty_data_lowers_dq_measures() {
        let (fc, tc) = run(DirtProfile::clean());
        let (fd, td) = run(DirtProfile::filthy());
        let clean = evaluate_trace(&fc, &tc);
        let dirty = evaluate_trace(&fd, &td);
        assert!(clean.get(MeasureId::Completeness).unwrap() > 0.999);
        assert!(
            dirty.get(MeasureId::Completeness).unwrap()
                < clean.get(MeasureId::Completeness).unwrap()
        );
        assert!(
            dirty.get(MeasureId::Uniqueness).unwrap() < 1.0,
            "duplicates must be visible"
        );
        // The purchases flow projects all string attributes away before the
        // load, so accuracy is measured on a string-bearing passthrough flow.
        let schema = etl_model::Schema::new(vec![
            etl_model::Attribute::required("t_id", etl_model::DataType::Int),
            etl_model::Attribute::new("name", etl_model::DataType::Str),
        ]);
        let mut cat = datagen::Catalog::new();
        cat.add_generated(
            &datagen::TableSpec::new("t", schema.clone(), 500, "t_id"),
            &DirtProfile::filthy(),
            4,
        );
        let mut f = etl_model::EtlFlow::new("passthru");
        let e = f.add_op(etl_model::Operation::extract("t", schema));
        let l = f.add_op(etl_model::Operation::load("out"));
        f.connect(e, l).unwrap();
        let t = simulate(&f, &cat, &SimConfig::default()).unwrap();
        let v = evaluate_trace(&f, &t);
        assert!(v.get(MeasureId::Accuracy).unwrap() < 1.0);
    }

    #[test]
    fn freshness_from_staleness() {
        let (f, t) = run(DirtProfile {
            staleness_hours: 24.0,
            ..DirtProfile::clean()
        });
        let v = evaluate_trace(&f, &t);
        // effective age = source age + recurrence/2 (daily default = +12h)
        let expected = 24.0 * 3600.0 + f.config.recurrence_minutes * 30.0;
        assert_eq!(v.get(MeasureId::FreshnessAgeS), Some(expected));
        let score = v.get(MeasureId::FreshnessScore).unwrap();
        assert!(score > 0.0 && score < 1.0);
    }

    #[test]
    fn freshness_score_monotone_in_age_and_recurrence() {
        let daily = 24.0 * 60.0;
        let fresh = freshness_score(0.0, daily);
        let old = freshness_score(86_400.0, daily);
        let ancient = freshness_score(10.0 * 86_400.0, daily);
        assert!(old < fresh && ancient < old);
        // running more often (hourly) means fresher content at request time
        assert!(freshness_score(86_400.0, 60.0) > freshness_score(86_400.0, daily));
        assert_eq!(freshness_score(0.0, 0.0), 1.0);
    }

    #[test]
    fn recoverability_bounds() {
        assert_eq!(recoverability(0.0, 5.0), 1.0);
        assert_eq!(recoverability(10.0, 0.0), 1.0);
        assert!((recoverability(10.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failure_rates_raise_expected_redo() {
        let (mut f, _) = purchases_flow();
        let cat = purchases_catalog(300, &DirtProfile::clean(), 11);
        let t0 = simulate(&f, &cat, &SimConfig::default()).unwrap();
        let base = evaluate_trace(&f, &t0);
        // make the expensive derive fragile
        let derive = f.ops_of_kind("derive")[0];
        f.op_mut(derive).unwrap().cost.failure_rate = 0.2;
        let t1 = simulate(&f, &cat, &SimConfig::default()).unwrap();
        let fragile = evaluate_trace(&f, &t1);
        assert_eq!(base.get(MeasureId::ExpectedRedoMs), Some(0.0));
        assert!(fragile.get(MeasureId::ExpectedRedoMs).unwrap() > 0.0);
        assert!(
            fragile.get(MeasureId::Recoverability).unwrap()
                < base.get(MeasureId::Recoverability).unwrap()
        );
    }

    #[test]
    fn checkpoint_improves_recoverability_measure() {
        let (mut f, ids) = purchases_flow();
        // fragile router downstream of the expensive derive
        let router = f.ops_of_kind("router")[0];
        f.op_mut(router).unwrap().cost.failure_rate = 0.3;
        let cat = purchases_catalog(300, &DirtProfile::clean(), 11);
        let t = simulate(&f, &cat, &SimConfig::default()).unwrap();
        let before = evaluate_trace(&f, &t);

        // add a savepoint right after the derive
        let mut g = f.fork("with_cp");
        let e = g.graph.out_edges(ids.derive_values).next().unwrap();
        g.graph
            .interpose_on_edge(
                e,
                etl_model::Operation::new("SAVE", OpKind::Checkpoint { tag: "sp".into() }),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        let t2 = simulate(&g, &cat, &SimConfig::default()).unwrap();
        let after = evaluate_trace(&g, &t2);
        assert!(
            after.get(MeasureId::ExpectedRedoMs).unwrap()
                < before.get(MeasureId::ExpectedRedoMs).unwrap()
        );
        assert!(
            after.get(MeasureId::Recoverability).unwrap()
                > before.get(MeasureId::Recoverability).unwrap()
        );
    }

    #[test]
    fn trial_fill() {
        let summary = TrialSummary {
            trials: 10,
            mean_cycle_ms: 12.0,
            clean_cycle_ms: 10.0,
            mean_redo_ms: 2.0,
            failure_run_fraction: 0.4,
            within_deadline_fraction: 0.9,
        };
        let mut v = MeasureVector::new();
        fill_from_trials(&mut v, &summary);
        assert_eq!(v.get(MeasureId::DeadlineSuccess), Some(0.9));
        assert!((v.get(MeasureId::Recoverability).unwrap() - 10.0 / 12.0).abs() < 1e-12);
    }
}
