//! `quality` — ETL process quality characteristics and measures.
//!
//! Implements the measure framework of the paper's Fig. 1 (drawn from the
//! authors' DaWaK 2014 catalogue "Quality Measures for ETL Processes"):
//! measures either **derive directly from the static structure of the
//! process model** ([`static_measures`]) or are **obtained from analysis of
//! runtime traces** ([`runtime`]). A third path, the [`estimator`], predicts
//! the runtime measures analytically from the model alone — this is what
//! lets POIESIS score thousands of alternative designs without executing
//! each one.
//!
//! Measures roll up into **characteristics** (performance, data quality,
//! reliability, manageability, cost). The drill-down the paper demonstrates
//! (clicking a bar expands the composite into its detailed metrics, Fig. 5)
//! maps to [`report::QualityReport`].
//!
//! # Example
//!
//! Simulate a flow, evaluate the full measure vector, and roll a measure
//! up into its characteristic:
//!
//! ```
//! use datagen::fig2::{purchases_catalog, purchases_flow};
//! use datagen::DirtProfile;
//! use quality::{Characteristic, MeasureId};
//!
//! let (flow, _) = purchases_flow();
//! let catalog = purchases_catalog(60, &DirtProfile::demo(), 1);
//! let trace = simulator::simulate(&flow, &catalog, &Default::default()).unwrap();
//!
//! let v = quality::evaluate(&flow, &trace);
//! assert!(v.get(MeasureId::CycleTimeMs).unwrap() > 0.0);
//! assert_eq!(
//!     MeasureId::CycleTimeMs.characteristic(),
//!     Characteristic::Performance,
//! );
//! // stable snake_case keys are the wire/CLI vocabulary
//! assert_eq!(MeasureId::from_key("cycle_time_ms"), Some(MeasureId::CycleTimeMs));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bound;
pub mod estimator;
mod measure;
pub mod report;
pub mod runtime;
pub mod static_measures;

pub use bound::GainProfile;
pub use estimator::{
    estimate, estimate_baseline, estimate_delta, estimate_delta_with, source_stats,
    EstimateBaseline, SourceStats,
};
pub use measure::{Characteristic, MeasureId, MeasureVector, RATIO_CLAMP_MAX, RATIO_CLAMP_MIN};
pub use report::{relative_change, QualityReport, RelativeChange};
pub use runtime::evaluate_trace;
pub use static_measures::evaluate_static;

use etl_model::EtlFlow;
use simulator::Trace;

/// Full evaluation: static + runtime measures in one vector.
///
/// This is the measure set the planner attaches to a simulated alternative;
/// for estimate-only scoring see [`estimate`].
pub fn evaluate(flow: &EtlFlow, trace: &Trace) -> MeasureVector {
    let mut v = evaluate_static(flow);
    runtime::fill_from_trace(&mut v, flow, trace);
    v
}
