//! Measure identifiers, directions and the dense measure vector.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Lower clamp applied to per-measure improvement ratios: one degenerate
/// measure can shrink a composite by at most this factor.
pub const RATIO_CLAMP_MIN: f64 = 0.05;

/// Upper clamp applied to per-measure improvement ratios: one degenerate
/// measure can inflate a composite by at most this factor. This is also the
/// ceiling of any sound static gain bound — no pattern application can move
/// a characteristic score past `100 × RATIO_CLAMP_MAX`.
pub const RATIO_CLAMP_MAX: f64 = 20.0;

/// The quality characteristics the tool reasons about (paper Fig. 1 shows
/// performance, data quality and manageability; reliability appears in
/// Fig. 2/Fig. 4 and cost in §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Characteristic {
    /// Speed: cycle time, latency, throughput.
    Performance,
    /// Fitness of the delivered data: completeness, uniqueness, accuracy,
    /// freshness.
    DataQuality,
    /// Robustness to failures: recoverability, redo cost, deadline success.
    Reliability,
    /// Ease of understanding/modifying the flow: size, paths, coupling.
    Manageability,
    /// Monetary cost of running the process.
    Cost,
    /// Security posture of the process (encryption, access control) — the
    /// graph-level configuration patterns of §2.2.
    Security,
}

impl Characteristic {
    /// All characteristics in display order.
    pub const ALL: [Characteristic; 6] = [
        Characteristic::Performance,
        Characteristic::DataQuality,
        Characteristic::Reliability,
        Characteristic::Manageability,
        Characteristic::Cost,
        Characteristic::Security,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Characteristic::Performance => "performance",
            Characteristic::DataQuality => "data quality",
            Characteristic::Reliability => "reliability",
            Characteristic::Manageability => "manageability",
            Characteristic::Cost => "cost",
            Characteristic::Security => "security",
        }
    }

    /// Stable machine key (snake_case, no spaces) for wire formats and CLI
    /// flags. Round-trips through [`from_key`](Self::from_key).
    pub fn key(self) -> &'static str {
        match self {
            Characteristic::Performance => "performance",
            Characteristic::DataQuality => "data_quality",
            Characteristic::Reliability => "reliability",
            Characteristic::Manageability => "manageability",
            Characteristic::Cost => "cost",
            Characteristic::Security => "security",
        }
    }

    /// Looks a characteristic up by its [`key`](Self::key).
    pub fn from_key(key: &str) -> Option<Characteristic> {
        Characteristic::ALL.into_iter().find(|c| c.key() == key)
    }
}

impl fmt::Display for Characteristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Every concrete measure the tool computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum MeasureId {
    // --- performance (paper Fig. 1: process cycle time, avg latency/tuple)
    /// Process cycle time in ms (lower is better).
    CycleTimeMs,
    /// Average per-tuple latency in ms (lower is better).
    AvgLatencyMs,
    /// Loaded rows per second (higher is better).
    Throughput,
    // --- data quality (Fig. 1: request−last update, 1/(1−age·freq))
    /// Fraction of non-null cells in loaded data (higher).
    Completeness,
    /// Fraction of distinct loaded rows (higher).
    Uniqueness,
    /// Fraction of uncorrupted loaded values (higher).
    Accuracy,
    /// Staleness of the oldest source in seconds (lower).
    FreshnessAgeS,
    /// The paper's `1/(1 − age · update frequency)` score, guarded (higher).
    FreshnessScore,
    // --- reliability
    /// Clean-cycle / (clean-cycle + expected redo) in `[0,1]` (higher).
    Recoverability,
    /// Expected failure-recovery time per run in ms (lower).
    ExpectedRedoMs,
    /// Fraction of Monte Carlo runs finishing within 1.5× clean cycle
    /// (higher). Only set when trials were run.
    DeadlineSuccess,
    // --- manageability (Fig. 1: longest path, coupling, merge elements)
    /// Length of the workflow's longest path in edges (lower).
    LongestPath,
    /// Workflow coupling (lower).
    Coupling,
    /// Number of merge elements in the process model (lower).
    MergeCount,
    /// Total operation count (lower).
    OpCount,
    // --- cost
    /// Relative monetary cost per day (lower).
    MonetaryCost,
    // --- security
    /// Security posture score in `[0,1]`: encryption + access control (higher).
    SecurityScore,
}

impl MeasureId {
    /// All measures, in vector order.
    pub const ALL: [MeasureId; 17] = [
        MeasureId::CycleTimeMs,
        MeasureId::AvgLatencyMs,
        MeasureId::Throughput,
        MeasureId::Completeness,
        MeasureId::Uniqueness,
        MeasureId::Accuracy,
        MeasureId::FreshnessAgeS,
        MeasureId::FreshnessScore,
        MeasureId::Recoverability,
        MeasureId::ExpectedRedoMs,
        MeasureId::DeadlineSuccess,
        MeasureId::LongestPath,
        MeasureId::Coupling,
        MeasureId::MergeCount,
        MeasureId::OpCount,
        MeasureId::MonetaryCost,
        MeasureId::SecurityScore,
    ];

    /// The characteristic this measure belongs to.
    pub fn characteristic(self) -> Characteristic {
        use MeasureId::*;
        match self {
            CycleTimeMs | AvgLatencyMs | Throughput => Characteristic::Performance,
            Completeness | Uniqueness | Accuracy | FreshnessAgeS | FreshnessScore => {
                Characteristic::DataQuality
            }
            Recoverability | ExpectedRedoMs | DeadlineSuccess => Characteristic::Reliability,
            LongestPath | Coupling | MergeCount | OpCount => Characteristic::Manageability,
            MonetaryCost => Characteristic::Cost,
            SecurityScore => Characteristic::Security,
        }
    }

    /// Whether larger values are preferable.
    pub fn higher_is_better(self) -> bool {
        use MeasureId::*;
        matches!(
            self,
            Throughput
                | Completeness
                | Uniqueness
                | Accuracy
                | FreshnessScore
                | Recoverability
                | DeadlineSuccess
                | SecurityScore
        )
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        use MeasureId::*;
        match self {
            CycleTimeMs => "process cycle time (ms)",
            AvgLatencyMs => "avg latency per tuple (ms)",
            Throughput => "throughput (rows/s)",
            Completeness => "completeness",
            Uniqueness => "uniqueness",
            Accuracy => "accuracy",
            FreshnessAgeS => "request time - last update (s)",
            FreshnessScore => "freshness score 1/(1-age*freq)",
            Recoverability => "recoverability",
            ExpectedRedoMs => "expected recovery time (ms)",
            DeadlineSuccess => "deadline success rate",
            LongestPath => "longest path length",
            Coupling => "workflow coupling",
            MergeCount => "# merge elements",
            OpCount => "# operations",
            MonetaryCost => "monetary cost per day (relative)",
            SecurityScore => "security score",
        }
    }

    /// Stable machine key (snake_case, no units) for wire formats and CLI
    /// flags. Round-trips through [`from_key`](Self::from_key).
    pub fn key(self) -> &'static str {
        use MeasureId::*;
        match self {
            CycleTimeMs => "cycle_time_ms",
            AvgLatencyMs => "avg_latency_ms",
            Throughput => "throughput",
            Completeness => "completeness",
            Uniqueness => "uniqueness",
            Accuracy => "accuracy",
            FreshnessAgeS => "freshness_age_s",
            FreshnessScore => "freshness_score",
            Recoverability => "recoverability",
            ExpectedRedoMs => "expected_redo_ms",
            DeadlineSuccess => "deadline_success",
            LongestPath => "longest_path",
            Coupling => "coupling",
            MergeCount => "merge_count",
            OpCount => "op_count",
            MonetaryCost => "monetary_cost",
            SecurityScore => "security_score",
        }
    }

    /// Looks a measure up by its [`key`](Self::key).
    pub fn from_key(key: &str) -> Option<MeasureId> {
        MeasureId::ALL.into_iter().find(|m| m.key() == key)
    }

    fn idx(self) -> usize {
        Self::ALL
            .iter()
            .position(|m| *m == self)
            .expect("measure listed in ALL")
    }
}

impl fmt::Display for MeasureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Dense vector of measure values; unset entries are `None`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeasureVector {
    values: [Option<f64>; MeasureId::ALL.len()],
}

impl MeasureVector {
    /// Empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a measure.
    pub fn set(&mut self, id: MeasureId, value: f64) {
        self.values[id.idx()] = Some(value);
    }

    /// Reads a measure.
    pub fn get(&self, id: MeasureId) -> Option<f64> {
        self.values[id.idx()]
    }

    /// Reads a measure, defaulting when unset.
    pub fn get_or(&self, id: MeasureId, default: f64) -> f64 {
        self.get(id).unwrap_or(default)
    }

    /// Iterates over set measures.
    pub fn iter(&self) -> impl Iterator<Item = (MeasureId, f64)> + '_ {
        MeasureId::ALL
            .iter()
            .filter_map(move |&id| self.get(id).map(|v| (id, v)))
    }

    /// Set measures restricted to one characteristic.
    pub fn of_characteristic(
        &self,
        c: Characteristic,
    ) -> impl Iterator<Item = (MeasureId, f64)> + '_ {
        self.iter().filter(move |(id, _)| id.characteristic() == c)
    }

    /// Normalised improvement ratio of `self` against `baseline` for one
    /// measure: `> 1` means better, `< 1` worse, `None` when either side is
    /// missing. Ratios are clamped to `[0.05, 20]` so one degenerate
    /// measure cannot dominate a composite.
    pub fn improvement_ratio(&self, baseline: &MeasureVector, id: MeasureId) -> Option<f64> {
        let mine = self.get(id)?;
        let base = baseline.get(id)?;
        let eps = 1e-9;
        let ratio = if id.higher_is_better() {
            (mine + eps) / (base + eps)
        } else {
            (base + eps) / (mine + eps)
        };
        Some(ratio.clamp(RATIO_CLAMP_MIN, RATIO_CLAMP_MAX))
    }

    /// Composite score of one characteristic against a baseline, scaled so
    /// the baseline itself scores 100. The arithmetic mean of per-measure
    /// improvement ratios × 100 — these are the scatter-plot axes of the
    /// paper's Fig. 4.
    pub fn characteristic_score(&self, baseline: &MeasureVector, c: Characteristic) -> f64 {
        let ratios: Vec<f64> = MeasureId::ALL
            .iter()
            .filter(|id| id.characteristic() == c)
            .filter_map(|&id| self.improvement_ratio(baseline, id))
            .collect();
        if ratios.is_empty() {
            return 100.0;
        }
        100.0 * ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

impl fmt::Display for MeasureVector {
    /// Compact `key=value` listing of the set measures, in vector order —
    /// the one place score/measure rendering lives, so CLI and DTO output
    /// never hand-format arrays.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (id, v) in self.iter() {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            write!(f, "{}={v:.3}", id.key())?;
        }
        if first {
            f.write_str("(no measures)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_measures_have_unique_indices() {
        let mut seen = std::collections::HashSet::new();
        for m in MeasureId::ALL {
            assert!(seen.insert(m.idx()));
        }
        assert_eq!(seen.len(), MeasureId::ALL.len());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = MeasureVector::new();
        assert_eq!(v.get(MeasureId::CycleTimeMs), None);
        v.set(MeasureId::CycleTimeMs, 12.5);
        assert_eq!(v.get(MeasureId::CycleTimeMs), Some(12.5));
        assert_eq!(v.get_or(MeasureId::Coupling, 7.0), 7.0);
    }

    #[test]
    fn characteristic_assignment_consistent() {
        for m in MeasureId::ALL {
            // every measure's characteristic is one of the five
            assert!(Characteristic::ALL.contains(&m.characteristic()));
        }
        assert_eq!(
            MeasureId::CycleTimeMs.characteristic(),
            Characteristic::Performance
        );
        assert_eq!(
            MeasureId::MergeCount.characteristic(),
            Characteristic::Manageability
        );
    }

    #[test]
    fn improvement_ratio_directions() {
        let mut base = MeasureVector::new();
        let mut alt = MeasureVector::new();
        base.set(MeasureId::CycleTimeMs, 100.0);
        alt.set(MeasureId::CycleTimeMs, 50.0); // faster = better
        assert!(
            alt.improvement_ratio(&base, MeasureId::CycleTimeMs)
                .unwrap()
                > 1.9
        );
        base.set(MeasureId::Completeness, 0.5);
        alt.set(MeasureId::Completeness, 1.0); // higher = better
        assert!(
            alt.improvement_ratio(&base, MeasureId::Completeness)
                .unwrap()
                > 1.9
        );
        assert_eq!(alt.improvement_ratio(&base, MeasureId::Coupling), None);
    }

    #[test]
    fn ratio_clamped() {
        let mut base = MeasureVector::new();
        let mut alt = MeasureVector::new();
        base.set(MeasureId::CycleTimeMs, 1e12);
        alt.set(MeasureId::CycleTimeMs, 1e-12);
        assert_eq!(
            alt.improvement_ratio(&base, MeasureId::CycleTimeMs)
                .unwrap(),
            20.0
        );
    }

    #[test]
    fn characteristic_score_baseline_is_100() {
        let mut v = MeasureVector::new();
        v.set(MeasureId::CycleTimeMs, 10.0);
        v.set(MeasureId::Throughput, 100.0);
        let score = v.characteristic_score(&v.clone(), Characteristic::Performance);
        assert!((score - 100.0).abs() < 1e-9);
        // characteristic with no shared measures: neutral 100
        assert_eq!(
            v.characteristic_score(&v.clone(), Characteristic::Cost),
            100.0
        );
    }

    #[test]
    fn keys_round_trip_and_are_machine_safe() {
        for m in MeasureId::ALL {
            let key = m.key();
            assert!(
                key.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{key}"
            );
            assert_eq!(MeasureId::from_key(key), Some(m));
        }
        for c in Characteristic::ALL {
            assert_eq!(Characteristic::from_key(c.key()), Some(c));
        }
        assert_eq!(MeasureId::from_key("bogus"), None);
        assert_eq!(Characteristic::from_key("data quality"), None);
    }

    #[test]
    fn measure_vector_display_lists_set_measures() {
        let mut v = MeasureVector::new();
        assert_eq!(v.to_string(), "(no measures)");
        v.set(MeasureId::CycleTimeMs, 12.5);
        v.set(MeasureId::Completeness, 0.875);
        assert_eq!(v.to_string(), "cycle_time_ms=12.500 completeness=0.875");
    }

    #[test]
    fn characteristic_score_improves() {
        let mut base = MeasureVector::new();
        base.set(MeasureId::CycleTimeMs, 100.0);
        let mut alt = MeasureVector::new();
        alt.set(MeasureId::CycleTimeMs, 50.0);
        assert!(alt.characteristic_score(&base, Characteristic::Performance) > 150.0);
    }
}
