//! The analytic estimator: predicts runtime measures from the model alone.
//!
//! The paper's Planner "estimates defined measures for various quality
//! attributes" for *thousands* of alternative flows — executing each one
//! would defeat the interactive loop. The estimator propagates expected row
//! counts through the flow via per-operator selectivities, replays the same
//! virtual-clock arithmetic the simulator uses, and derives data-quality
//! expectations from per-source dirtiness statistics. The ablation bench
//! (`fig3_pipeline`) checks that estimator rankings agree with simulation.

use crate::measure::{MeasureId, MeasureVector};
use crate::runtime::{freshness_score, recoverability};
use crate::static_measures::evaluate_static;
use datagen::{Catalog, CORRUPT_MARKER};
use etl_model::{EtlFlow, OpKind, Value};
use std::collections::HashMap;

/// Per-source statistics the estimator propagates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceStats {
    /// Row count.
    pub rows: f64,
    /// Fraction of null cells.
    pub null_rate: f64,
    /// Fraction of duplicated rows.
    pub dup_rate: f64,
    /// Fraction of corrupted string cells.
    pub corrupt_rate: f64,
    /// Source staleness in seconds.
    pub staleness_s: f64,
}

impl SourceStats {
    /// Neutral stats for an unknown source.
    pub fn unknown(default_rows: f64) -> Self {
        SourceStats {
            rows: default_rows,
            null_rate: 0.0,
            dup_rate: 0.0,
            corrupt_rate: 0.0,
            staleness_s: 0.0,
        }
    }

    /// Derives stats by scanning a catalog table (cheap one-off pass; the
    /// planner does this once per session, not per alternative).
    pub fn from_table(table: &datagen::Table, request_time: i64) -> Self {
        let rows = table.rows.len();
        if rows == 0 {
            return SourceStats::unknown(0.0);
        }
        let mut cells = 0usize;
        let mut nulls = 0usize;
        let mut strs = 0usize;
        let mut corrupt = 0usize;
        let mut seen = std::collections::HashSet::with_capacity(rows);
        let mut distinct = 0usize;
        for row in &table.rows {
            let key: String = row
                .iter()
                .map(Value::group_key)
                .collect::<Vec<_>>()
                .join("\u{1}");
            if seen.insert(key) {
                distinct += 1;
            }
            for v in row {
                cells += 1;
                match v {
                    Value::Null => nulls += 1,
                    Value::Str(s) => {
                        strs += 1;
                        if s.ends_with(CORRUPT_MARKER) {
                            corrupt += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        SourceStats {
            rows: rows as f64,
            null_rate: nulls as f64 / cells.max(1) as f64,
            dup_rate: 1.0 - distinct as f64 / rows as f64,
            corrupt_rate: corrupt as f64 / strs.max(1) as f64,
            staleness_s: (request_time - table.last_update).max(0) as f64,
        }
    }
}

/// Builds the estimator's source-statistics table from a catalog.
pub fn source_stats(catalog: &Catalog) -> HashMap<String, SourceStats> {
    catalog
        .tables()
        .map(|(name, t)| {
            (
                name.clone(),
                SourceStats::from_table(t, catalog.request_time()),
            )
        })
        .collect()
}

#[derive(Clone, Copy)]
struct NodeEst {
    rows: f64,
    null_rate: f64,
    dup_rate: f64,
    corrupt_rate: f64,
    staleness_s: f64,
    done_ms: f64,
    latency_ms: f64,
    redo_span_ms: f64,
}

impl Default for NodeEst {
    fn default() -> Self {
        NodeEst {
            rows: 0.0,
            null_rate: 0.0,
            dup_rate: 0.0,
            corrupt_rate: 0.0,
            staleness_s: 0.0,
            done_ms: 0.0,
            latency_ms: 0.0,
            redo_span_ms: 0.0,
        }
    }
}

/// How strongly each cleaning pattern is expected to reduce its defect
/// class (residual fraction). Calibrated against simulation in tests.
const NULLFILTER_RESIDUAL: f64 = 0.05;
const DEDUP_RESIDUAL: f64 = 0.02;
const CROSSCHECK_RESIDUAL: f64 = 0.10;
const ENCRYPTION_OVERHEAD: f64 = 1.08;

/// Estimates the full measure vector of a flow without executing it.
///
/// `stats` maps source names to their statistics (see [`source_stats`]);
/// unknown sources get [`SourceStats::unknown`] with 1 000 rows.
pub fn estimate(flow: &EtlFlow, stats: &HashMap<String, SourceStats>) -> MeasureVector {
    let mut v = evaluate_static(flow);
    let order = match flow.topo_order() {
        Ok(o) => o,
        Err(_) => return v,
    };
    let speed = flow.config.resources.speed_factor();
    let tax = if flow.config.encrypted {
        ENCRYPTION_OVERHEAD
    } else {
        1.0
    };
    let mut est: Vec<NodeEst> = vec![NodeEst::default(); flow.graph.node_bound()];
    let mut expected_redo = 0.0;

    for &n in &order {
        let op = flow.op(n).expect("live node");
        let preds: Vec<_> = flow.graph.predecessors(n).collect();
        let n_out = flow.graph.out_degree(n).max(1) as f64;

        let in_rows: f64 = preds.iter().map(|p| branch_rows(&est, flow, *p, n)).sum();
        let agg = |f: fn(&NodeEst) -> f64| -> f64 {
            if preds.is_empty() {
                0.0
            } else {
                // row-weighted mean over inputs
                let total: f64 = preds
                    .iter()
                    .map(|p| f(&est[p.index()]) * est[p.index()].rows.max(1.0))
                    .sum();
                let w: f64 = preds.iter().map(|p| est[p.index()].rows.max(1.0)).sum();
                total / w
            }
        };

        let mut e = NodeEst {
            null_rate: agg(|x| x.null_rate),
            dup_rate: agg(|x| x.dup_rate),
            corrupt_rate: agg(|x| x.corrupt_rate),
            staleness_s: preds
                .iter()
                .map(|p| est[p.index()].staleness_s)
                .fold(0.0f64, f64::max),
            ..NodeEst::default()
        };

        // rows and DQ effects per kind
        e.rows = match &op.kind {
            OpKind::Extract { source, .. } => {
                let s = stats
                    .get(source)
                    .copied()
                    .unwrap_or_else(|| SourceStats::unknown(1_000.0));
                e.null_rate = s.null_rate;
                e.dup_rate = s.dup_rate;
                e.corrupt_rate = s.corrupt_rate;
                e.staleness_s = s.staleness_s;
                s.rows
            }
            OpKind::FilterNulls { .. } => {
                let out = in_rows * op.selectivity();
                e.null_rate *= NULLFILTER_RESIDUAL;
                out
            }
            OpKind::Dedup { .. } => {
                let out = in_rows * (1.0 - e.dup_rate).max(0.1);
                e.dup_rate *= DEDUP_RESIDUAL;
                out
            }
            OpKind::Crosscheck { .. } => {
                e.null_rate *= CROSSCHECK_RESIDUAL;
                e.corrupt_rate *= CROSSCHECK_RESIDUAL;
                in_rows
            }
            OpKind::Join { .. } => {
                // equi-join on surrogate-ish keys: bounded by the larger input
                let m = preds
                    .iter()
                    .map(|p| branch_rows(&est, flow, *p, n))
                    .fold(0.0f64, f64::max);
                m * op.selectivity()
            }
            _ => in_rows * op.selectivity(),
        };

        // timing — mirrors the simulator's clock arithmetic
        let par = op.parallelism.max(1) as f64;
        let work_rows = match op.kind {
            OpKind::Extract { .. } => e.rows,
            _ => in_rows,
        };
        let service =
            (op.cost.startup_ms + work_rows * op.cost.cost_per_tuple_ms / par) * tax / speed;
        let ready = preds
            .iter()
            .map(|p| est[p.index()].done_ms)
            .fold(0.0f64, f64::max);
        e.done_ms = ready + service;
        e.latency_ms = preds
            .iter()
            .map(|p| est[p.index()].latency_ms)
            .fold(0.0f64, f64::max)
            + op.cost.cost_per_tuple_ms * tax / (par * speed);

        let upstream_span = preds
            .iter()
            .map(|p| {
                let pop = flow.op(*p).expect("live node");
                if matches!(pop.kind, OpKind::Checkpoint { .. }) {
                    pop.cost.startup_ms
                } else {
                    est[p.index()].redo_span_ms
                }
            })
            .fold(0.0f64, f64::max);
        e.redo_span_ms = service + upstream_span;
        expected_redo += op.cost.failure_rate.clamp(0.0, 1.0) * e.redo_span_ms;

        // Partition rows are split across successors; handled in branch_rows
        // via out-degree division, so store total rows here.
        let _ = n_out;
        est[n.index()] = e;
    }

    let loads = flow.ops_of_kind("load");
    let cycle = loads
        .iter()
        .map(|n| est[n.index()].done_ms)
        .fold(0.0f64, f64::max);
    let latency = if loads.is_empty() {
        0.0
    } else {
        loads.iter().map(|n| est[n.index()].latency_ms).sum::<f64>() / loads.len() as f64
    };
    let rows_loaded: f64 = loads.iter().map(|n| est[n.index()].rows).sum();

    v.set(MeasureId::CycleTimeMs, cycle);
    v.set(MeasureId::AvgLatencyMs, latency);
    if cycle > 0.0 {
        v.set(MeasureId::Throughput, rows_loaded / (cycle / 1_000.0));
    }

    // DQ at the loads (row-weighted means)
    let wmean = |f: fn(&NodeEst) -> f64| -> f64 {
        let w: f64 = loads.iter().map(|n| est[n.index()].rows.max(1.0)).sum();
        loads
            .iter()
            .map(|n| f(&est[n.index()]) * est[n.index()].rows.max(1.0))
            .sum::<f64>()
            / w.max(1.0)
    };
    if !loads.is_empty() {
        v.set(
            MeasureId::Completeness,
            (1.0 - wmean(|e| e.null_rate)).clamp(0.0, 1.0),
        );
        v.set(
            MeasureId::Uniqueness,
            (1.0 - wmean(|e| e.dup_rate)).clamp(0.0, 1.0),
        );
        v.set(
            MeasureId::Accuracy,
            (1.0 - wmean(|e| e.corrupt_rate)).clamp(0.0, 1.0),
        );
        let stale = loads
            .iter()
            .map(|n| est[n.index()].staleness_s)
            .fold(0.0f64, f64::max);
        v.set(
            MeasureId::FreshnessAgeS,
            crate::runtime::effective_age_s(stale, flow.config.recurrence_minutes),
        );
        v.set(
            MeasureId::FreshnessScore,
            freshness_score(stale, flow.config.recurrence_minutes),
        );
    }

    v.set(MeasureId::ExpectedRedoMs, expected_redo);
    v.set(
        MeasureId::Recoverability,
        recoverability(cycle, expected_redo),
    );
    v.set(
        MeasureId::MonetaryCost,
        crate::runtime::monetary_cost(cycle, flow),
    );
    v
}

/// Rows arriving at `to` from predecessor `from`: partitioned parents split
/// their output across successors, everything else sends its full output.
fn branch_rows(
    est: &[NodeEst],
    flow: &EtlFlow,
    from: etl_model::NodeId,
    to: etl_model::NodeId,
) -> f64 {
    let op = flow.op(from).expect("live node");
    let out_deg = flow.graph.out_degree(from).max(1) as f64;
    let rows = est[from.index()].rows;
    match op.kind {
        OpKind::Partition => rows / out_deg,
        OpKind::Router { .. } => rows / 2.0,
        _ => {
            let _ = to;
            rows
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::tpch::{tpch_catalog, tpch_flow};
    use datagen::DirtProfile;
    use simulator::{simulate, SimConfig};

    #[test]
    fn source_stats_from_dirty_table() {
        let cat = purchases_catalog(500, &DirtProfile::filthy(), 3);
        let stats =
            SourceStats::from_table(cat.table("s_purchases_3").unwrap(), cat.request_time());
        assert!(stats.rows > 500.0, "dups inflate row count");
        assert!(stats.null_rate > 0.05);
        assert!(stats.dup_rate > 0.02);
        assert!(stats.staleness_s > 0.0);
        let clean =
            SourceStats::from_table(cat.table("ref_s_purchases_3").unwrap(), cat.request_time());
        // Clean twins still carry *semantic* nulls (open-ended record_end_date)
        // but strictly fewer than the dirty table, and no duplicates.
        assert!(clean.null_rate < stats.null_rate);
        assert_eq!(clean.dup_rate, 0.0);
    }

    #[test]
    fn estimator_fills_all_runtime_measures() {
        let (f, _) = tpch_flow();
        let cat = tpch_catalog(400, &DirtProfile::demo(), 5);
        let v = estimate(&f, &source_stats(&cat));
        for id in [
            MeasureId::CycleTimeMs,
            MeasureId::AvgLatencyMs,
            MeasureId::Completeness,
            MeasureId::Uniqueness,
            MeasureId::Accuracy,
            MeasureId::FreshnessScore,
            MeasureId::Recoverability,
            MeasureId::MonetaryCost,
            MeasureId::LongestPath,
        ] {
            assert!(v.get(id).is_some(), "missing {id:?}");
        }
    }

    #[test]
    fn estimate_tracks_simulation_direction() {
        // The estimator must rank a parallelised flow as faster, a
        // checkpointed flow as more recoverable — same direction as sim.
        let (f, ids) = purchases_flow();
        let cat = purchases_catalog(400, &DirtProfile::demo(), 5);
        let stats = source_stats(&cat);
        let base_est = estimate(&f, &stats);
        let base_sim = crate::evaluate(&f, &simulate(&f, &cat, &SimConfig::default()).unwrap());

        // estimator and simulator agree on cycle time within 2x
        let est_ct = base_est.get(MeasureId::CycleTimeMs).unwrap();
        let sim_ct = base_sim.get(MeasureId::CycleTimeMs).unwrap();
        assert!(
            est_ct / sim_ct < 2.0 && sim_ct / est_ct < 2.0,
            "estimate {est_ct} vs simulated {sim_ct}"
        );

        // add a checkpoint → both paths report higher recoverability
        let router = f.ops_of_kind("router")[0];
        let mut fragile = f.fork("fragile");
        fragile.op_mut(router).unwrap().cost.failure_rate = 0.3;
        let frag_est = estimate(&fragile, &stats);
        let mut cp = fragile.fork("cp");
        let e = cp.graph.out_edges(ids.derive_values).next().unwrap();
        cp.graph
            .interpose_on_edge(
                e,
                etl_model::Operation::new("SAVE", OpKind::Checkpoint { tag: "s".into() }),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        let cp_est = estimate(&cp, &stats);
        assert!(
            cp_est.get(MeasureId::ExpectedRedoMs).unwrap()
                < frag_est.get(MeasureId::ExpectedRedoMs).unwrap()
        );
    }

    #[test]
    fn cleaning_ops_improve_estimated_dq() {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(400, &DirtProfile::filthy(), 5);
        let stats = source_stats(&cat);
        let base = estimate(&f, &stats);

        // interpose FilterNulls + Dedup right after the merge of sources
        let mut g = f.fork("cleaned");
        let merge0 = g.ops_of_kind("merge")[0];
        let e = g.graph.out_edges(merge0).next().unwrap();
        let splice = g
            .graph
            .interpose_on_edge(
                e,
                etl_model::Operation::new("FN", OpKind::FilterNulls { columns: vec![] }),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        g.graph
            .interpose_on_edge(
                splice.out_edge,
                etl_model::Operation::new("DD", OpKind::Dedup { keys: vec![] }),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        let cleaned = estimate(&g, &stats);
        assert!(
            cleaned.get(MeasureId::Completeness).unwrap()
                > base.get(MeasureId::Completeness).unwrap()
        );
        assert!(
            cleaned.get(MeasureId::Uniqueness).unwrap() > base.get(MeasureId::Uniqueness).unwrap()
        );
        // Cleaning near the sources shrinks the rows reaching the expensive
        // derive, so cycle time may go either way — it must stay positive.
        assert!(cleaned.get(MeasureId::CycleTimeMs).unwrap() > 0.0);
    }

    #[test]
    fn unknown_sources_get_defaults() {
        let (f, _) = purchases_flow();
        let v = estimate(&f, &HashMap::new());
        assert!(v.get(MeasureId::CycleTimeMs).unwrap() > 0.0);
        assert_eq!(v.get(MeasureId::Completeness), Some(1.0));
    }
}
