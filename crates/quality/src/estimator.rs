//! The analytic estimator: predicts runtime measures from the model alone.
//!
//! The paper's Planner "estimates defined measures for various quality
//! attributes" for *thousands* of alternative flows — executing each one
//! would defeat the interactive loop. The estimator propagates expected row
//! counts through the flow via per-operator selectivities, replays the same
//! virtual-clock arithmetic the simulator uses, and derives data-quality
//! expectations from per-source dirtiness statistics. The ablation bench
//! (`fig3_pipeline`) checks that estimator rankings agree with simulation.

use crate::measure::{MeasureId, MeasureVector};
use crate::runtime::{freshness_score, recoverability};
use crate::static_measures::evaluate_static;
use datagen::{Catalog, CORRUPT_MARKER};
use etl_model::{EtlFlow, OpKind, Value};
use std::collections::HashMap;

/// Per-source statistics the estimator propagates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceStats {
    /// Row count.
    pub rows: f64,
    /// Fraction of null cells.
    pub null_rate: f64,
    /// Fraction of duplicated rows.
    pub dup_rate: f64,
    /// Fraction of corrupted string cells.
    pub corrupt_rate: f64,
    /// Source staleness in seconds.
    pub staleness_s: f64,
}

impl SourceStats {
    /// Neutral stats for an unknown source.
    pub fn unknown(default_rows: f64) -> Self {
        SourceStats {
            rows: default_rows,
            null_rate: 0.0,
            dup_rate: 0.0,
            corrupt_rate: 0.0,
            staleness_s: 0.0,
        }
    }

    /// Derives stats by scanning a catalog table (cheap one-off pass; the
    /// planner does this once per session, not per alternative).
    pub fn from_table(table: &datagen::Table, request_time: i64) -> Self {
        let rows = table.rows.len();
        if rows == 0 {
            return SourceStats::unknown(0.0);
        }
        let mut cells = 0usize;
        let mut nulls = 0usize;
        let mut strs = 0usize;
        let mut corrupt = 0usize;
        let mut seen = std::collections::HashSet::with_capacity(rows);
        let mut distinct = 0usize;
        for row in &table.rows {
            let key: String = row
                .iter()
                .map(Value::group_key)
                .collect::<Vec<_>>()
                .join("\u{1}");
            if seen.insert(key) {
                distinct += 1;
            }
            for v in row {
                cells += 1;
                match v {
                    Value::Null => nulls += 1,
                    Value::Str(s) => {
                        strs += 1;
                        if s.ends_with(CORRUPT_MARKER) {
                            corrupt += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        SourceStats {
            rows: rows as f64,
            null_rate: nulls as f64 / cells.max(1) as f64,
            dup_rate: 1.0 - distinct as f64 / rows as f64,
            corrupt_rate: corrupt as f64 / strs.max(1) as f64,
            staleness_s: (request_time - table.last_update).max(0) as f64,
        }
    }
}

/// Builds the estimator's source-statistics table from a catalog.
pub fn source_stats(catalog: &Catalog) -> HashMap<String, SourceStats> {
    catalog
        .tables()
        .map(|(name, t)| {
            (
                name.clone(),
                SourceStats::from_table(t, catalog.request_time()),
            )
        })
        .collect()
}

#[derive(Clone, Copy)]
struct NodeEst {
    rows: f64,
    null_rate: f64,
    dup_rate: f64,
    corrupt_rate: f64,
    staleness_s: f64,
    done_ms: f64,
    latency_ms: f64,
    redo_span_ms: f64,
}

impl Default for NodeEst {
    fn default() -> Self {
        NodeEst {
            rows: 0.0,
            null_rate: 0.0,
            dup_rate: 0.0,
            corrupt_rate: 0.0,
            staleness_s: 0.0,
            done_ms: 0.0,
            latency_ms: 0.0,
            redo_span_ms: 0.0,
        }
    }
}

/// How strongly each cleaning pattern is expected to reduce its defect
/// class (residual fraction). Calibrated against simulation in tests.
const NULLFILTER_RESIDUAL: f64 = 0.05;
const DEDUP_RESIDUAL: f64 = 0.02;
const CROSSCHECK_RESIDUAL: f64 = 0.10;
const ENCRYPTION_OVERHEAD: f64 = 1.08;

/// Speed/tax multipliers implied by a flow's configuration. Graph-level
/// patterns (resources, encryption) change these globally, which is why the
/// delta estimator falls back to a full pass when the config differs.
fn speed_tax(flow: &EtlFlow) -> (f64, f64) {
    let speed = flow.config.resources.speed_factor();
    let tax = if flow.config.encrypted {
        ENCRYPTION_OVERHEAD
    } else {
        1.0
    };
    (speed, tax)
}

/// One node's estimate and its expected-redo contribution, computed from its
/// operation and its predecessors' already-filled entries in `est`. The
/// single definition of per-node estimator semantics — the full pass and the
/// delta pass both call exactly this, which is what makes their results
/// bit-identical.
fn compute_node_est(
    flow: &EtlFlow,
    n: etl_model::NodeId,
    est: &[NodeEst],
    stats: &HashMap<String, SourceStats>,
    speed: f64,
    tax: f64,
) -> (NodeEst, f64) {
    let op = flow.op(n).expect("live node");
    let preds: Vec<_> = flow.graph.predecessors(n).collect();

    let in_rows: f64 = preds.iter().map(|p| branch_rows(est, flow, *p, n)).sum();
    let agg = |f: fn(&NodeEst) -> f64| -> f64 {
        if preds.is_empty() {
            0.0
        } else {
            // row-weighted mean over inputs
            let total: f64 = preds
                .iter()
                .map(|p| f(&est[p.index()]) * est[p.index()].rows.max(1.0))
                .sum();
            let w: f64 = preds.iter().map(|p| est[p.index()].rows.max(1.0)).sum();
            total / w
        }
    };

    let mut e = NodeEst {
        null_rate: agg(|x| x.null_rate),
        dup_rate: agg(|x| x.dup_rate),
        corrupt_rate: agg(|x| x.corrupt_rate),
        staleness_s: preds
            .iter()
            .map(|p| est[p.index()].staleness_s)
            .fold(0.0f64, f64::max),
        ..NodeEst::default()
    };

    // rows and DQ effects per kind
    e.rows = match &op.kind {
        OpKind::Extract { source, .. } => {
            let s = stats
                .get(source)
                .copied()
                .unwrap_or_else(|| SourceStats::unknown(1_000.0));
            e.null_rate = s.null_rate;
            e.dup_rate = s.dup_rate;
            e.corrupt_rate = s.corrupt_rate;
            e.staleness_s = s.staleness_s;
            s.rows
        }
        OpKind::FilterNulls { .. } => {
            let out = in_rows * op.selectivity();
            e.null_rate *= NULLFILTER_RESIDUAL;
            out
        }
        OpKind::Dedup { .. } => {
            let out = in_rows * (1.0 - e.dup_rate).max(0.1);
            e.dup_rate *= DEDUP_RESIDUAL;
            out
        }
        OpKind::Crosscheck { .. } => {
            e.null_rate *= CROSSCHECK_RESIDUAL;
            e.corrupt_rate *= CROSSCHECK_RESIDUAL;
            in_rows
        }
        OpKind::Join { .. } => {
            // equi-join on surrogate-ish keys: bounded by the larger input
            let m = preds
                .iter()
                .map(|p| branch_rows(est, flow, *p, n))
                .fold(0.0f64, f64::max);
            m * op.selectivity()
        }
        _ => in_rows * op.selectivity(),
    };

    // timing — mirrors the simulator's clock arithmetic
    let par = op.parallelism.max(1) as f64;
    let work_rows = match op.kind {
        OpKind::Extract { .. } => e.rows,
        _ => in_rows,
    };
    let service = (op.cost.startup_ms + work_rows * op.cost.cost_per_tuple_ms / par) * tax / speed;
    let ready = preds
        .iter()
        .map(|p| est[p.index()].done_ms)
        .fold(0.0f64, f64::max);
    e.done_ms = ready + service;
    e.latency_ms = preds
        .iter()
        .map(|p| est[p.index()].latency_ms)
        .fold(0.0f64, f64::max)
        + op.cost.cost_per_tuple_ms * tax / (par * speed);

    let upstream_span = preds
        .iter()
        .map(|p| {
            let pop = flow.op(*p).expect("live node");
            if matches!(pop.kind, OpKind::Checkpoint { .. }) {
                pop.cost.startup_ms
            } else {
                est[p.index()].redo_span_ms
            }
        })
        .fold(0.0f64, f64::max);
    // Partition rows are split across successors; handled in branch_rows
    // via out-degree division, so `e.rows` stores the total.
    e.redo_span_ms = service + upstream_span;
    let redo_contrib = op.cost.failure_rate.clamp(0.0, 1.0) * e.redo_span_ms;
    (e, redo_contrib)
}

/// Estimates the full measure vector of a flow without executing it.
///
/// `stats` maps source names to their statistics (see [`source_stats`]);
/// unknown sources get [`SourceStats::unknown`] with 1 000 rows.
pub fn estimate(flow: &EtlFlow, stats: &HashMap<String, SourceStats>) -> MeasureVector {
    let order = match flow.topo_order() {
        Ok(o) => o,
        Err(_) => return evaluate_static(flow),
    };
    let (speed, tax) = speed_tax(flow);
    let bound = flow.graph.node_bound();
    let mut est: Vec<NodeEst> = vec![NodeEst::default(); bound];
    let mut redo_contrib: Vec<f64> = vec![0.0; bound];
    for &n in &order {
        let (e, c) = compute_node_est(flow, n, &est, stats, speed, tax);
        est[n.index()] = e;
        redo_contrib[n.index()] = c;
    }
    finalize(flow, &est, &redo_contrib)
}

/// Cached per-node estimates of a base flow, reusable across every
/// copy-on-write fork of that base within one exploration cycle.
/// Build once with [`estimate_baseline`], consume with [`estimate_delta`].
pub struct EstimateBaseline {
    est: Vec<NodeEst>,
    redo_contrib: Vec<f64>,
    speed: f64,
    tax: f64,
    /// Longest path *ending* at each node (edge count). Depends only on a
    /// node's ancestors, so forks reuse it outside the affected region.
    dist_end: Vec<usize>,
    /// Merge-operation count of the base flow.
    merge_count: usize,
    /// Encrypt-operation count of the base flow.
    encrypt_count: usize,
    /// False when the base flow was cyclic (no baseline to compose with).
    acyclic: bool,
}

/// Builds the per-node estimate cache for `flow` (the planner's base flow).
pub fn estimate_baseline(flow: &EtlFlow, stats: &HashMap<String, SourceStats>) -> EstimateBaseline {
    let (speed, tax) = speed_tax(flow);
    let bound = flow.graph.node_bound();
    let mut est: Vec<NodeEst> = vec![NodeEst::default(); bound];
    let mut redo_contrib: Vec<f64> = vec![0.0; bound];
    let mut dist_end: Vec<usize> = vec![0; bound];
    let acyclic = match flow.topo_order() {
        Ok(order) => {
            for &n in &order {
                let (e, c) = compute_node_est(flow, n, &est, stats, speed, tax);
                est[n.index()] = e;
                redo_contrib[n.index()] = c;
                dist_end[n.index()] = flow
                    .graph
                    .predecessors(n)
                    .map(|p| dist_end[p.index()] + 1)
                    .max()
                    .unwrap_or(0);
            }
            true
        }
        Err(_) => false,
    };
    EstimateBaseline {
        est,
        redo_contrib,
        speed,
        tax,
        dist_end,
        merge_count: flow.count_ops(|op| matches!(op.kind, OpKind::Merge)),
        encrypt_count: flow.count_ops(|op| matches!(op.kind, OpKind::Encrypt)),
        acyclic,
    }
}

/// Estimates a copy-on-write fork of `base` by re-propagating only over the
/// fork's touched nodes and their descendants, composing with `baseline`.
///
/// Returns a `MeasureVector` **bit-identical** to `estimate(fork, stats)`:
/// unaffected nodes' estimates are reused verbatim (their inputs are
/// provably unchanged — the affected region is successor-closed), affected
/// nodes run the exact same per-node computation as the full pass, and the
/// expected-redo total is summed in the same canonical node-index order.
///
/// Falls back to the full pass when the fork's `FlowConfig` differs from the
/// base's (graph-level patterns change global speed/tax multipliers, which
/// invalidates every cached timing) or when the base was cyclic.
pub fn estimate_delta(
    fork: &EtlFlow,
    base: &EtlFlow,
    baseline: &EstimateBaseline,
    stats: &HashMap<String, SourceStats>,
) -> MeasureVector {
    estimate_delta_with(fork, base, baseline, stats, &fork.delta_since(base))
}

/// [`estimate_delta`] against a caller-supplied delta — the planner computes
/// `fork.delta_since(base)` once per combination and shares it between the
/// post-screen and this estimate.
pub fn estimate_delta_with(
    fork: &EtlFlow,
    base: &EtlFlow,
    baseline: &EstimateBaseline,
    stats: &HashMap<String, SourceStats>,
    delta: &flowgraph::CowDelta,
) -> MeasureVector {
    if !baseline.acyclic || fork.config != base.config {
        return estimate(fork, stats);
    }
    let Some(order) = flowgraph::affected_topo(&fork.graph, &delta.touched_nodes) else {
        // The patch introduced a cycle (any new cycle lies inside the
        // affected region) — mirror the full pass's cyclic behaviour.
        return evaluate_static(fork);
    };
    let bound = fork.graph.node_bound();
    let mut est = baseline.est.clone();
    est.resize(bound, NodeEst::default());
    let mut redo_contrib = baseline.redo_contrib.clone();
    redo_contrib.resize(bound, 0.0);
    for r in &delta.removed_nodes {
        redo_contrib[r.index()] = 0.0;
    }
    for &n in &order {
        let (e, c) = compute_node_est(fork, n, &est, stats, baseline.speed, baseline.tax);
        est[n.index()] = e;
        redo_contrib[n.index()] = c;
    }
    let statics = static_delta(fork, base, baseline, delta, &order);
    finalize_with(statics, fork, &est, &redo_contrib)
}

/// Static measures of a fork, composed from the baseline's cached
/// structural aggregates plus a patch-local adjustment. Bit-identical to
/// [`evaluate_static`]`(fork)` for acyclic forks: the longest path is an
/// integer recomputed only over the affected region (a path length *ending*
/// at a node depends only on its ancestors, and any node whose predecessor
/// set changed is in the region), merge/encrypt counts are adjusted by
/// exact integer diffs over the touched and removed slots, and coupling is
/// a closed-form function of the fork's node and edge counts.
fn static_delta(
    fork: &EtlFlow,
    base: &EtlFlow,
    baseline: &EstimateBaseline,
    delta: &flowgraph::CowDelta,
    order: &[etl_model::NodeId],
) -> MeasureVector {
    let bound = fork.graph.node_bound();
    let mut dist = baseline.dist_end.clone();
    dist.resize(bound, 0);
    for &n in order {
        dist[n.index()] = fork
            .graph
            .predecessors(n)
            .map(|p| dist[p.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    let mut lp = 0usize;
    for n in fork.graph.node_ids() {
        lp = lp.max(dist[n.index()]);
    }
    let merge = |op: Option<&etl_model::Operation>| -> i64 {
        matches!(op.map(|o| &o.kind), Some(OpKind::Merge)) as i64
    };
    let encrypt = |op: Option<&etl_model::Operation>| -> i64 {
        matches!(op.map(|o| &o.kind), Some(OpKind::Encrypt)) as i64
    };
    let mut merges = baseline.merge_count as i64;
    let mut encrypts = baseline.encrypt_count as i64;
    // Touched slots cover in-place edits (old kind out, new kind in) and
    // index-reusing replacements alike; removed slots only exist in `base`.
    for &n in &delta.touched_nodes {
        merges += merge(fork.graph.node(n)) - merge(base.graph.node(n));
        encrypts += encrypt(fork.graph.node(n)) - encrypt(base.graph.node(n));
    }
    for &n in &delta.removed_nodes {
        merges -= merge(base.graph.node(n));
        encrypts -= encrypt(base.graph.node(n));
    }
    let mut v = MeasureVector::new();
    v.set(MeasureId::LongestPath, lp as f64);
    v.set(MeasureId::Coupling, flowgraph::coupling(&fork.graph));
    v.set(MeasureId::MergeCount, merges as f64);
    v.set(MeasureId::OpCount, fork.op_count() as f64);
    v.set(
        MeasureId::SecurityScore,
        crate::static_measures::security_score_with(fork, encrypts > 0),
    );
    v
}

/// Aggregates per-node estimates into the flow's measure vector. Shared by
/// the full and delta paths; all floating-point reductions run in canonical
/// (ascending node-index) order so both paths produce identical bits.
fn finalize(flow: &EtlFlow, est: &[NodeEst], redo_contrib: &[f64]) -> MeasureVector {
    finalize_with(evaluate_static(flow), flow, est, redo_contrib)
}

/// [`finalize`] with the static measures already computed — the delta path
/// supplies them via [`static_delta`] instead of a full structural scan.
fn finalize_with(
    mut v: MeasureVector,
    flow: &EtlFlow,
    est: &[NodeEst],
    redo_contrib: &[f64],
) -> MeasureVector {
    let expected_redo: f64 = redo_contrib.iter().sum();
    let loads = flow.ops_of_kind("load");
    let cycle = loads
        .iter()
        .map(|n| est[n.index()].done_ms)
        .fold(0.0f64, f64::max);
    let latency = if loads.is_empty() {
        0.0
    } else {
        loads.iter().map(|n| est[n.index()].latency_ms).sum::<f64>() / loads.len() as f64
    };
    let rows_loaded: f64 = loads.iter().map(|n| est[n.index()].rows).sum();

    v.set(MeasureId::CycleTimeMs, cycle);
    v.set(MeasureId::AvgLatencyMs, latency);
    if cycle > 0.0 {
        v.set(MeasureId::Throughput, rows_loaded / (cycle / 1_000.0));
    }

    // DQ at the loads (row-weighted means)
    let wmean = |f: fn(&NodeEst) -> f64| -> f64 {
        let w: f64 = loads.iter().map(|n| est[n.index()].rows.max(1.0)).sum();
        loads
            .iter()
            .map(|n| f(&est[n.index()]) * est[n.index()].rows.max(1.0))
            .sum::<f64>()
            / w.max(1.0)
    };
    if !loads.is_empty() {
        v.set(
            MeasureId::Completeness,
            (1.0 - wmean(|e| e.null_rate)).clamp(0.0, 1.0),
        );
        v.set(
            MeasureId::Uniqueness,
            (1.0 - wmean(|e| e.dup_rate)).clamp(0.0, 1.0),
        );
        v.set(
            MeasureId::Accuracy,
            (1.0 - wmean(|e| e.corrupt_rate)).clamp(0.0, 1.0),
        );
        let stale = loads
            .iter()
            .map(|n| est[n.index()].staleness_s)
            .fold(0.0f64, f64::max);
        v.set(
            MeasureId::FreshnessAgeS,
            crate::runtime::effective_age_s(stale, flow.config.recurrence_minutes),
        );
        v.set(
            MeasureId::FreshnessScore,
            freshness_score(stale, flow.config.recurrence_minutes),
        );
    }

    v.set(MeasureId::ExpectedRedoMs, expected_redo);
    v.set(
        MeasureId::Recoverability,
        recoverability(cycle, expected_redo),
    );
    v.set(
        MeasureId::MonetaryCost,
        crate::runtime::monetary_cost(cycle, flow),
    );
    v
}

/// Rows arriving at `to` from predecessor `from`: partitioned parents split
/// their output across successors, everything else sends its full output.
fn branch_rows(
    est: &[NodeEst],
    flow: &EtlFlow,
    from: etl_model::NodeId,
    to: etl_model::NodeId,
) -> f64 {
    let op = flow.op(from).expect("live node");
    let out_deg = flow.graph.out_degree(from).max(1) as f64;
    let rows = est[from.index()].rows;
    match op.kind {
        OpKind::Partition => rows / out_deg,
        OpKind::Router { .. } => rows / 2.0,
        _ => {
            let _ = to;
            rows
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::tpch::{tpch_catalog, tpch_flow};
    use datagen::DirtProfile;
    use simulator::{simulate, SimConfig};

    #[test]
    fn source_stats_from_dirty_table() {
        let cat = purchases_catalog(500, &DirtProfile::filthy(), 3);
        let stats =
            SourceStats::from_table(cat.table("s_purchases_3").unwrap(), cat.request_time());
        assert!(stats.rows > 500.0, "dups inflate row count");
        assert!(stats.null_rate > 0.05);
        assert!(stats.dup_rate > 0.02);
        assert!(stats.staleness_s > 0.0);
        let clean =
            SourceStats::from_table(cat.table("ref_s_purchases_3").unwrap(), cat.request_time());
        // Clean twins still carry *semantic* nulls (open-ended record_end_date)
        // but strictly fewer than the dirty table, and no duplicates.
        assert!(clean.null_rate < stats.null_rate);
        assert_eq!(clean.dup_rate, 0.0);
    }

    #[test]
    fn estimator_fills_all_runtime_measures() {
        let (f, _) = tpch_flow();
        let cat = tpch_catalog(400, &DirtProfile::demo(), 5);
        let v = estimate(&f, &source_stats(&cat));
        for id in [
            MeasureId::CycleTimeMs,
            MeasureId::AvgLatencyMs,
            MeasureId::Completeness,
            MeasureId::Uniqueness,
            MeasureId::Accuracy,
            MeasureId::FreshnessScore,
            MeasureId::Recoverability,
            MeasureId::MonetaryCost,
            MeasureId::LongestPath,
        ] {
            assert!(v.get(id).is_some(), "missing {id:?}");
        }
    }

    #[test]
    fn estimate_tracks_simulation_direction() {
        // The estimator must rank a parallelised flow as faster, a
        // checkpointed flow as more recoverable — same direction as sim.
        let (f, ids) = purchases_flow();
        let cat = purchases_catalog(400, &DirtProfile::demo(), 5);
        let stats = source_stats(&cat);
        let base_est = estimate(&f, &stats);
        let base_sim = crate::evaluate(&f, &simulate(&f, &cat, &SimConfig::default()).unwrap());

        // estimator and simulator agree on cycle time within 2x
        let est_ct = base_est.get(MeasureId::CycleTimeMs).unwrap();
        let sim_ct = base_sim.get(MeasureId::CycleTimeMs).unwrap();
        assert!(
            est_ct / sim_ct < 2.0 && sim_ct / est_ct < 2.0,
            "estimate {est_ct} vs simulated {sim_ct}"
        );

        // add a checkpoint → both paths report higher recoverability
        let router = f.ops_of_kind("router")[0];
        let mut fragile = f.fork("fragile");
        fragile.op_mut(router).unwrap().cost.failure_rate = 0.3;
        let frag_est = estimate(&fragile, &stats);
        let mut cp = fragile.fork("cp");
        let e = cp.graph.out_edges(ids.derive_values).next().unwrap();
        cp.graph
            .interpose_on_edge(
                e,
                etl_model::Operation::new("SAVE", OpKind::Checkpoint { tag: "s".into() }),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        let cp_est = estimate(&cp, &stats);
        assert!(
            cp_est.get(MeasureId::ExpectedRedoMs).unwrap()
                < frag_est.get(MeasureId::ExpectedRedoMs).unwrap()
        );
    }

    #[test]
    fn cleaning_ops_improve_estimated_dq() {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(400, &DirtProfile::filthy(), 5);
        let stats = source_stats(&cat);
        let base = estimate(&f, &stats);

        // interpose FilterNulls + Dedup right after the merge of sources
        let mut g = f.fork("cleaned");
        let merge0 = g.ops_of_kind("merge")[0];
        let e = g.graph.out_edges(merge0).next().unwrap();
        let splice = g
            .graph
            .interpose_on_edge(
                e,
                etl_model::Operation::new("FN", OpKind::FilterNulls { columns: vec![] }),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        g.graph
            .interpose_on_edge(
                splice.out_edge,
                etl_model::Operation::new("DD", OpKind::Dedup { keys: vec![] }),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        let cleaned = estimate(&g, &stats);
        assert!(
            cleaned.get(MeasureId::Completeness).unwrap()
                > base.get(MeasureId::Completeness).unwrap()
        );
        assert!(
            cleaned.get(MeasureId::Uniqueness).unwrap() > base.get(MeasureId::Uniqueness).unwrap()
        );
        // Cleaning near the sources shrinks the rows reaching the expensive
        // derive, so cycle time may go either way — it must stay positive.
        assert!(cleaned.get(MeasureId::CycleTimeMs).unwrap() > 0.0);
    }

    #[test]
    fn delta_estimate_is_bit_identical_to_scratch() {
        let (f, ids) = purchases_flow();
        let cat = purchases_catalog(400, &DirtProfile::demo(), 5);
        let stats = source_stats(&cat);
        let baseline = estimate_baseline(&f, &stats);

        // Patch 1: interpose a checkpoint mid-flow.
        let mut cp = f.fork("cp");
        let e = cp.graph.out_edges(ids.derive_values).next().unwrap();
        cp.graph
            .interpose_on_edge(
                e,
                etl_model::Operation::new("SAVE", OpKind::Checkpoint { tag: "s".into() }),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        // Patch 2 (same fork): bump an operator's failure rate.
        let router = cp.ops_of_kind("router")[0];
        cp.op_mut(router).unwrap().cost.failure_rate = 0.3;

        let fast = estimate_delta(&cp, &f, &baseline, &stats);
        let slow = estimate(&cp, &stats);
        assert_eq!(fast, slow, "delta and scratch must agree to the bit");

        // Config change → falls back to full estimate, still identical.
        let mut enc = f.fork("enc");
        enc.config.encrypted = true;
        let fast = estimate_delta(&enc, &f, &baseline, &stats);
        assert_eq!(fast, estimate(&enc, &stats));

        // Untouched fork: composing with the baseline reproduces the base.
        let same = f.fork("same");
        assert_eq!(
            estimate_delta(&same, &f, &baseline, &stats),
            estimate(&f, &stats)
        );
    }

    #[test]
    fn unknown_sources_get_defaults() {
        let (f, _) = purchases_flow();
        let v = estimate(&f, &HashMap::new());
        assert!(v.get(MeasureId::CycleTimeMs).unwrap() > 0.0);
        assert_eq!(v.get(MeasureId::Completeness), Some(1.0));
    }
}
