//! Measures derived directly from the static structure of the process model
//! (first family in the paper's Fig. 1): manageability metrics and the
//! model-derived part of cost.

use crate::measure::{MeasureId, MeasureVector};
use etl_model::{EtlFlow, OpKind};
use flowgraph::{coupling, longest_path_len};

/// Evaluates every purely structural measure of a flow.
pub fn evaluate_static(flow: &EtlFlow) -> MeasureVector {
    let mut v = MeasureVector::new();
    if let Some(lp) = longest_path_len(&flow.graph) {
        v.set(MeasureId::LongestPath, lp as f64);
    }
    v.set(MeasureId::Coupling, coupling(&flow.graph));
    v.set(
        MeasureId::MergeCount,
        flow.count_ops(|op| matches!(op.kind, OpKind::Merge)) as f64,
    );
    v.set(MeasureId::OpCount, flow.op_count() as f64);
    v.set(MeasureId::SecurityScore, security_score(flow));
    v
}

/// Security posture from the graph-level configuration plus the presence of
/// in-flow encryption operations: a base 0.2 for default isolation, +0.5
/// for channel encryption, +0.3 for role-based access control.
pub fn security_score(flow: &EtlFlow) -> f64 {
    let has_encrypt_op = flow.count_ops(|op| matches!(op.kind, OpKind::Encrypt)) > 0;
    security_score_with(flow, has_encrypt_op)
}

/// [`security_score`] with the encryption-operation scan already done — the
/// incremental estimator tracks that count as an exact patch delta instead
/// of re-scanning every node per alternative.
pub fn security_score_with(flow: &EtlFlow, has_encrypt_op: bool) -> f64 {
    let mut s = 0.2;
    if flow.config.encrypted || has_encrypt_op {
        s += 0.5;
    }
    if flow.config.role_based_access {
        s += 0.3;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::purchases_flow;
    use datagen::tpch::tpch_flow;

    #[test]
    fn tpch_static_measures() {
        let (f, _) = tpch_flow();
        let v = evaluate_static(&f);
        assert_eq!(v.get(MeasureId::OpCount), Some(f.op_count() as f64));
        assert_eq!(v.get(MeasureId::MergeCount), Some(1.0));
        assert!(v.get(MeasureId::LongestPath).unwrap() >= 8.0);
        assert!(v.get(MeasureId::Coupling).unwrap() > 0.0);
    }

    #[test]
    fn purchases_has_two_merges() {
        let (f, _) = purchases_flow();
        let v = evaluate_static(&f);
        assert_eq!(v.get(MeasureId::MergeCount), Some(2.0));
    }

    #[test]
    fn adding_an_op_changes_measures() {
        let (f, ids) = purchases_flow();
        let base = evaluate_static(&f);
        let mut g = f.fork("bigger");
        // interpose a checkpoint after the expensive derive
        let e = g.graph.out_edges(ids.derive_values).next().unwrap();
        g.graph
            .interpose_on_edge(
                e,
                etl_model::Operation::new("SAVE", OpKind::Checkpoint { tag: "sp".into() }),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        let v = evaluate_static(&g);
        assert_eq!(
            v.get(MeasureId::OpCount).unwrap(),
            base.get(MeasureId::OpCount).unwrap() + 1.0
        );
        assert!(v.get(MeasureId::LongestPath).unwrap() > base.get(MeasureId::LongestPath).unwrap());
    }
}
