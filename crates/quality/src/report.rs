//! Quality reports: the data behind the paper's Fig. 5 — relative change of
//! measures for an alternative flow against the initial flow as baseline,
//! with composite characteristics that "expand" into detailed metrics.

use crate::measure::{Characteristic, MeasureId, MeasureVector};

/// Relative change of one measure against the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeChange {
    /// The measure.
    pub id: MeasureId,
    /// Baseline value.
    pub baseline: f64,
    /// Alternative's value.
    pub value: f64,
    /// Signed improvement in percent: positive = better, regardless of the
    /// measure's direction (a 20 % *drop* in cycle time reports +20).
    pub improvement_pct: f64,
}

/// Computes relative changes for every measure present in both vectors.
pub fn relative_change(baseline: &MeasureVector, alt: &MeasureVector) -> Vec<RelativeChange> {
    MeasureId::ALL
        .iter()
        .filter_map(|&id| {
            let b = baseline.get(id)?;
            let v = alt.get(id)?;
            let eps = 1e-9;
            let raw = if id.higher_is_better() {
                (v - b) / (b.abs() + eps)
            } else {
                (b - v) / (b.abs() + eps)
            };
            Some(RelativeChange {
                id,
                baseline: b,
                value: v,
                improvement_pct: raw * 100.0,
            })
        })
        .collect()
}

/// One characteristic's entry in a quality report: composite score plus the
/// detailed metrics it expands into (the Fig. 5 drill-down).
#[derive(Debug, Clone)]
pub struct CharacteristicReport {
    /// The characteristic.
    pub characteristic: Characteristic,
    /// Composite score against the baseline (baseline = 100).
    pub score: f64,
    /// Detailed per-measure changes.
    pub details: Vec<RelativeChange>,
}

/// Full per-flow quality report against a baseline.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Name of the evaluated flow.
    pub flow_name: String,
    /// Per-characteristic entries, in [`Characteristic::ALL`] order.
    pub characteristics: Vec<CharacteristicReport>,
}

impl QualityReport {
    /// Builds the report for `alt` measured against `baseline`.
    pub fn build(
        flow_name: impl Into<String>,
        baseline: &MeasureVector,
        alt: &MeasureVector,
    ) -> Self {
        let changes = relative_change(baseline, alt);
        let characteristics = Characteristic::ALL
            .iter()
            .map(|&c| CharacteristicReport {
                characteristic: c,
                score: alt.characteristic_score(baseline, c),
                details: changes
                    .iter()
                    .filter(|rc| rc.id.characteristic() == c)
                    .copied()
                    .collect(),
            })
            .collect();
        QualityReport {
            flow_name: flow_name.into(),
            characteristics,
        }
    }

    /// Looks up one characteristic's entry.
    pub fn characteristic(&self, c: Characteristic) -> Option<&CharacteristicReport> {
        self.characteristics.iter().find(|r| r.characteristic == c)
    }

    /// The "expand" interaction of Fig. 5: the detailed metrics behind a
    /// composite bar.
    pub fn expand(&self, c: Characteristic) -> &[RelativeChange] {
        self.characteristic(c)
            .map(|r| r.details.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors() -> (MeasureVector, MeasureVector) {
        let mut base = MeasureVector::new();
        base.set(MeasureId::CycleTimeMs, 100.0);
        base.set(MeasureId::Completeness, 0.8);
        base.set(MeasureId::Recoverability, 0.5);
        let mut alt = MeasureVector::new();
        alt.set(MeasureId::CycleTimeMs, 80.0); // 20% faster
        alt.set(MeasureId::Completeness, 0.9);
        alt.set(MeasureId::Recoverability, 0.75);
        (base, alt)
    }

    #[test]
    fn improvement_sign_convention() {
        let (base, alt) = vectors();
        let changes = relative_change(&base, &alt);
        let ct = changes
            .iter()
            .find(|c| c.id == MeasureId::CycleTimeMs)
            .unwrap();
        assert!((ct.improvement_pct - 20.0).abs() < 1e-6);
        let comp = changes
            .iter()
            .find(|c| c.id == MeasureId::Completeness)
            .unwrap();
        assert!(comp.improvement_pct > 12.0 && comp.improvement_pct < 13.0);
    }

    #[test]
    fn regression_reports_negative() {
        let (base, mut alt) = vectors();
        alt.set(MeasureId::CycleTimeMs, 200.0);
        let changes = relative_change(&base, &alt);
        let ct = changes
            .iter()
            .find(|c| c.id == MeasureId::CycleTimeMs)
            .unwrap();
        assert!(ct.improvement_pct < -99.0);
    }

    #[test]
    fn report_structure_and_expand() {
        let (base, alt) = vectors();
        let r = QualityReport::build("alt_1", &base, &alt);
        assert_eq!(r.characteristics.len(), Characteristic::ALL.len());
        let perf = r.characteristic(Characteristic::Performance).unwrap();
        assert!(perf.score > 100.0);
        assert_eq!(r.expand(Characteristic::Performance).len(), 1);
        assert_eq!(r.expand(Characteristic::DataQuality).len(), 1);
        assert!(r.expand(Characteristic::Cost).is_empty());
    }

    #[test]
    fn missing_measures_skipped() {
        let mut base = MeasureVector::new();
        base.set(MeasureId::CycleTimeMs, 10.0);
        let alt = MeasureVector::new();
        assert!(relative_change(&base, &alt).is_empty());
    }
}
