//! Static gain bounds: the abstract domain behind planner dominance pruning.
//!
//! A [`GainProfile`] is a sound *optimistic* cap on how much one pattern
//! application can improve each quality characteristic, expressed as a
//! multiplier on the characteristic score (baseline = 100). The clamp in
//! [`MeasureVector::improvement_ratio`](crate::MeasureVector::improvement_ratio)
//! guarantees no score exceeds `100 × RATIO_CLAMP_MAX`, so an all-
//! [`RATIO_CLAMP_MAX`] profile is always sound — that's the conservative
//! default for patterns that declare nothing. Patterns that provably leave a
//! characteristic untouched (e.g. `EncryptChannels` never changes data
//! quality) tighten the cap to `1.0`, and the planner can discard a
//! combination whose combined caps are dominated by the current skyline
//! *before* forking and evaluating it.

use crate::measure::{Characteristic, RATIO_CLAMP_MAX};

/// Per-characteristic optimistic improvement caps, indexed in
/// [`Characteristic::ALL`] order. Each cap is a multiplier on the
/// characteristic score: `1.0` = the pattern cannot improve this axis,
/// [`RATIO_CLAMP_MAX`] = unbounded (anything the clamp admits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainProfile {
    caps: [f64; Characteristic::ALL.len()],
}

impl GainProfile {
    /// The sound default: every characteristic may improve up to the ratio
    /// clamp. Never enables pruning on its own.
    pub fn unbounded() -> Self {
        GainProfile {
            caps: [RATIO_CLAMP_MAX; Characteristic::ALL.len()],
        }
    }

    /// A profile that cannot improve anything — the identity of
    /// [`combine`](Self::combine).
    pub fn neutral() -> Self {
        GainProfile {
            caps: [1.0; Characteristic::ALL.len()],
        }
    }

    /// Sets the cap for one characteristic (builder-style). Caps below `1.0`
    /// are raised to `1.0`: a gain bound never claims a pattern *worsens* an
    /// axis, only that it cannot improve it.
    pub fn with_cap(mut self, c: Characteristic, cap: f64) -> Self {
        self.caps[Self::idx(c)] = cap.max(1.0);
        self
    }

    /// The optimistic improvement cap for one characteristic.
    pub fn cap(&self, c: Characteristic) -> f64 {
        self.caps[Self::idx(c)]
    }

    /// Combines two profiles into the bound for applying both patterns:
    /// caps multiply per axis (each application can at best stack its own
    /// gain on the other's), clamped to [`RATIO_CLAMP_MAX`] because the
    /// improvement-ratio clamp caps the realised score regardless of how
    /// many patterns stack.
    pub fn combine(&self, other: &GainProfile) -> GainProfile {
        let mut caps = self.caps;
        for (c, o) in caps.iter_mut().zip(other.caps.iter()) {
            *c = (*c * o).min(RATIO_CLAMP_MAX);
        }
        GainProfile { caps }
    }

    fn idx(c: Characteristic) -> usize {
        Characteristic::ALL
            .iter()
            .position(|x| *x == c)
            .expect("characteristic listed in ALL")
    }
}

impl Default for GainProfile {
    /// Defaults to [`unbounded`](Self::unbounded) — the sound choice when a
    /// pattern declares nothing about its gains.
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::RATIO_CLAMP_MIN;

    #[test]
    fn unbounded_caps_everything_at_clamp() {
        let p = GainProfile::unbounded();
        for c in Characteristic::ALL {
            assert_eq!(p.cap(c), RATIO_CLAMP_MAX);
        }
    }

    #[test]
    fn neutral_is_combine_identity() {
        let p = GainProfile::neutral()
            .with_cap(Characteristic::Security, 7.0)
            .with_cap(Characteristic::Cost, 2.5);
        let combined = p.combine(&GainProfile::neutral());
        for c in Characteristic::ALL {
            assert_eq!(combined.cap(c), p.cap(c));
        }
    }

    #[test]
    fn with_cap_floors_at_one() {
        let p = GainProfile::neutral().with_cap(Characteristic::Performance, 0.2);
        assert_eq!(p.cap(Characteristic::Performance), 1.0);
    }

    #[test]
    fn combine_multiplies_and_clamps() {
        let a = GainProfile::neutral().with_cap(Characteristic::Security, 6.0);
        let b = GainProfile::neutral()
            .with_cap(Characteristic::Security, 5.0)
            .with_cap(Characteristic::Cost, 3.0);
        let c = a.combine(&b);
        // 6 × 5 = 30 clamps to RATIO_CLAMP_MAX
        assert_eq!(c.cap(Characteristic::Security), RATIO_CLAMP_MAX);
        assert_eq!(c.cap(Characteristic::Cost), 3.0);
        assert_eq!(c.cap(Characteristic::Performance), 1.0);
    }

    #[test]
    fn clamp_constants_match_the_documented_interval() {
        assert_eq!(RATIO_CLAMP_MIN, 0.05);
        assert_eq!(RATIO_CLAMP_MAX, 20.0);
    }

    #[test]
    fn default_is_unbounded() {
        assert_eq!(GainProfile::default(), GainProfile::unbounded());
    }
}
