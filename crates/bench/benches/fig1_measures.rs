//! FIG1 bench: cost of computing the Fig. 1 measure table — static
//! measures, trace-derived measures, and the full simulate+evaluate path.

use bench::{tpch_setup, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use simulator::{simulate, SimConfig};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let (flow, catalog) = tpch_setup(500);
    let cfg = SimConfig {
        seed: SEED,
        inject_failures: false,
    };
    let trace = simulate(&flow, &catalog, &cfg).unwrap();

    let mut g = c.benchmark_group("fig1_measures");
    g.bench_function("static_measures", |b| {
        b.iter(|| black_box(quality::evaluate_static(black_box(&flow))))
    });
    g.bench_function("trace_measures", |b| {
        b.iter(|| black_box(quality::evaluate_trace(black_box(&flow), black_box(&trace))))
    });
    g.bench_function("simulate_and_evaluate", |b| {
        b.iter(|| {
            let t = simulate(black_box(&flow), black_box(&catalog), &cfg).unwrap();
            black_box(quality::evaluate(&flow, &t))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
