//! FIG4 bench + ablation: skyline algorithms (block-nested-loop vs
//! sort-filter) over growing point sets in 3 dimensions — the scatter-plot's
//! Pareto computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poiesis::{pareto_skyline_bnl, pareto_skyline_sorted};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dims).map(|_| rng.gen_range(50.0..200.0)).collect())
        .collect()
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_skyline");
    for n in [200usize, 1_000, 5_000] {
        let pts = points(n, 3, 42);
        g.bench_with_input(BenchmarkId::new("bnl", n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_skyline_bnl(black_box(pts))))
        });
        g.bench_with_input(BenchmarkId::new("sorted", n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_skyline_sorted(black_box(pts))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
