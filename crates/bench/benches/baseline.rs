//! BASELINE bench: cost of one simulated manual-redesign pass vs one
//! planner cycle (the §1 comparison, wall-clock side).

use bench::{planner_for, purchases_setup};
use criterion::{criterion_group, criterion_main, Criterion};
use poiesis::baseline::{manual_redesign, ManualStrategy};
use poiesis::PlannerConfig;
use std::hint::black_box;

fn bench_baseline(c: &mut Criterion) {
    let (flow, catalog) = purchases_setup(200);
    let planner = planner_for(flow, catalog, PlannerConfig::default());

    let mut g = c.benchmark_group("baseline");
    g.sample_size(10);
    g.bench_function("manual_random_effort6", |b| {
        b.iter(|| black_box(manual_redesign(&planner, ManualStrategy::Random, 6, 7).unwrap()))
    });
    g.bench_function("manual_greedy_effort6", |b| {
        b.iter(|| {
            black_box(manual_redesign(&planner, ManualStrategy::GreedySampled, 6, 7).unwrap())
        })
    });
    g.bench_function("planner_full_cycle", |b| {
        b.iter(|| black_box(planner.plan().unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
