//! DEMO-SCALE bench: one full plan cycle producing thousands of
//! alternatives on the TPC-H demo flow.

use bench::{planner_for, tpch_setup};
use criterion::{criterion_group, criterion_main, Criterion};
use fcp::DeploymentPolicy;
use poiesis::PlannerConfig;
use std::hint::black_box;

fn bench_demo_scale(c: &mut Criterion) {
    let (flow, catalog) = tpch_setup(200);
    let mut g = c.benchmark_group("demo_scale");
    g.sample_size(10);
    g.bench_function("plan_thousands_of_alternatives", |b| {
        b.iter_batched(
            || {
                planner_for(
                    flow.clone(),
                    catalog.clone(),
                    PlannerConfig {
                        policy: DeploymentPolicy {
                            top_k_points_per_pattern: usize::MAX,
                            min_fitness: 0.0,
                            max_patterns_per_flow: 2,
                            max_per_pattern: 2,
                            ..DeploymentPolicy::balanced()
                        },
                        max_alternatives: 100_000,
                        workers: 8,
                        ..PlannerConfig::default()
                    },
                )
            },
            |p| {
                let out = p.plan().unwrap();
                assert!(out.alternatives.len() > 1_000);
                black_box(out)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_demo_scale);
criterion_main!(benches);
