//! FIG5 bench: building the relative-change report and rendering the bar
//! graph with drill-down.

use bench::{purchases_setup, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use quality::QualityReport;
use simulator::{simulate, SimConfig};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let (flow, catalog) = purchases_setup(300);
    let cfg = SimConfig {
        seed: SEED,
        inject_failures: false,
    };
    let base = quality::evaluate(&flow, &simulate(&flow, &catalog, &cfg).unwrap());
    let mut alt_flow = flow.fork("alt");
    alt_flow.config.encrypted = true;
    let alt = quality::evaluate(&alt_flow, &simulate(&alt_flow, &catalog, &cfg).unwrap());

    let mut g = c.benchmark_group("fig5_report");
    g.bench_function("build_report", |b| {
        b.iter(|| {
            black_box(QualityReport::build(
                "alt",
                black_box(&base),
                black_box(&alt),
            ))
        })
    });
    let report = QualityReport::build("alt", &base, &alt);
    g.bench_function("render_bars_collapsed", |b| {
        b.iter(|| black_box(viz::render_bars(black_box(&report), false)))
    });
    g.bench_function("render_bars_expanded", |b| {
        b.iter(|| black_box(viz::render_bars(black_box(&report), true)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
