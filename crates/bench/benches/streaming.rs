//! STREAMING bench: the streaming exploration engine vs. the
//! materialize-all pipeline on the fig2 purchases flow, plus the
//! incremental skyline against the batch algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::DirtProfile;
use fcp::PatternRegistry;
use poiesis::{pareto_skyline_sorted, Planner, PlannerConfig, SearchStrategyKind, SkylineSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn purchases_planner(config: PlannerConfig) -> Planner {
    let (flow, _) = datagen::fig2::purchases_flow();
    let catalog = datagen::fig2::purchases_catalog(100, &DirtProfile::demo(), 7);
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    Planner::new(flow, catalog, registry, config)
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_engine");
    g.sample_size(10);
    let streaming = purchases_planner(PlannerConfig {
        retain_dominated: false,
        ..PlannerConfig::default()
    });
    g.bench_function("plan_streaming_drop_dominated", |b| {
        b.iter(|| black_box(streaming.plan().unwrap()))
    });
    let retain = purchases_planner(PlannerConfig::default());
    g.bench_function("plan_streaming_retain_all", |b| {
        b.iter(|| black_box(retain.plan().unwrap()))
    });
    g.bench_function("plan_materialized", |b| {
        b.iter(|| black_box(retain.plan_materialized().unwrap()))
    });
    let beam = purchases_planner(PlannerConfig {
        strategy: SearchStrategyKind::Beam { width: 8 },
        retain_dominated: false,
        ..PlannerConfig::default()
    });
    g.bench_function("plan_beam8", |b| b.iter(|| black_box(beam.plan().unwrap())));
    g.finish();
}

fn bench_incremental_skyline(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental_skyline");
    for n in [1_000usize, 10_000] {
        let mut rng = SmallRng::seed_from_u64(17);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(50.0..200.0)).collect())
            .collect();
        g.bench_with_input(BenchmarkId::new("skyline_set_insert", n), &pts, |b, pts| {
            b.iter(|| {
                let mut s = SkylineSet::new();
                for (i, p) in pts.iter().enumerate() {
                    black_box(s.insert(i, p.clone()));
                }
                black_box(s.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("batch_sorted", n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_skyline_sorted(black_box(pts))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines, bench_incremental_skyline);
criterion_main!(benches);
