//! FIG3 bench: the planner pipeline stages and the estimator-vs-simulation
//! ablation (per-alternative scoring cost).

use bench::{planner_for, purchases_setup, SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use poiesis::eval::{evaluate_flow, EvalMode};
use poiesis::PlannerConfig;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let (flow, catalog) = purchases_setup(300);
    let stats = quality::source_stats(&catalog);

    let mut g = c.benchmark_group("fig3_pipeline");
    g.bench_function("estimate_one_alternative", |b| {
        b.iter(|| {
            black_box(evaluate_flow(&flow, &catalog, &stats, EvalMode::Estimate, SEED).unwrap())
        })
    });
    g.bench_function("simulate_one_alternative", |b| {
        b.iter(|| {
            black_box(evaluate_flow(&flow, &catalog, &stats, EvalMode::Simulate, SEED).unwrap())
        })
    });
    g.sample_size(10);
    g.bench_function("full_plan_cycle_estimate", |b| {
        b.iter_batched(
            || {
                planner_for(
                    flow.clone(),
                    catalog.clone(),
                    PlannerConfig {
                        max_alternatives: 300,
                        workers: 4,
                        ..PlannerConfig::default()
                    },
                )
            },
            |p| black_box(p.plan().unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
