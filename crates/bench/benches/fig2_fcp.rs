//! FIG2 bench: the two pattern applications of Fig. 2 — parallelising the
//! expensive derive and adding the savepoint — including candidate-point
//! discovery and the structural splice itself.

use bench::purchases_setup;
use criterion::{criterion_group, criterion_main, Criterion};
use fcp::builtin::{AddCheckpoint, ParallelizeTask};
use fcp::{Pattern, PatternContext};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let (flow, _catalog) = purchases_setup(100);

    let mut g = c.benchmark_group("fig2_fcp");
    g.bench_function("candidate_points_parallelize", |b| {
        let p = ParallelizeTask::default();
        b.iter(|| {
            let ctx = PatternContext::new(black_box(&flow)).unwrap();
            black_box(p.candidate_points(&ctx))
        })
    });
    g.bench_function("apply_parallelize", |b| {
        let p = ParallelizeTask::default();
        let ctx = PatternContext::new(&flow).unwrap();
        let pt = *p
            .candidate_points(&ctx)
            .iter()
            .max_by(|a, b| p.fitness(&ctx, **a).total_cmp(&p.fitness(&ctx, **b)))
            .unwrap();
        drop(ctx);
        b.iter(|| {
            let mut g2 = flow.fork("bench");
            black_box(p.apply(&mut g2, pt).unwrap())
        })
    });
    g.bench_function("apply_checkpoint", |b| {
        let p = AddCheckpoint;
        let ctx = PatternContext::new(&flow).unwrap();
        let pt = *p
            .candidate_points(&ctx)
            .iter()
            .max_by(|x, y| p.fitness(&ctx, **x).total_cmp(&p.fitness(&ctx, **y)))
            .unwrap();
        drop(ctx);
        b.iter(|| {
            let mut g2 = flow.fork("bench");
            black_box(p.apply(&mut g2, pt).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
