//! CONC bench: evaluation-pool scaling — the laptop substitute for the
//! paper's elastic EC2 evaluation nodes.

use bench::{purchases_setup, SEED};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etl_model::EtlFlow;
use poiesis::eval::{evaluate_pool, EvalMode};
use std::hint::black_box;

struct FlowBox(EtlFlow);
impl AsRef<EtlFlow> for FlowBox {
    fn as_ref(&self) -> &EtlFlow {
        &self.0
    }
}

fn bench_concurrency(c: &mut Criterion) {
    let (flow, catalog) = purchases_setup(500);
    let stats = quality::source_stats(&catalog);
    let flows: Vec<FlowBox> = (0..64)
        .map(|i| FlowBox(flow.fork(format!("alt{i}"))))
        .collect();

    let mut g = c.benchmark_group("concurrency");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("evaluate_pool_simulate", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    black_box(evaluate_pool(
                        black_box(&flows),
                        &catalog,
                        &stats,
                        EvalMode::Simulate,
                        workers,
                        SEED,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_concurrency);
criterion_main!(benches);
