//! COMPLEX bench: combination enumeration cost as the candidate list grows
//! (the §2.2 factorial-complexity claim, measured).

use bench::tpch_setup;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcp::{DeploymentPolicy, PatternRegistry};
use poiesis::explore::enumerate_combinations;
use poiesis::generate::generate_uncapped;
use std::hint::black_box;

fn bench_complexity(c: &mut Criterion) {
    let (flow, catalog) = tpch_setup(100);
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let all = generate_uncapped(&flow, &registry).unwrap();

    let mut g = c.benchmark_group("complexity");
    for take in [10usize, 20, 40] {
        let cands = &all[..take.min(all.len())];
        for depth in [1usize, 2, 3] {
            let policy = DeploymentPolicy::exhaustive(depth);
            g.bench_with_input(
                BenchmarkId::new(format!("enumerate_depth{depth}"), take),
                &(cands, policy),
                |b, (cands, policy)| {
                    b.iter(|| black_box(enumerate_combinations(black_box(cands), policy, 200_000)))
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_complexity);
criterion_main!(benches);
