//! FIG6 bench: full-palette candidate generation over both demo flows —
//! the cost of checking every FCP against every application point.

use bench::{tpcds_setup, tpch_setup};
use criterion::{criterion_group, criterion_main, Criterion};
use fcp::PatternRegistry;
use poiesis::generate::generate_uncapped;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_palette");
    for (name, (flow, catalog)) in [("tpch", tpch_setup(100)), ("tpcds", tpcds_setup(100))] {
        let registry = PatternRegistry::standard_for_catalog(&catalog);
        g.bench_function(format!("generate_all_candidates_{name}"), |b| {
            b.iter(|| black_box(generate_uncapped(black_box(&flow), &registry).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
