//! `bench` — the experiment harness.
//!
//! One binary per paper artefact (see DESIGN.md's experiment index) plus
//! Criterion micro-benches. Every binary prints the rows/series the paper
//! reports, regenerated from this reproduction; EXPERIMENTS.md records the
//! outputs next to the paper's claims.
//!
//! | binary | artefact |
//! |---|---|
//! | `fig1_measures` | Fig. 1 example quality measures table |
//! | `fig2_fcp` | Fig. 2 performance/reliability FCP generation |
//! | `fig3_pipeline` | Fig. 3 pipeline + estimator-vs-simulator ablation |
//! | `fig4_scatter` | Fig. 4 skyline scatter-plot |
//! | `fig5_relative` | Fig. 5 relative-change bars with drill-down |
//! | `fig6_palette` | Fig. 6 palette applicability/effect table |
//! | `demo_scale` | §4 "thousands of alternative flows" claim |
//! | `complexity_sweep` | §2.2 factorial-complexity claim |
//! | `concurrency_sweep` | §3 concurrent background evaluation claim |
//! | `baseline_manual` | §1 manual-redesign comparison |
//! | `streaming_sweep` | streaming engine vs. materialize-all, search strategies |
//! | `server_load` | HTTP service throughput + latency percentiles (`docs/API.md`) |
//! | `bench_scenarios` | scenario corpus × strategy sweep with golden-frontier gate (`docs/SCENARIOS.md`) |

#![forbid(unsafe_code)]

use datagen::{Catalog, DirtProfile};
use etl_model::EtlFlow;
use fcp::PatternRegistry;
use poiesis::{Planner, PlannerConfig};

/// Default deterministic seed shared by all experiments.
pub const SEED: u64 = 0x9E37;

/// The TPC-H demo workload at a given scale (base lineitem rows).
pub fn tpch_setup(scale: usize) -> (EtlFlow, Catalog) {
    let (flow, _) = datagen::tpch::tpch_flow();
    let catalog = datagen::tpch::tpch_catalog(scale, &DirtProfile::demo(), SEED);
    (flow, catalog)
}

/// The TPC-DS demo workload at a given scale (store_sales rows).
pub fn tpcds_setup(scale: usize) -> (EtlFlow, Catalog) {
    let (flow, _) = datagen::tpcds::tpcds_flow();
    let catalog = datagen::tpcds::tpcds_catalog(scale, &DirtProfile::demo(), SEED);
    (flow, catalog)
}

/// The Fig. 2 purchases sub-flow workload.
pub fn purchases_setup(scale: usize) -> (EtlFlow, Catalog) {
    let (flow, _) = datagen::fig2::purchases_flow();
    let catalog = datagen::fig2::purchases_catalog(scale, &DirtProfile::demo(), SEED);
    (flow, catalog)
}

/// Builds a planner with the standard palette over a workload.
pub fn planner_for(flow: EtlFlow, catalog: Catalog, config: PlannerConfig) -> Planner {
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    Planner::new(flow, catalog, registry, config)
}

/// Formats a float with sensible precision for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1_000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_produce_valid_workloads() {
        let (f, c) = tpch_setup(100);
        f.validate().unwrap();
        assert!(!c.is_empty());
        let (f, c) = tpcds_setup(100);
        f.validate().unwrap();
        assert!(!c.is_empty());
        let (f, _) = purchases_setup(100);
        f.validate().unwrap();
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(3.25159), "3.25");
        assert_eq!(fmt(0.12345), "0.1235");
    }
}
