//! DEMO-SCALE — verifies the §4 claim: demo flows with "tens of operators,
//! extracting data from multiple sources", whose automatic FCP addition "in
//! different positions and combinations … will result in thousands of
//! alternative ETL flows".

use bench::{planner_for, tpcds_setup, tpch_setup};
use fcp::DeploymentPolicy;
use poiesis::PlannerConfig;
use std::time::Instant;

fn main() {
    println!("DEMO-SCALE — alternatives generated from the two demo flows\n");
    let mut rows = Vec::new();
    for (name, (flow, catalog)) in [("tpch", tpch_setup(300)), ("tpcds", tpcds_setup(300))] {
        let ops = flow.op_count();
        let sources = flow.ops_of_kind("extract").len();
        let planner = planner_for(
            flow,
            catalog,
            PlannerConfig {
                policy: DeploymentPolicy {
                    top_k_points_per_pattern: usize::MAX,
                    min_fitness: 0.0,
                    max_patterns_per_flow: 2,
                    max_per_pattern: 2,
                    ..DeploymentPolicy::balanced()
                },
                max_alternatives: 100_000,
                workers: 8,
                ..PlannerConfig::default()
            },
        );
        let t0 = Instant::now();
        let out = planner.plan().expect("planning succeeds");
        let wall = t0.elapsed();
        rows.push(vec![
            name.to_string(),
            ops.to_string(),
            sources.to_string(),
            out.candidates.len().to_string(),
            format!("{:.0}", out.stats.theoretical),
            out.alternatives.len().to_string(),
            out.skyline.len().to_string(),
            format!("{:.2}", wall.as_secs_f64()),
        ]);
        assert!(ops >= 20, "{name} must have tens of operators");
        assert!(sources >= 3, "{name} must extract from multiple sources");
        assert!(
            out.alternatives.len() >= 1_000,
            "{name} must yield thousands of alternatives (got {})",
            out.alternatives.len()
        );
    }
    print!(
        "{}",
        viz::render_table(
            &[
                "flow",
                "#ops",
                "#sources",
                "candidates",
                "theoretical space",
                "alternatives",
                "skyline",
                "wall (s)"
            ],
            &rows
        )
    );
    println!("\n(\"thousands of alternative ETL flows\" — §4 claim reproduced)");
}
