//! FIG1 — regenerates the paper's Fig. 1: "Example quality measures for ETL
//! processes", with the measured values for the TPC-H demo flow filled in.

use bench::{fmt, tpch_setup, SEED};
use quality::{Characteristic, MeasureVector};
use simulator::{simulate, SimConfig};

fn main() {
    let (flow, catalog) = tpch_setup(2_000);
    let trace = simulate(
        &flow,
        &catalog,
        &SimConfig {
            seed: SEED,
            inject_failures: false,
        },
    )
    .expect("demo flow simulates");
    let v: MeasureVector = quality::evaluate(&flow, &trace);

    println!("FIG1 — example quality measures (TPC-H demo flow, scale 2000)\n");
    let rows: Vec<Vec<String>> = quality::MeasureId::ALL
        .iter()
        .filter_map(|&id| {
            let val = v.get(id)?;
            Some(vec![
                id.characteristic().name().to_string(),
                id.name().to_string(),
                fmt(val),
                if id.higher_is_better() { "↑" } else { "↓" }.to_string(),
            ])
        })
        .collect();
    print!(
        "{}",
        viz::render_table(&["characteristic", "measure", "value", "better"], &rows)
    );

    // the two paper-exact rows, called out explicitly
    println!("\nPaper Fig. 1 rows:");
    println!(
        "  performance: process cycle time             = {} ms",
        fmt(v.get(quality::MeasureId::CycleTimeMs).unwrap())
    );
    println!(
        "  performance: average latency per tuple      = {} ms",
        fmt(v.get(quality::MeasureId::AvgLatencyMs).unwrap())
    );
    println!(
        "  data quality: request time - last update    = {} s",
        fmt(v.get(quality::MeasureId::FreshnessAgeS).unwrap())
    );
    println!(
        "  data quality: 1/(1 - age * update frequency) = {}",
        fmt(v.get(quality::MeasureId::FreshnessScore).unwrap())
    );
    println!(
        "  manageability: longest path / coupling / #merge = {} / {} / {}",
        fmt(v.get(quality::MeasureId::LongestPath).unwrap()),
        fmt(v.get(quality::MeasureId::Coupling).unwrap()),
        fmt(v.get(quality::MeasureId::MergeCount).unwrap()),
    );

    // sanity: every characteristic is represented
    for c in Characteristic::ALL {
        assert!(
            v.of_characteristic(c).count() > 0,
            "characteristic {c} has no measures"
        );
    }
}
