//! FIG6 — regenerates the paper's Fig. 6: the palette of available FCPs with
//! their related quality attribute, extended with the measured effect of each
//! pattern's best placement on both demo flows.

use bench::{purchases_setup, tpcds_setup, tpch_setup, SEED};
use fcp::{PatternContext, PatternRegistry};
use quality::{Characteristic, MeasureId};
use simulator::{simulate, SimConfig};

/// The headline measure a pattern is judged by: the specific metric its
/// defect class targets, falling back to its characteristic's flagship.
fn headline(pattern: &str, c: Characteristic) -> MeasureId {
    match pattern {
        "RemoveDuplicateEntries" => MeasureId::Uniqueness,
        "CrosscheckSources" => MeasureId::Accuracy,
        "FilterNullValues" => MeasureId::Completeness,
        "IncreaseRecurrence" => MeasureId::FreshnessScore,
        _ => match c {
            Characteristic::Performance => MeasureId::CycleTimeMs,
            Characteristic::DataQuality => MeasureId::Completeness,
            Characteristic::Reliability => MeasureId::Recoverability,
            Characteristic::Manageability => MeasureId::LongestPath,
            Characteristic::Cost => MeasureId::MonetaryCost,
            Characteristic::Security => MeasureId::SecurityScore,
        },
    }
}

fn main() {
    println!("FIG6 — available FCPs and their related quality attribute\n");
    let mut rows = Vec::new();
    for (workload, (mut flow, catalog)) in [
        ("tpch", tpch_setup(3_000)),
        ("tpcds", tpcds_setup(3_000)),
        ("purchases", purchases_setup(3_000)),
    ] {
        // give reliability something to protect
        for n in flow.ops_of_kind("derive") {
            flow.op_mut(n).unwrap().cost.failure_rate = 0.05;
        }
        let registry = PatternRegistry::standard_for_catalog(&catalog);
        let cfg = SimConfig {
            seed: SEED,
            inject_failures: false,
        };
        let base_trace = simulate(&flow, &catalog, &cfg).unwrap();
        let base = quality::evaluate(&flow, &base_trace);

        for pattern in registry.iter() {
            let ctx = PatternContext::new(&flow).unwrap();
            let points = pattern.candidate_points(&ctx);
            let best = points
                .iter()
                .max_by(|a, b| {
                    pattern
                        .fitness(&ctx, **a)
                        .total_cmp(&pattern.fitness(&ctx, **b))
                })
                .copied();
            drop(ctx);
            let (applied, delta) = match best {
                None => ("no valid point".to_string(), "-".to_string()),
                Some(p) => {
                    let mut g = flow.fork("probe");
                    match pattern.apply(&mut g, p) {
                        Err(e) => (format!("apply failed: {e}"), "-".to_string()),
                        Ok(_) => {
                            let v = quality::evaluate(&g, &simulate(&g, &catalog, &cfg).unwrap());
                            let m = headline(pattern.name(), pattern.improves());
                            let d = match (base.get(m), v.get(m)) {
                                (Some(b), Some(x)) => {
                                    let pct = if m.higher_is_better() {
                                        (x - b) / b.abs().max(1e-9) * 100.0
                                    } else {
                                        (b - x) / b.abs().max(1e-9) * 100.0
                                    };
                                    format!("{pct:+.1}% {}", m.name())
                                }
                                _ => "-".to_string(),
                            };
                            (format!("{} pts", points.len()), d)
                        }
                    }
                }
            };
            rows.push(vec![
                workload.to_string(),
                pattern.name().to_string(),
                pattern.improves().name().to_string(),
                applied,
                delta,
            ]);
        }
    }
    print!(
        "{}",
        viz::render_table(
            &[
                "workload",
                "FCP",
                "related quality attribute",
                "valid points",
                "best-placement effect"
            ],
            &rows
        )
    );

    // the paper's five palette rows must all be applicable on both workloads
    for name in [
        "RemoveDuplicateEntries",
        "FilterNullValues",
        "CrosscheckSources",
        "ParallelizeTask",
        "AddCheckpoint",
    ] {
        for workload in ["tpch", "tpcds", "purchases"] {
            let row = rows
                .iter()
                .find(|r| r[0] == workload && r[1] == name)
                .unwrap();
            assert!(
                row[3].ends_with("pts"),
                "{name} found no valid point on {workload}: {row:?}"
            );
        }
    }
}
