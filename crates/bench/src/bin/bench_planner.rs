//! BENCH_PLANNER — per-combination cost of the planning cycle, with and
//! without incremental (copy-on-write + delta) evaluation and the
//! bound-based dominance pre-pruner.
//!
//! Runs a workload × strategy grid three times per cell — `delta_eval` on
//! and off (both with the default bound pruner), plus delta with
//! `bound_prune` off — asserts all three skylines are identical, and
//! writes a machine-readable `BENCH_planner.json` with combinations/second,
//! µs per combination, frontier size, the delta-vs-scratch speedup, and
//! the pruner's skip count / rate / speedup per cell. The pruner only
//! activates on non-steering cells (exhaustive, estimate mode, no
//! retention), so beam/greedy rows report zero pruned by design.
//!
//! ```text
//! bench_planner [--out BENCH_planner.json] [--tiny] [--workers 1]
//!               [--budget 100000] [--gate committed.json]
//! ```
//!
//! * The headline `demo` workload is the 100 000-combination depth-3
//!   estimate sweep over the TPC-DS-derived flow — the incremental
//!   evaluator's acceptance benchmark.
//! * `--workers` defaults to 1 so µs/combo measures per-combination cost,
//!   not scheduling; pass the core count to measure wall-clock instead.
//! * `--tiny` shrinks catalogs and budgets to CI scale (seconds, not
//!   minutes); the emitted JSON records which scale produced it.
//! * `--gate FILE` compares this run against a committed baseline produced
//!   at the *same* scale and exits non-zero when any delta-mode cell lost
//!   more than 20 % combinations/second — the CI perf-regression gate.

use datagen::DirtProfile;
use fcp::DeploymentPolicy;
use poiesis::{Planner, PlannerConfig, PlannerOutcome, SearchStrategyKind};
use serde::json::Value;
use std::time::Instant;

/// One workload of the grid: a flow, its catalog, and the policy/budget
/// sizing its combination space.
struct Workload {
    name: &'static str,
    flow: etl_model::EtlFlow,
    catalog: datagen::Catalog,
    depth: usize,
    budget: usize,
}

fn workloads(tiny: bool, budget: usize) -> Vec<Workload> {
    let dirt = DirtProfile::demo();
    let scale = if tiny { 40 } else { 120 };
    let side_budget = if tiny { 2_000 } else { 5_000 };
    let (purchases, _) = datagen::fig2::purchases_flow();
    let (tpch, _) = datagen::tpch::tpch_flow();
    let (tpcds, _) = datagen::tpcds::tpcds_flow();
    vec![
        Workload {
            name: "demo",
            flow: tpcds.clone(),
            catalog: datagen::tpcds::tpcds_catalog(scale, &dirt, 5),
            depth: 3,
            budget: if tiny { 5_000 } else { budget },
        },
        Workload {
            name: "purchases",
            flow: purchases,
            catalog: datagen::fig2::purchases_catalog(scale, &dirt, 5),
            depth: 3,
            budget: if tiny { 5_000 } else { budget },
        },
        Workload {
            name: "tpch",
            flow: tpch,
            catalog: datagen::tpch::tpch_catalog(scale, &dirt, 5),
            depth: 2,
            budget: side_budget,
        },
        Workload {
            name: "tpcds",
            flow: tpcds,
            catalog: datagen::tpcds::tpcds_catalog(scale, &dirt, 5),
            depth: 2,
            budget: side_budget,
        },
    ]
}

/// One timed planning cycle; returns the outcome and wall seconds.
fn run_once(
    w: &Workload,
    strategy: SearchStrategyKind,
    workers: usize,
    delta_eval: bool,
    bound_prune: bool,
) -> (PlannerOutcome, f64) {
    let policy = DeploymentPolicy {
        top_k_points_per_pattern: usize::MAX,
        min_fitness: 0.0,
        ..DeploymentPolicy::exhaustive(w.depth)
    };
    let config = PlannerConfig {
        policy,
        strategy,
        workers,
        max_alternatives: w.budget,
        retain_dominated: false,
        delta_eval,
        bound_prune,
        ..PlannerConfig::default()
    };
    let registry = fcp::PatternRegistry::standard_for_catalog(&w.catalog);
    let planner = Planner::new(w.flow.clone(), w.catalog.clone(), registry, config);
    let t = Instant::now();
    let out = planner.plan().expect("planning cycle");
    (out, t.elapsed().as_secs_f64())
}

struct Cell {
    workload: &'static str,
    strategy: String,
    enumerated: usize,
    frontier: usize,
    delta_secs: f64,
    scratch_secs: f64,
    noprune_secs: f64,
    bound_pruned: usize,
    skyline_equal: bool,
}

impl Cell {
    fn combos_per_sec(&self) -> f64 {
        self.enumerated as f64 / self.delta_secs.max(1e-9)
    }
    fn us_per_combo(&self) -> f64 {
        self.delta_secs * 1e6 / self.enumerated.max(1) as f64
    }
    fn scratch_us_per_combo(&self) -> f64 {
        self.scratch_secs * 1e6 / self.enumerated.max(1) as f64
    }
    fn speedup(&self) -> f64 {
        self.scratch_secs / self.delta_secs.max(1e-9)
    }
    fn prune_rate(&self) -> f64 {
        self.bound_pruned as f64 / self.enumerated.max(1) as f64
    }
    fn prune_speedup(&self) -> f64 {
        self.noprune_secs / self.delta_secs.max(1e-9)
    }

    fn to_json(&self) -> Value {
        let num = |x: f64| Value::number((x * 1000.0).round() / 1000.0).expect("finite");
        Value::object([
            ("workload".into(), Value::String(self.workload.into())),
            ("strategy".into(), Value::String(self.strategy.clone())),
            ("enumerated".into(), num(self.enumerated as f64)),
            ("frontier".into(), num(self.frontier as f64)),
            ("delta_secs".into(), num(self.delta_secs)),
            ("scratch_secs".into(), num(self.scratch_secs)),
            ("combos_per_sec".into(), num(self.combos_per_sec())),
            ("us_per_combo".into(), num(self.us_per_combo())),
            (
                "scratch_us_per_combo".into(),
                num(self.scratch_us_per_combo()),
            ),
            ("speedup".into(), num(self.speedup())),
            ("noprune_secs".into(), num(self.noprune_secs)),
            ("bound_pruned".into(), num(self.bound_pruned as f64)),
            ("prune_rate".into(), num(self.prune_rate())),
            ("prune_speedup".into(), num(self.prune_speedup())),
            ("skyline_equal".into(), Value::Bool(self.skyline_equal)),
        ])
    }
}

fn opt<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let workers: usize = opt(&args, "--workers", 1);
    let budget: usize = opt(&args, "--budget", 100_000);
    let out_path: String = opt(&args, "--out", "BENCH_planner.json".to_string());
    let gate: Option<String> = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let strategies = [
        SearchStrategyKind::Exhaustive,
        SearchStrategyKind::Beam { width: 32 },
        SearchStrategyKind::GreedyHillClimb,
    ];

    println!(
        "BENCH_PLANNER — delta vs scratch, {} scale, {workers} workers\n",
        if tiny { "tiny (CI)" } else { "full" }
    );

    let mut cells: Vec<Cell> = Vec::new();
    for w in workloads(tiny, budget) {
        for strategy in strategies {
            let (fast, delta_secs) = run_once(&w, strategy, workers, true, true);
            let (slow, scratch_secs) = run_once(&w, strategy, workers, false, true);
            let (unpruned, noprune_secs) = run_once(&w, strategy, workers, true, false);
            let skyline_equal = fast.skyline_names() == slow.skyline_names()
                && fast.skyline_names() == unpruned.skyline_names();
            assert!(
                skyline_equal,
                "{}/{strategy}: delta/scratch/no-prune skylines diverged",
                w.name
            );
            let cell = Cell {
                workload: w.name,
                strategy: strategy.to_string(),
                enumerated: fast.stats.enumerated,
                frontier: fast.skyline.len(),
                delta_secs,
                scratch_secs,
                noprune_secs,
                bound_pruned: fast.bound_pruned,
                skyline_equal,
            };
            println!(
                "{:<10} {:<22} {:>8} combos  {:>10.0} combos/s  {:>7.1} µs/combo (scratch {:>7.1})  speedup {:>5.2}x  pruned {:>6} ({:>4.1}%, {:>4.2}x)  frontier {}",
                cell.workload,
                cell.strategy,
                cell.enumerated,
                cell.combos_per_sec(),
                cell.us_per_combo(),
                cell.scratch_us_per_combo(),
                cell.speedup(),
                cell.bound_pruned,
                cell.prune_rate() * 100.0,
                cell.prune_speedup(),
                cell.frontier,
            );
            cells.push(cell);
        }
    }

    let mean_speedup = cells.iter().map(Cell::speedup).sum::<f64>() / cells.len().max(1) as f64;
    let demo_exhaustive = cells
        .iter()
        .find(|c| c.workload == "demo" && c.strategy == "exhaustive");
    let demo_exhaustive_speedup = demo_exhaustive.map(Cell::speedup).unwrap_or(0.0);
    let demo_prune_rate = demo_exhaustive.map(Cell::prune_rate).unwrap_or(0.0);
    println!(
        "\nmean speedup {mean_speedup:.2}x; demo/exhaustive speedup {demo_exhaustive_speedup:.2}x, prune rate {:.1}%",
        demo_prune_rate * 100.0
    );

    let num = |x: f64| Value::number((x * 1000.0).round() / 1000.0).expect("finite");
    let doc = Value::object([
        ("schema".into(), num(1.0)),
        ("tiny".into(), Value::Bool(tiny)),
        ("workers".into(), num(workers as f64)),
        (
            "entries".into(),
            Value::Array(cells.iter().map(Cell::to_json).collect()),
        ),
        ("mean_speedup".into(), num(mean_speedup)),
        ("demo_prune_rate".into(), num(demo_prune_rate)),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench json");
    println!("wrote {out_path}");

    if let Some(gate_path) = gate {
        let committed = std::fs::read_to_string(&gate_path)
            .unwrap_or_else(|e| panic!("read gate baseline {gate_path}: {e}"));
        let committed = Value::parse(&committed).expect("parse gate baseline");
        let base_tiny = committed
            .get("tiny")
            .and_then(|v| v.as_bool("tiny"))
            .unwrap_or(false);
        assert_eq!(
            base_tiny, tiny,
            "gate baseline was produced at a different scale; compare like with like"
        );
        let entries = committed
            .get("entries")
            .and_then(|v| v.as_array("entries").map(<[Value]>::to_vec))
            .expect("gate baseline entries");
        let mut failures = Vec::new();
        for cell in &cells {
            let Some(base) = entries.iter().find(|e| {
                e.get("workload")
                    .and_then(|v| v.as_str("w").map(str::to_owned))
                    .ok()
                    .as_deref()
                    == Some(cell.workload)
                    && e.get("strategy")
                        .and_then(|v| v.as_str("s").map(str::to_owned))
                        .ok()
                        == Some(cell.strategy.clone())
            }) else {
                continue;
            };
            let base_cps = base
                .get("combos_per_sec")
                .and_then(|v| v.as_number("combos_per_sec"))
                .unwrap_or(0.0);
            let now_cps = cell.combos_per_sec();
            if now_cps < base_cps * 0.8 {
                failures.push(format!(
                    "{}/{}: {now_cps:.0} combos/s < 80% of baseline {base_cps:.0}",
                    cell.workload, cell.strategy
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("PERF REGRESSION (>20% combos/s loss vs {gate_path}):");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("gate vs {gate_path}: OK (no cell lost >20% combos/s)");
    }
}
