//! STREAMING — measures the streaming exploration engine against the old
//! materialize-all pipeline, and the pluggable search strategies against
//! each other.
//!
//! ```text
//! streaming_sweep [--budgets 5000,20000,100000] [--chain 24] [--rows 100]
//!                 [--depth 3] [--workers 4]
//! ```
//!
//! Three sections:
//! 1. fig2 purchases equivalence: the streaming exhaustive engine must
//!    produce the *identical* skyline (same alternative names) as the
//!    materialize-all path;
//! 2. budget sweep on a chain flow whose depth-3 space exceeds the largest
//!    budget: streaming with `retain_dominated = false` (memory
//!    O(frontier)) vs. eager materialization (memory O(space));
//! 3. strategy comparison at the largest budget: exhaustive vs. beam vs.
//!    greedy hill-climb.

use datagen::DirtProfile;
use etl_model::expr::Expr;
use etl_model::{Attribute, DataType, EtlFlow, Operation, Schema};
use fcp::DeploymentPolicy;
use poiesis::{Poiesis, SearchStrategyKind, Session};
use std::time::Instant;

fn opt<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Linear flow with `n` middle operations — its candidate count (and so
/// the combination space) grows with `n`, letting the sweep outrun any
/// budget (same construction as `complexity_sweep`).
fn chain_flow(n: usize, rows: usize) -> (EtlFlow, datagen::Catalog) {
    let schema = Schema::new(vec![
        Attribute::required("id", DataType::Int),
        Attribute::new("v", DataType::Float),
        Attribute::new("w", DataType::Float),
    ]);
    let mut catalog = datagen::Catalog::new();
    catalog.add_generated(
        &datagen::TableSpec::new("src", schema.clone(), rows, "id"),
        &DirtProfile::demo(),
        1,
    );
    let mut f = EtlFlow::new(format!("chain_{n}"));
    let mut prev = f.add_op(Operation::extract("src", schema));
    for i in 0..n {
        let op = if i % 2 == 0 {
            Operation::filter(
                format!("filter_{i}"),
                Expr::col("v").gt(Expr::lit_f(i as f64)),
            )
        } else {
            Operation::derive(
                format!("derive_{i}"),
                vec![(format!("d{i}"), Expr::col("v").mul(Expr::lit_f(1.01)))],
            )
            .with_cost(0.02)
        };
        let id = f.add_op(op);
        f.connect(prev, id).unwrap();
        prev = id;
    }
    let l = f.add_op(Operation::load("dw"));
    f.connect(prev, l).unwrap();
    (f, catalog)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budgets: Vec<usize> = args
        .iter()
        .position(|a| a == "--budgets")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|b| b.parse().ok()).collect())
        .unwrap_or_else(|| vec![5_000, 20_000, 100_000]);
    let chain: usize = opt(&args, "--chain", 24);
    let rows: usize = opt(&args, "--rows", 100);
    let depth: usize = opt(&args, "--depth", 3);
    let workers: usize = opt(&args, "--workers", 4);

    println!("STREAMING — streaming engine vs. materialize-all\n");

    // ---- 1. fig2 equivalence -------------------------------------------
    let (flow, _) = datagen::fig2::purchases_flow();
    let catalog = datagen::fig2::purchases_catalog(150, &DirtProfile::demo(), 5);
    let session = Poiesis::session()
        .flow(flow)
        .catalog(catalog)
        .build()
        .expect("fig2 session");
    let streaming = session.explore().expect("streaming plan");
    let eager = session
        .planner()
        .plan_materialized()
        .expect("materialized plan");
    let equal = streaming.skyline_names() == eager.skyline_names();
    println!(
        "fig2 purchases: streaming skyline == materialized skyline: {} ({} designs)",
        if equal { "YES" } else { "NO — BUG" },
        streaming.skyline.len()
    );
    assert!(equal, "streaming and materialized skylines diverged");

    // ---- 2. budget sweep ------------------------------------------------
    let (flow, catalog) = chain_flow(chain, rows);
    let policy = DeploymentPolicy {
        top_k_points_per_pattern: usize::MAX,
        min_fitness: 0.0,
        ..DeploymentPolicy::exhaustive(depth)
    };
    // one facade chain per variant; flow/catalog are cloned into each
    let chain_session = |budget: usize, retain: bool| -> Session {
        Poiesis::session()
            .flow(flow.clone())
            .catalog(catalog.clone())
            .policy(policy.clone())
            .budget(budget)
            .retain_dominated(retain)
            .workers(workers)
            .build()
            .expect("chain session")
    };
    println!(
        "\nchain flow: {} ops, depth ≤ {depth}, workers {workers}",
        flow.op_count()
    );

    let mut table = Vec::new();
    for &budget in &budgets {
        let s = chain_session(budget, false);
        let t = Instant::now();
        let lean = s.explore().expect("streaming plan");
        let t_streaming = t.elapsed();

        let s = chain_session(budget, true);
        let t = Instant::now();
        let full = s.planner().plan_materialized().expect("materialized plan");
        let t_eager = t.elapsed();

        assert_eq!(
            lean.skyline_names(),
            full.skyline_names(),
            "skylines diverged at budget {budget}"
        );
        table.push(vec![
            budget.to_string(),
            full.stats.enumerated.to_string(),
            format!("{}", full.alternatives.len()),
            format!("{}", lean.alternatives.len()),
            lean.skyline.len().to_string(),
            format!("{:.2}", t_eager.as_secs_f64()),
            format!("{:.2}", t_streaming.as_secs_f64()),
            format!(
                "{:.1}x",
                full.alternatives.len().max(1) as f64 / lean.alternatives.len().max(1) as f64
            ),
        ]);
    }
    print!(
        "{}",
        viz::render_table(
            &[
                "budget",
                "evaluated",
                "flows held (eager)",
                "flows held (streaming)",
                "skyline",
                "eager s",
                "streaming s",
                "memory ratio",
            ],
            &table
        )
    );
    println!(
        "\nstreaming holds only the live frontier (O(frontier)); the eager\n\
         path holds every evaluated flow (O(space)). Skylines are identical."
    );

    // ---- 3. strategy comparison ----------------------------------------
    let budget = budgets.iter().copied().max().unwrap_or(5_000);
    let mut table = Vec::new();
    for strategy in [
        SearchStrategyKind::Exhaustive,
        SearchStrategyKind::Beam { width: 32 },
        SearchStrategyKind::GreedyHillClimb,
    ] {
        let s = chain_session(budget, false);
        let t = Instant::now();
        let out = s
            .explore_with(strategy.instantiate().as_ref())
            .expect("plan");
        let best = out
            .skyline_alternative(0)
            .map(|a| s.objective().scalarize(&a.scores))
            .unwrap_or(0.0);
        table.push(vec![
            strategy.to_string(),
            out.stats.enumerated.to_string(),
            out.skyline.len().to_string(),
            format!("{best:.1}"),
            format!("{:.2}", t.elapsed().as_secs_f64()),
        ]);
    }
    print!(
        "{}",
        viz::render_table(
            &[
                "strategy",
                "evaluated",
                "skyline",
                "best score-sum",
                "time s"
            ],
            &table
        )
    );
    println!(
        "\nbeam and greedy trade frontier completeness for orders of\n\
         magnitude fewer evaluations — same engine, different walk."
    );
}
