//! COMPLEX — verifies the §2.2 claim: "the complexity of this analysis is
//! factorial to the size of the graph". Sweeps synthetic chain flows of
//! growing size and reports how candidates and the combination space grow.

use datagen::DirtProfile;
use etl_model::expr::Expr;
use etl_model::{Attribute, DataType, EtlFlow, Operation, Schema};
use fcp::{DeploymentPolicy, PatternRegistry};
use poiesis::explore::{enumerate_combinations, theoretical_space};
use poiesis::generate::generate_uncapped;

/// Builds a linear flow with `n` middle operations (filters/derives
/// alternating) between one extract and one load.
fn chain_flow(n: usize) -> (EtlFlow, datagen::Catalog) {
    let schema = Schema::new(vec![
        Attribute::required("id", DataType::Int),
        Attribute::new("v", DataType::Float),
        Attribute::new("w", DataType::Float),
    ]);
    let mut catalog = datagen::Catalog::new();
    catalog.add_generated(
        &datagen::TableSpec::new("src", schema.clone(), 100, "id"),
        &DirtProfile::demo(),
        1,
    );
    let mut f = EtlFlow::new(format!("chain_{n}"));
    let mut prev = f.add_op(Operation::extract("src", schema));
    for i in 0..n {
        let op = if i % 2 == 0 {
            Operation::filter(
                format!("filter_{i}"),
                Expr::col("v").gt(Expr::lit_f(i as f64)),
            )
        } else {
            Operation::derive(
                format!("derive_{i}"),
                vec![(format!("d{i}"), Expr::col("v").mul(Expr::lit_f(1.01)))],
            )
            .with_cost(0.02)
        };
        let id = f.add_op(op);
        f.connect(prev, id).unwrap();
        prev = id;
    }
    let l = f.add_op(Operation::load("dw"));
    f.connect(prev, l).unwrap();
    (f, catalog)
}

fn main() {
    println!("COMPLEX — growth of the alternative space with flow size\n");
    let mut rows = Vec::new();
    let mut prev_depth2 = 0usize;
    for n in [4usize, 8, 12, 16, 24, 32] {
        let (flow, catalog) = chain_flow(n);
        flow.validate().unwrap();
        let registry = PatternRegistry::standard_for_catalog(&catalog);
        let candidates = generate_uncapped(&flow, &registry).unwrap();
        let c = candidates.len();
        let policy2 = DeploymentPolicy::exhaustive(2);
        let (combos2, _) = enumerate_combinations(&candidates, &policy2, usize::MAX);
        rows.push(vec![
            (n + 2).to_string(),
            c.to_string(),
            combos2.len().to_string(),
            format!("{:.2e}", theoretical_space(c, 3)),
            format!("{:.2e}", theoretical_space(c, c.min(20))),
        ]);
        assert!(
            combos2.len() > prev_depth2,
            "space must grow monotonically with flow size"
        );
        prev_depth2 = combos2.len();
    }
    print!(
        "{}",
        viz::render_table(
            &[
                "flow size (ops)",
                "valid candidates",
                "alternatives (depth ≤2)",
                "space (depth ≤3)",
                "space (depth ≤20)"
            ],
            &rows
        )
    );
    println!(
        "\nshape: candidates grow linearly with flow size; the combination\n\
         space grows super-polynomially in depth — the \"factorial\" blow-up\n\
         of §2.2 that makes manual exploration infeasible."
    );
}
