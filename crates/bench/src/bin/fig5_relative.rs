//! FIG5 — regenerates the paper's Fig. 5: relative change of measures for a
//! selected alternative flow against the initial flow as baseline, including
//! the click-to-expand drill-down from composite characteristics to their
//! detailed metrics.

use bench::{planner_for, tpch_setup};
use poiesis::PlannerConfig;

fn main() {
    let (flow, catalog) = tpch_setup(500);
    let planner = planner_for(flow, catalog, PlannerConfig::default());
    let out = planner.plan().expect("planning succeeds");
    let alt = out
        .skyline_alternatives()
        .next()
        .expect("non-empty frontier");
    let report = out.report(alt);

    println!("FIG5 — relative change of measures (selected frontier design)\n");
    println!("selected design: {}", alt.name);
    println!("applied patterns: {}\n", alt.applied.join(" + "));

    // collapsed view (the initial bar graph)
    print!("{}", viz::render_bars(&report, false));
    println!("\n--- after clicking each bar (drill-down to detailed metrics) ---\n");
    // expanded view (the paper's expansion interaction)
    print!("{}", viz::render_bars(&report, true));

    // shape checks: report covers every populated characteristic, and the
    // selection improves at least one of them
    assert!(alt.scores.iter().any(|&s| s > 100.0));
    assert!(report.characteristics.iter().any(|c| !c.details.is_empty()));
}
