//! SERVER_LOAD — a load generator for `poiesis_server`, reporting
//! throughput and latency percentiles.
//!
//! ```text
//! server_load [--addr host:port] [--clients 8] [--requests 200]
//!             [--mode health|cycle] [--rows 80] [--budget 200]
//!             [--queue N] [--state-dir dir]
//! ```
//!
//! With no `--addr` the generator self-hosts a server in-process (demo
//! catalog, `--rows` rows) so a single command produces numbers;
//! `--queue` bounds its accept queue (default 256) and `--state-dir`
//! turns on snapshot persistence — point both at the same workload to
//! measure what durability costs (see the capacity-planning section of
//! `docs/OPERATIONS.md`). Two workloads:
//!
//! * `health` — `GET /healthz` per request: measures the raw HTTP layer
//!   (parse, route, respond) without planning work;
//! * `cycle`  — one create → explore → select → close lifecycle per
//!   request: measures the full planning service under concurrency.
//!
//! Each client thread runs `--requests` requests on one keep-alive
//! connection; per-request wall times are merged and reported as
//! req/s plus p50/p90/p99/max latency, followed by a `/metrics` scrape
//! summary (requests served, connections shed, snapshot writes, and
//! combinations pruned by the static pre-screen).

use poiesis::PlanRequest;
use poiesis_server::{Client, PlanningService, Server, ServerConfig, SessionTemplate, StateStore};
use std::time::{Duration, Instant};

/// Strict flag lookup: a present-but-unparseable value is an error, not
/// a silent fallback to the default (which would report numbers for a
/// different workload than the one asked for).
fn opt<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(v) => v,
            None => {
                eprintln!("error: {name} expects a valid value");
                std::process::exit(1);
            }
        },
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let known = [
        "--addr",
        "--clients",
        "--requests",
        "--mode",
        "--rows",
        "--budget",
        "--queue",
        "--state-dir",
    ];
    let mut i = 0;
    while i < args.len() {
        if !known.contains(&args[i].as_str()) {
            eprintln!("error: unknown flag `{}`", args[i]);
            eprintln!(
                "usage: server_load [--addr host:port] [--clients N] [--requests N] \
                 [--mode health|cycle] [--rows N] [--budget N] [--queue N] [--state-dir dir]"
            );
            std::process::exit(1);
        }
        i += 2;
    }
    let clients: usize = opt(&args, "--clients", 8);
    let requests: usize = opt(&args, "--requests", 200);
    let mode: String = opt(&args, "--mode", "health".to_string());
    let rows: usize = opt(&args, "--rows", 80);
    let budget: usize = opt(&args, "--budget", 200);
    if mode != "health" && mode != "cycle" {
        eprintln!("error: --mode must be health or cycle");
        std::process::exit(1);
    }

    // self-host unless pointed at a running server
    let queue: usize = opt(&args, "--queue", ServerConfig::default().queue);
    let state_dir = args
        .iter()
        .position(|a| a == "--state-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (addr, local) = match args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
    {
        Some(addr) => (addr.clone(), None),
        None => {
            let mut service = PlanningService::new(SessionTemplate::demo(rows));
            if let Some(dir) = &state_dir {
                let store = StateStore::open(dir).expect("open state dir");
                service = service.with_store(store).expect("load state");
            }
            let config = ServerConfig {
                queue,
                ..ServerConfig::default()
            };
            let server = Server::bind("127.0.0.1:0", service, config).expect("bind");
            let (addr, handle, join) = server.spawn().expect("spawn");
            (addr.to_string(), Some((handle, join)))
        }
    };
    println!(
        "server_load: {clients} clients x {requests} {mode} requests against {addr}{}",
        if local.is_some() {
            " (self-hosted)"
        } else {
            ""
        }
    );

    let plan = PlanRequest {
        budget,
        ..PlanRequest::default()
    };
    let wall = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.clone();
            let mode = mode.clone();
            let plan = plan.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr.as_str()).expect("connect");
                let mut latencies = Vec::with_capacity(requests);
                let mut failures = 0usize;
                for _ in 0..requests {
                    let start = Instant::now();
                    let ok = match mode.as_str() {
                        "health" => client.healthz().is_ok(),
                        _ => run_cycle(&mut client, &plan),
                    };
                    latencies.push(start.elapsed());
                    if !ok {
                        failures += 1;
                    }
                }
                (latencies, failures, client.retries())
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(clients * requests);
    let mut failures = 0usize;
    let mut retries = 0u64;
    for worker in workers {
        let (l, f, r) = worker.join().expect("client thread");
        latencies.extend(l);
        failures += f;
        retries += r;
    }
    let elapsed = wall.elapsed();
    latencies.sort_unstable();

    let total = latencies.len();
    let throughput = total as f64 / elapsed.as_secs_f64();
    println!(
        "  {total} requests in {:.2}s  ->  {throughput:.0} req/s  ({failures} failures)",
        elapsed.as_secs_f64()
    );
    for (label, p) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        println!(
            "  {label}  {:>9.3} ms",
            percentile(&latencies, p).as_secs_f64() * 1e3
        );
    }
    println!(
        "  max  {:>9.3} ms",
        latencies.last().copied().unwrap_or_default().as_secs_f64() * 1e3
    );
    // client-side counterpart of the server's shed counter: how often
    // the typed client honoured a 503 + Retry-After and tried again
    println!("  poiesis_client_retries_total {retries}");

    // scrape the server's own accounting: served vs shed is the load
    // number that matters once backpressure kicks in
    if let Ok(mut client) = Client::connect(addr.as_str()) {
        let scrape = |c: &mut Client, name: &str| c.metric_value(name).unwrap_or(-1.0);
        println!(
            "  /metrics: connections {:.0}, shed {:.0}, snapshot writes {:.0} ({} errors)",
            scrape(&mut client, "poiesis_http_connections_total"),
            scrape(&mut client, "poiesis_http_shed_total"),
            scrape(&mut client, "poiesis_snapshot_writes_total"),
            scrape(&mut client, "poiesis_snapshot_errors_total"),
        );
        println!(
            "  /metrics: combinations statically rejected {:.0}",
            scrape(&mut client, "poiesis_static_rejections_total"),
        );
    }

    if let Some((handle, join)) = local {
        handle.shutdown();
        join.join().expect("server thread").expect("server run");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// One full session lifecycle; `true` when every step succeeded.
fn run_cycle(client: &mut Client, plan: &PlanRequest) -> bool {
    let Ok(id) = client.create(Some(plan)) else {
        return false;
    };
    let explored = matches!(client.explore(id), Ok(r) if !r.skyline.is_empty());
    let selected = explored && client.select(id, 0).is_ok();
    client.close(id).is_ok() && selected
}
