//! FIG4 — regenerates the paper's Fig. 4: the multidimensional scatter-plot
//! of alternative ETL flows over performance × data quality × reliability,
//! showing only the Pareto frontier (skyline), rendered as ASCII and SVG.

use bench::{planner_for, tpcds_setup};
use fcp::DeploymentPolicy;
use poiesis::PlannerConfig;
use viz::ScatterPoint;

fn main() {
    let (flow, catalog) = tpcds_setup(400);
    let planner = planner_for(
        flow,
        catalog,
        PlannerConfig {
            policy: DeploymentPolicy {
                top_k_points_per_pattern: 10,
                min_fitness: 0.05,
                max_patterns_per_flow: 2,
                ..DeploymentPolicy::balanced()
            },
            max_alternatives: 8_000,
            ..PlannerConfig::default()
        },
    );
    let out = planner.plan().expect("planning succeeds");

    println!("FIG4 — alternative ETL flows over (performance, data quality, reliability)\n");
    println!("alternatives evaluated : {}", out.alternatives.len());
    println!("pareto frontier size   : {}", out.skyline.len());
    println!(
        "frontier fraction      : {:.2}%",
        100.0 * out.skyline.len() as f64 / out.alternatives.len() as f64
    );
    println!();

    let points: Vec<ScatterPoint> = out
        .alternatives
        .iter()
        .enumerate()
        .map(|(i, a)| ScatterPoint {
            label: a.name.clone(),
            x: a.scores[0],
            y: a.scores[1],
            z: Some(a.scores[2]),
            on_skyline: out.skyline.contains(&i),
        })
        .collect();
    print!(
        "{}",
        viz::render_scatter(&points, 72, 22, "performance score", "data-quality score")
    );

    let svg = viz::scatter_svg(&points, 640, 480, "performance", "data quality");
    let path = "target/fig4_scatter.svg";
    if std::fs::write(path, &svg).is_ok() {
        println!("\nSVG written to {path}");
    }

    println!("\ntop frontier designs:");
    for alt in out.skyline_alternatives().take(5) {
        println!(
            "  perf {:6.1}  dq {:6.1}  rel {:6.1}  — {}",
            alt.scores[0],
            alt.scores[1],
            alt.scores[2],
            alt.applied.join(" + ")
        );
    }

    // shape: the skyline prunes the vast majority of the space
    assert!(out.alternatives.len() > 500);
    assert!(out.skyline.len() * 5 < out.alternatives.len());
}
