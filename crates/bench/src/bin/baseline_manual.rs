//! BASELINE — quantifies the §1 claim that manual redesign "suffers from
//! incompleteness, inefficiency, and ineffectiveness": compares the planner
//! against simulated manual engineers (random and greedy-sampled placement)
//! on application-point coverage and achieved quality.

use bench::{fmt, planner_for, tpch_setup};
use poiesis::baseline::{manual_redesign, ManualStrategy};
use poiesis::PlannerConfig;

fn main() {
    let (flow, catalog) = tpch_setup(400);
    let planner = planner_for(flow, catalog, PlannerConfig::default());
    let out = planner.plan().expect("planning succeeds");
    let planner_best = out
        .skyline_alternatives()
        .next()
        .map(|a| a.scores.iter().sum::<f64>())
        .unwrap_or(300.0);

    println!("BASELINE — planner vs simulated manual redesign (TPC-H, scale 400)\n");
    let mut rows = vec![vec![
        "POIESIS planner".to_string(),
        "100%".to_string(),
        out.alternatives.len().to_string(),
        fmt(planner_best),
        "1.00".to_string(),
    ]];

    for (label, strategy) in [
        ("manual: random placement", ManualStrategy::Random),
        ("manual: greedy sampled", ManualStrategy::GreedySampled),
    ] {
        for effort in [3usize, 6, 12] {
            // average over several simulated engineers
            let trials = 10;
            let (mut cov, mut best, mut tried) = (0.0, 0.0, 0usize);
            for s in 0..trials {
                let m = manual_redesign(&planner, strategy, effort, 1_000 + s).unwrap();
                cov += m.coverage;
                best += m.best_score_sum;
                tried += m.designs_tried;
            }
            let cov = cov / trials as f64;
            let best = best / trials as f64;
            rows.push(vec![
                format!("{label} (effort {effort})"),
                format!("{:.0}%", cov * 100.0),
                format!("{:.1}", tried as f64 / trials as f64),
                fmt(best),
                format!("{:.2}", best / planner_best),
            ]);
            assert!(
                best <= planner_best + 1e-6,
                "manual must not beat the exhaustive planner"
            );
        }
    }
    print!(
        "{}",
        viz::render_table(
            &[
                "strategy",
                "point coverage",
                "designs tried",
                "best score sum",
                "vs planner"
            ],
            &rows
        )
    );
    println!(
        "\nshape: bounded manual effort covers a small fraction of the valid\n\
         application points and lands below the planner's frontier — the\n\
         \"incomplete exploitation … wrong placement\" failure modes of §1."
    );
}
