//! `poiesis_cli` — the headless counterpart of the paper's GUI tool.
//!
//! ```text
//! poiesis_cli show      <model.(xlm|ktr)>          print the flow as DOT
//! poiesis_cli convert   <in.ktr> <out.xlm>         PDI → xLM conversion
//! poiesis_cli measures  <model.(xlm|ktr)>          simulate + Fig.1 table
//! poiesis_cli plan      <model.(xlm|ktr)> [opts]   one planning cycle
//!     --policy <balanced|performance|reliability|data-quality>
//!     --strategy <exhaustive|beam[:W]|greedy>  space walk (default exhaustive)
//!     --weights <c=w,..>      objective weights by characteristic key,
//!                             e.g. performance=2,data_quality=1
//!     --require <m:r,..>      hard constraints by measure key: the measure
//!                             must not regress past ratio r vs baseline,
//!                             e.g. cycle_time_ms:1.0,accuracy:0.95
//!     --drop-dominated        keep only the frontier in memory (O(frontier))
//!     --alternatives <N>      cap on enumerated alternatives (default 2000)
//!     --simulate              score by full simulation instead of estimation
//!     --rows <N>              synthetic rows per source (default 500)
//!     --svg <path>            write the Fig. 4 scatter-plot as SVG
//!     --top <N>               frontier designs to report (default 5)
//!     --json                  emit the PlanResponse DTO as JSON instead of
//!                             the human tables
//! ```
//!
//! Sources named by the model's extracts are synthesised from their schemas
//! (demo dirt profile) — the headless equivalent of pointing the tool at a
//! test database. Planning goes through the goal-driven facade
//! (`Poiesis::session()` + `Objective`), the same path a network service
//! will use.

use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::{EtlFlow, OpKind};
use fcp::DeploymentPolicy;
use poiesis::{EvalMode, Objective, PlanResponse, Poiesis, SearchStrategyKind, ToJson};
use quality::{Characteristic, MeasureId};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with no arguments for usage");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: poiesis_cli <show|convert|measures|plan> <model.(xlm|ktr)> [options]".to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or_else(usage)?;
    match cmd.as_str() {
        "show" => {
            let flow = load_model(args.get(1).ok_or_else(usage)?)?;
            print!("{}", flow.to_dot());
            Ok(())
        }
        "convert" => {
            let input = args.get(1).ok_or_else(usage)?;
            let output = args.get(2).ok_or_else(usage)?;
            if !input.ends_with(".ktr") {
                return Err("convert expects a .ktr input".into());
            }
            let flow = load_model(input)?;
            std::fs::write(output, xlm::write_flow(&flow))
                .map_err(|e| format!("writing {output}: {e}"))?;
            println!("wrote {output}");
            Ok(())
        }
        "measures" => {
            let flow = load_model(args.get(1).ok_or_else(usage)?)?;
            let catalog = synthesize_catalog(&flow, 500)?;
            let trace = simulator::simulate(&flow, &catalog, &simulator::SimConfig::default())
                .map_err(|e| e.to_string())?;
            let v = quality::evaluate(&flow, &trace);
            let rows: Vec<Vec<String>> = quality::MeasureId::ALL
                .iter()
                .filter_map(|&id| {
                    let val = v.get(id)?;
                    Some(vec![
                        id.characteristic().name().to_string(),
                        id.name().to_string(),
                        format!("{val:.4}"),
                    ])
                })
                .collect();
            print!(
                "{}",
                viz::render_table(&["characteristic", "measure", "value"], &rows)
            );
            Ok(())
        }
        "plan" => plan_cmd(args),
        other => Err(format!("unknown command `{other}`; {}", usage())),
    }
}

fn opt_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn opt_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parses `--weights performance=2,data_quality=1` into an objective,
/// layering `--require cycle_time_ms:1.0` constraints on top. No
/// `--weights` keeps the balanced default axes.
fn parse_objective(args: &[String]) -> Result<Objective, String> {
    let mut objective = match opt_value(args, "--weights") {
        None => Objective::balanced(),
        Some(spec) => {
            let mut o = Objective::new();
            for part in spec.split(',').filter(|p| !p.is_empty()) {
                let (key, weight) = part
                    .split_once('=')
                    .ok_or_else(|| format!("--weights expects key=weight, got `{part}`"))?;
                let c = Characteristic::from_key(key)
                    .ok_or_else(|| format!("unknown characteristic `{key}`"))?;
                let w: f64 = weight
                    .parse()
                    .map_err(|_| format!("bad weight `{weight}` for `{key}`"))?;
                o = o.weighted(c, w);
            }
            o
        }
    };
    if let Some(spec) = opt_value(args, "--require") {
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, ratio) = part
                .split_once(':')
                .ok_or_else(|| format!("--require expects measure:ratio, got `{part}`"))?;
            let m = MeasureId::from_key(key).ok_or_else(|| format!("unknown measure `{key}`"))?;
            let r: f64 = ratio
                .parse()
                .map_err(|_| format!("bad ratio `{ratio}` for `{key}`"))?;
            objective = objective.constrain(m, r);
        }
    }
    Ok(objective)
}

fn plan_cmd(args: &[String]) -> Result<(), String> {
    let flow = load_model(args.get(1).ok_or_else(usage)?)?;
    let rows: usize = opt_value(args, "--rows")
        .map(|v| v.parse().map_err(|_| "--rows expects a number"))
        .transpose()?
        .unwrap_or(500);
    let max_alternatives: usize = opt_value(args, "--alternatives")
        .map(|v| v.parse().map_err(|_| "--alternatives expects a number"))
        .transpose()?
        .unwrap_or(2_000);
    let top: usize = opt_value(args, "--top")
        .map(|v| v.parse().map_err(|_| "--top expects a number"))
        .transpose()?
        .unwrap_or(5);
    let policy = match opt_value(args, "--policy").unwrap_or("balanced") {
        "balanced" => DeploymentPolicy::balanced(),
        "performance" => DeploymentPolicy::performance_first(),
        "reliability" => DeploymentPolicy::reliability_first(),
        "data-quality" => DeploymentPolicy::data_quality_first(),
        other => return Err(format!("unknown policy `{other}`")),
    };
    let eval_mode = if opt_flag(args, "--simulate") {
        EvalMode::Simulate
    } else {
        EvalMode::Estimate
    };
    let strategy: SearchStrategyKind = opt_value(args, "--strategy")
        .unwrap_or("exhaustive")
        .parse()?;
    let objective = parse_objective(args)?;

    let catalog = synthesize_catalog(&flow, rows)?;
    let session = Poiesis::session()
        .flow(flow)
        .catalog(catalog)
        .policy(policy)
        .objective(objective)
        .strategy(strategy)
        .eval_mode(eval_mode)
        .budget(max_alternatives)
        .retain_dominated(!opt_flag(args, "--drop-dominated"))
        .build()
        .map_err(|e| e.to_string())?;
    let outcome = session.explore().map_err(|e| e.to_string())?;
    let axes = session.objective().characteristics();

    // --svg composes with both output modes, so it runs first
    if let Some(path) = opt_value(args, "--svg") {
        // the plot's x/y(/z) are the objective's first axes — a 1-goal
        // objective degenerates to a strip chart rather than panicking
        if axes.is_empty() {
            return Err("--svg needs an objective with at least one goal".into());
        }
        let points: Vec<viz::ScatterPoint> = outcome
            .alternatives
            .iter()
            .enumerate()
            .map(|(i, a)| viz::ScatterPoint {
                label: a.name.clone(),
                x: a.scores[0],
                y: a.scores.get(1).copied().unwrap_or(100.0),
                z: a.scores.get(2).copied(),
                on_skyline: outcome.skyline.contains(&i),
            })
            .collect();
        let x_label = axes[0].key();
        let y_label = axes.get(1).map_or("(no second goal)", |c| c.key());
        std::fs::write(path, viz::scatter_svg(&points, 640, 480, x_label, y_label))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("scatter-plot written to {path}");
    }

    if opt_flag(args, "--json") {
        let response = PlanResponse::from_outcome(&outcome, session.objective(), None);
        println!("{}", response.to_json_string());
        return Ok(());
    }

    println!(
        "strategy {strategy} | candidates {} | alternatives {} | frontier {} | rejected-by-constraint {} | failed-evals {}",
        outcome.candidates.len(),
        outcome.alternatives.len(),
        outcome.skyline.len(),
        outcome.rejected_by_constraints,
        outcome.failed_evaluations
    );
    println!("baseline: {}", outcome.baseline);
    for (i, alt) in outcome.skyline_alternatives().take(top).enumerate() {
        let scores = axes
            .iter()
            .zip(&alt.scores)
            .map(|(c, s)| format!("{} {s:6.1}", c.key()))
            .collect::<Vec<_>>()
            .join("  ");
        println!("\n#{i} {scores} — {}", alt.applied.join(" + "));
        print!("{}", viz::render_bars(&outcome.report(alt), false));
    }
    Ok(())
}

/// Loads an xLM (`.xlm`/`.xml`) or PDI (`.ktr`) model file.
fn load_model(path: &str) -> Result<EtlFlow, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let flow = if path.ends_with(".ktr") {
        xlm::pdi::import_ktr(&text).map_err(|e| e.to_string())?
    } else {
        xlm::read_flow(&text).map_err(|e| e.to_string())?
    };
    flow.validate().map_err(|e| format!("invalid model: {e}"))?;
    Ok(flow)
}

/// Synthesises a catalog for every extract in the flow from its schema.
fn synthesize_catalog(flow: &EtlFlow, rows: usize) -> Result<Catalog, String> {
    let mut catalog = Catalog::new();
    let mut seed = 0xC11u64;
    for n in flow.ops_of_kind("extract") {
        let OpKind::Extract { source, schema } = &flow.op(n).expect("live").kind else {
            unreachable!("ops_of_kind returned a non-extract");
        };
        if catalog.table(source).is_some() {
            continue;
        }
        // prefer a non-nullable attribute as the protected key
        let key = schema
            .attrs()
            .iter()
            .find(|a| !a.nullable)
            .or_else(|| schema.attrs().first())
            .map(|a| a.name.clone())
            .ok_or_else(|| format!("extract `{source}` has an empty schema"))?;
        catalog.add_generated(
            &TableSpec::new(source.clone(), schema.clone(), rows, key),
            &DirtProfile::demo(),
            seed,
        );
        seed = seed.wrapping_add(1);
    }
    Ok(catalog)
}
