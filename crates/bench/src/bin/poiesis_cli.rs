//! `poiesis_cli` — the headless counterpart of the paper's GUI tool.
//!
//! ```text
//! poiesis_cli show      <model.(xlm|ktr)>          print the flow as DOT
//! poiesis_cli convert   <in.ktr> <out.xlm>         PDI → xLM conversion
//! poiesis_cli measures  <model.(xlm|ktr)>          simulate + Fig.1 table
//! poiesis_cli plan      <model.(xlm|ktr)> [opts]   one planning cycle
//!     --policy <balanced|performance|reliability|data-quality>
//!     --strategy <exhaustive|beam[:W]|greedy>  space walk (default exhaustive)
//!     --drop-dominated        keep only the frontier in memory (O(frontier))
//!     --alternatives <N>      cap on enumerated alternatives (default 2000)
//!     --simulate              score by full simulation instead of estimation
//!     --rows <N>              synthetic rows per source (default 500)
//!     --svg <path>            write the Fig. 4 scatter-plot as SVG
//!     --top <N>               frontier designs to report (default 5)
//! ```
//!
//! Sources named by the model's extracts are synthesised from their schemas
//! (demo dirt profile) — the headless equivalent of pointing the tool at a
//! test database.

use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::{EtlFlow, OpKind};
use fcp::{DeploymentPolicy, PatternRegistry};
use poiesis::{EvalMode, Planner, PlannerConfig, SearchStrategyKind};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with no arguments for usage");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: poiesis_cli <show|convert|measures|plan> <model.(xlm|ktr)> [options]".to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or_else(usage)?;
    match cmd.as_str() {
        "show" => {
            let flow = load_model(args.get(1).ok_or_else(usage)?)?;
            print!("{}", flow.to_dot());
            Ok(())
        }
        "convert" => {
            let input = args.get(1).ok_or_else(usage)?;
            let output = args.get(2).ok_or_else(usage)?;
            if !input.ends_with(".ktr") {
                return Err("convert expects a .ktr input".into());
            }
            let flow = load_model(input)?;
            std::fs::write(output, xlm::write_flow(&flow))
                .map_err(|e| format!("writing {output}: {e}"))?;
            println!("wrote {output}");
            Ok(())
        }
        "measures" => {
            let flow = load_model(args.get(1).ok_or_else(usage)?)?;
            let catalog = synthesize_catalog(&flow, 500)?;
            let trace = simulator::simulate(&flow, &catalog, &simulator::SimConfig::default())
                .map_err(|e| e.to_string())?;
            let v = quality::evaluate(&flow, &trace);
            let rows: Vec<Vec<String>> = quality::MeasureId::ALL
                .iter()
                .filter_map(|&id| {
                    let val = v.get(id)?;
                    Some(vec![
                        id.characteristic().name().to_string(),
                        id.name().to_string(),
                        format!("{val:.4}"),
                    ])
                })
                .collect();
            print!(
                "{}",
                viz::render_table(&["characteristic", "measure", "value"], &rows)
            );
            Ok(())
        }
        "plan" => plan_cmd(args),
        other => Err(format!("unknown command `{other}`; {}", usage())),
    }
}

fn opt_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn opt_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn plan_cmd(args: &[String]) -> Result<(), String> {
    let flow = load_model(args.get(1).ok_or_else(usage)?)?;
    let rows: usize = opt_value(args, "--rows")
        .map(|v| v.parse().map_err(|_| "--rows expects a number"))
        .transpose()?
        .unwrap_or(500);
    let max_alternatives: usize = opt_value(args, "--alternatives")
        .map(|v| v.parse().map_err(|_| "--alternatives expects a number"))
        .transpose()?
        .unwrap_or(2_000);
    let top: usize = opt_value(args, "--top")
        .map(|v| v.parse().map_err(|_| "--top expects a number"))
        .transpose()?
        .unwrap_or(5);
    let policy = match opt_value(args, "--policy").unwrap_or("balanced") {
        "balanced" => DeploymentPolicy::balanced(),
        "performance" => DeploymentPolicy::performance_first(),
        "reliability" => DeploymentPolicy::reliability_first(),
        "data-quality" => DeploymentPolicy::data_quality_first(),
        other => return Err(format!("unknown policy `{other}`")),
    };
    let eval_mode = if opt_flag(args, "--simulate") {
        EvalMode::Simulate
    } else {
        EvalMode::Estimate
    };
    let strategy = match opt_value(args, "--strategy").unwrap_or("exhaustive") {
        "exhaustive" => SearchStrategyKind::Exhaustive,
        "greedy" => SearchStrategyKind::GreedyHillClimb,
        s if s == "beam" => SearchStrategyKind::Beam { width: 16 },
        s if s.starts_with("beam:") => {
            let width = s["beam:".len()..]
                .parse()
                .map_err(|_| format!("bad beam width in `{s}`"))?;
            SearchStrategyKind::Beam { width }
        }
        other => return Err(format!("unknown strategy `{other}`")),
    };
    let retain_dominated = !opt_flag(args, "--drop-dominated");

    let catalog = synthesize_catalog(&flow, rows)?;
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let planner = Planner::new(
        flow,
        catalog,
        registry,
        PlannerConfig {
            policy,
            eval_mode,
            max_alternatives,
            strategy,
            retain_dominated,
            ..PlannerConfig::default()
        },
    );
    let outcome = planner.plan().map_err(|e| e.to_string())?;

    println!(
        "strategy {strategy} | candidates {} | alternatives {} | frontier {} | rejected-by-constraint {} | failed-evals {}",
        outcome.candidates.len(),
        outcome.alternatives.len(),
        outcome.skyline.len(),
        outcome.rejected_by_constraints,
        outcome.failed_evaluations
    );
    for (i, alt) in outcome.skyline_alternatives().take(top).enumerate() {
        println!(
            "\n#{i} perf {:6.1}  dq {:6.1}  rel {:6.1} — {}",
            alt.scores[0],
            alt.scores[1],
            alt.scores[2],
            alt.applied.join(" + ")
        );
        print!("{}", viz::render_bars(&outcome.report(alt), false));
    }

    if let Some(path) = opt_value(args, "--svg") {
        let points: Vec<viz::ScatterPoint> = outcome
            .alternatives
            .iter()
            .enumerate()
            .map(|(i, a)| viz::ScatterPoint {
                label: a.name.clone(),
                x: a.scores[0],
                y: a.scores[1],
                z: a.scores.get(2).copied(),
                on_skyline: outcome.skyline.contains(&i),
            })
            .collect();
        std::fs::write(
            path,
            viz::scatter_svg(&points, 640, 480, "performance", "data quality"),
        )
        .map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nscatter-plot written to {path}");
    }
    Ok(())
}

/// Loads an xLM (`.xlm`/`.xml`) or PDI (`.ktr`) model file.
fn load_model(path: &str) -> Result<EtlFlow, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let flow = if path.ends_with(".ktr") {
        xlm::pdi::import_ktr(&text).map_err(|e| e.to_string())?
    } else {
        xlm::read_flow(&text).map_err(|e| e.to_string())?
    };
    flow.validate().map_err(|e| format!("invalid model: {e}"))?;
    Ok(flow)
}

/// Synthesises a catalog for every extract in the flow from its schema.
fn synthesize_catalog(flow: &EtlFlow, rows: usize) -> Result<Catalog, String> {
    let mut catalog = Catalog::new();
    let mut seed = 0xC11u64;
    for n in flow.ops_of_kind("extract") {
        let OpKind::Extract { source, schema } = &flow.op(n).expect("live").kind else {
            unreachable!("ops_of_kind returned a non-extract");
        };
        if catalog.table(source).is_some() {
            continue;
        }
        // prefer a non-nullable attribute as the protected key
        let key = schema
            .attrs()
            .iter()
            .find(|a| !a.nullable)
            .or_else(|| schema.attrs().first())
            .map(|a| a.name.clone())
            .ok_or_else(|| format!("extract `{source}` has an empty schema"))?;
        catalog.add_generated(
            &TableSpec::new(source.clone(), schema.clone(), rows, key),
            &DirtProfile::demo(),
            seed,
        );
        seed = seed.wrapping_add(1);
    }
    Ok(catalog)
}
