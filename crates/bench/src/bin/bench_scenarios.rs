//! BENCH_SCENARIOS — the scenario-corpus sweep: every registered domain
//! scenario × every search strategy on deterministic seeds.
//!
//! Each cell of the grid is planned repeatedly (at least three times,
//! until ~0.25 s of accumulated wall time) through the shared
//! `scenarios::sweep::run_cell` harness; every run's frontier digest is
//! asserted bit-identical — the same determinism contract the golden
//! snapshot tests pin — and the best run's timing is recorded. The
//! export carries, per cell: combinations/second, µs per combination,
//! frontier size, the 16-hex skyline digest, and the planner's
//! statically-rejected / bound-pruned / constraint-rejected / failed
//! counters.
//!
//! ```text
//! bench_scenarios [--tiny] [--out BENCH_scenarios.json]
//!                 [--csv BENCH_scenarios.csv] [--gate committed.json]
//! ```
//!
//! * `--tiny` runs the CI scale (small catalogs and budgets, seconds not
//!   minutes); the emitted JSON records which scale produced it.
//! * `--gate FILE` compares this run against a committed baseline from
//!   the *same* scale and exits non-zero when any cell's frontier digest
//!   moved (a determinism or planning regression — digests are
//!   bit-exact, there is no tolerance) or any cell lost more than 20 %
//!   combinations/second (a perf regression). Perf is compared
//!   machine-normalized: each cell's speed ratio vs baseline is judged
//!   against the grid's *median* ratio, so a uniformly slower CI box
//!   doesn't trip the gate but a single regressed cell does; a median
//!   below 50 % fails outright as a global regression.

use scenarios::sweep::{run_cell, strategies, SweepScale};
use serde::json::Value;

struct Cell {
    scenario: &'static str,
    strategy: String,
    enumerated: usize,
    frontier: usize,
    secs: f64,
    digest: String,
    statically_rejected: usize,
    bound_pruned: usize,
    rejected_by_constraints: usize,
    failed_applications: usize,
    failed_evaluations: usize,
}

impl Cell {
    fn combos_per_sec(&self) -> f64 {
        self.enumerated as f64 / self.secs.max(1e-9)
    }
    fn us_per_combo(&self) -> f64 {
        self.secs * 1e6 / self.enumerated.max(1) as f64
    }

    fn to_json(&self) -> Value {
        let num = |x: f64| Value::number((x * 1000.0).round() / 1000.0).expect("finite");
        Value::object([
            ("scenario".into(), Value::String(self.scenario.into())),
            ("strategy".into(), Value::String(self.strategy.clone())),
            ("enumerated".into(), num(self.enumerated as f64)),
            ("frontier".into(), num(self.frontier as f64)),
            ("secs".into(), num(self.secs)),
            ("combos_per_sec".into(), num(self.combos_per_sec())),
            ("us_per_combo".into(), num(self.us_per_combo())),
            ("digest".into(), Value::String(self.digest.clone())),
            (
                "statically_rejected".into(),
                num(self.statically_rejected as f64),
            ),
            ("bound_pruned".into(), num(self.bound_pruned as f64)),
            (
                "rejected_by_constraints".into(),
                num(self.rejected_by_constraints as f64),
            ),
            (
                "failed_applications".into(),
                num(self.failed_applications as f64),
            ),
            (
                "failed_evaluations".into(),
                num(self.failed_evaluations as f64),
            ),
        ])
    }

    fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{:.4},{:.0},{:.2},{},{},{},{},{},{}",
            self.scenario,
            self.strategy,
            self.enumerated,
            self.frontier,
            self.secs,
            self.combos_per_sec(),
            self.us_per_combo(),
            self.digest,
            self.statically_rejected,
            self.bound_pruned,
            self.rejected_by_constraints,
            self.failed_applications,
            self.failed_evaluations,
        )
    }
}

const CSV_HEADER: &str = "scenario,strategy,enumerated,frontier,secs,combos_per_sec,\
                          us_per_combo,digest,statically_rejected,bound_pruned,\
                          rejected_by_constraints,failed_applications,failed_evaluations";

fn opt<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let out_path: String = opt(&args, "--out", "BENCH_scenarios.json".to_string());
    let csv_path: String = opt(&args, "--csv", "BENCH_scenarios.csv".to_string());
    let gate: Option<String> = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let scale = if tiny {
        SweepScale::tiny()
    } else {
        SweepScale::full()
    };

    println!(
        "BENCH_SCENARIOS — {} scenarios × {} strategies, {} scale\n",
        scenarios::all().len(),
        strategies().len(),
        scale.label
    );

    let mut cells: Vec<Cell> = Vec::new();
    for s in scenarios::all() {
        for strategy in strategies() {
            // The digest assertion needs at least two runs; the 20%
            // perf gate needs quiet timing, and the smallest cells
            // finish in well under a millisecond — so repeat each cell
            // until ~0.25s of accumulated wall time (min 3, max 64
            // runs) and take the best. The minimum converges to the
            // true per-cell cost because scheduler noise is one-sided.
            let a = run_cell(&s, strategy, &scale);
            let mut best_secs = a.secs;
            let mut total = a.secs;
            let mut runs = 1usize;
            while (runs < 3 || total < 0.25) && runs < 64 {
                let again = run_cell(&s, strategy, &scale);
                assert_eq!(
                    a.digest, again.digest,
                    "{}/{strategy}: two runs of the same cell diverged — determinism broken",
                    s.name
                );
                best_secs = best_secs.min(again.secs);
                total += again.secs;
                runs += 1;
            }
            let (out, secs) = (a.outcome, best_secs);
            let cell = Cell {
                scenario: s.name,
                strategy: strategy.to_string(),
                enumerated: out.stats.enumerated,
                frontier: out.skyline.len(),
                secs,
                digest: a.digest,
                statically_rejected: out.statically_rejected,
                bound_pruned: out.bound_pruned,
                rejected_by_constraints: out.rejected_by_constraints,
                failed_applications: out.failed_applications,
                failed_evaluations: out.failed_evaluations,
            };
            println!(
                "{:<18} {:<12} {:>7} combos  {:>10.0} combos/s  {:>7.1} µs/combo  frontier {:>2}  digest {}  pruned {:>5}  static {:>4}",
                cell.scenario,
                cell.strategy,
                cell.enumerated,
                cell.combos_per_sec(),
                cell.us_per_combo(),
                cell.frontier,
                cell.digest,
                cell.bound_pruned,
                cell.statically_rejected,
            );
            cells.push(cell);
        }
    }

    let mut csv = String::from(CSV_HEADER);
    csv.push('\n');
    for cell in &cells {
        csv.push_str(&cell.to_csv());
        csv.push('\n');
    }
    std::fs::write(&csv_path, csv).expect("write bench csv");
    println!("\nwrote {csv_path}");

    let num = |x: f64| Value::number((x * 1000.0).round() / 1000.0).expect("finite");
    let doc = Value::object([
        ("schema".into(), num(1.0)),
        ("tiny".into(), Value::Bool(tiny)),
        ("scale".into(), Value::String(scale.label.into())),
        ("rows".into(), num(scale.rows as f64)),
        ("budget".into(), num(scale.budget as f64)),
        (
            "entries".into(),
            Value::Array(cells.iter().map(Cell::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench json");
    println!("wrote {out_path}");

    if let Some(gate_path) = gate {
        let committed = std::fs::read_to_string(&gate_path)
            .unwrap_or_else(|e| panic!("read gate baseline {gate_path}: {e}"));
        let committed = Value::parse(&committed).expect("parse gate baseline");
        let base_tiny = committed
            .get("tiny")
            .and_then(|v| v.as_bool("tiny"))
            .unwrap_or(false);
        assert_eq!(
            base_tiny, tiny,
            "gate baseline was produced at a different scale; compare like with like"
        );
        let entries = committed
            .get("entries")
            .and_then(|v| v.as_array("entries").map(<[Value]>::to_vec))
            .expect("gate baseline entries");
        let field = |e: &Value, k: &str| e.get(k).and_then(|v| v.as_str(k).map(str::to_owned)).ok();
        let mut failures = Vec::new();
        // (cell, speed ratio vs baseline) for the perf pass below
        let mut ratios: Vec<(usize, f64)> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            let Some(base) = entries.iter().find(|e| {
                field(e, "scenario").as_deref() == Some(cell.scenario)
                    && field(e, "strategy") == Some(cell.strategy.clone())
            }) else {
                failures.push(format!(
                    "{}/{}: cell missing from baseline {gate_path} — re-run the sweep and commit the new baseline",
                    cell.scenario, cell.strategy
                ));
                continue;
            };
            if let Some(base_digest) = field(base, "digest") {
                if base_digest != cell.digest {
                    failures.push(format!(
                        "{}/{}: frontier digest moved {} -> {} (bit-exact gate; rebless goldens + baseline if intended)",
                        cell.scenario, cell.strategy, base_digest, cell.digest
                    ));
                }
            }
            let base_cps = base
                .get("combos_per_sec")
                .and_then(|v| v.as_number("combos_per_sec"))
                .unwrap_or(0.0);
            if base_cps > 0.0 {
                ratios.push((i, cell.combos_per_sec() / base_cps));
            }
        }
        // Perf gate, machine-normalized: the baseline and this run may be
        // on differently-loaded hardware, which shifts *every* cell's
        // combos/s by the same factor. The grid's median speed ratio IS
        // that factor; a genuine per-cell regression falls >20% below
        // it. A genuine global regression drags the median itself down —
        // caught by the median floor.
        let median_ratio = {
            let mut rs: Vec<f64> = ratios.iter().map(|&(_, r)| r).collect();
            rs.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            if rs.is_empty() {
                1.0
            } else {
                rs[rs.len() / 2]
            }
        };
        for &(i, ratio) in &ratios {
            if ratio < median_ratio * 0.8 {
                failures.push(format!(
                    "{}/{}: combos/s at {:.0}% of baseline, < 80% of the grid median {:.0}% — per-cell perf regression",
                    cells[i].scenario,
                    cells[i].strategy,
                    ratio * 100.0,
                    median_ratio * 100.0
                ));
            }
        }
        if median_ratio < 0.5 {
            failures.push(format!(
                "grid median combos/s fell to {:.0}% of baseline — global perf regression",
                median_ratio * 100.0
            ));
        }
        for e in &entries {
            let (Some(s), Some(k)) = (field(e, "scenario"), field(e, "strategy")) else {
                continue;
            };
            if !cells.iter().any(|c| c.scenario == s && c.strategy == k) {
                failures.push(format!(
                    "{s}/{k}: baseline cell no longer produced by the grid (scenario removed?)"
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("SCENARIO SWEEP REGRESSION vs {gate_path}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!(
            "gate vs {gate_path}: OK (all digests bit-exact; no cell lost >20% combos/s \
             vs the grid median ratio {:.0}%)",
            median_ratio * 100.0
        );
    }
}
