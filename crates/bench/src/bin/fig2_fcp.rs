//! FIG2 — regenerates the paper's Fig. 2: different quality goals generate
//! different FCPs on the S_Purchases flow. (a) a performance goal produces
//! horizontal partitioning + parallel derive; (b) a reliability goal
//! produces savepoints around the expensive task.

use bench::{fmt, purchases_setup, SEED};
use fcp::builtin::{AddCheckpoint, ParallelizeTask};
use fcp::{ApplicationPoint, Pattern, PatternContext};
use simulator::{simulate, simulate_trials, SimConfig};

fn main() {
    let (flow, catalog) = purchases_setup(3_000);
    // make the downstream group-derives somewhat fragile so reliability is
    // a live concern, as the paper's recovery scenario implies
    let mut flow = flow;
    for n in flow.ops_of_kind("derive") {
        if flow.op(n).unwrap().name.contains("Group") {
            flow.op_mut(n).unwrap().cost.failure_rate = 0.10;
        }
    }
    let cfg = SimConfig {
        seed: SEED,
        inject_failures: false,
    };
    let base_trace = simulate(&flow, &catalog, &cfg).unwrap();
    let base = quality::evaluate(&flow, &base_trace);
    let base_trials = simulate_trials(&flow, &catalog, &cfg, 50).unwrap();

    // ---- Fig. 2a: goal = time performance → ParallelizeTask on DERIVE VALUES
    let par = ParallelizeTask::default();
    let mut fig2a = flow.fork("fig2a_performance");
    let target = {
        let ctx = PatternContext::new(&fig2a).unwrap();
        *par.candidate_points(&ctx)
            .iter()
            .max_by(|a, b| par.fitness(&ctx, **a).total_cmp(&par.fitness(&ctx, **b)))
            .expect("a parallelizable op exists")
    };
    par.apply(&mut fig2a, target).unwrap();
    let a_trace = simulate(&fig2a, &catalog, &cfg).unwrap();
    let a = quality::evaluate(&fig2a, &a_trace);

    // ---- Fig. 2b: goal = reliability → AddCheckpoint after DERIVE VALUES
    let cp = AddCheckpoint;
    let mut fig2b = flow.fork("fig2b_reliability");
    let target = {
        let ctx = PatternContext::new(&fig2b).unwrap();
        *cp.candidate_points(&ctx)
            .iter()
            .max_by(|x, y| cp.fitness(&ctx, **x).total_cmp(&cp.fitness(&ctx, **y)))
            .expect("an edge point exists")
    };
    let desc = match target {
        ApplicationPoint::Edge(e) => target_desc(&fig2b, e),
        _ => unreachable!(),
    };
    cp.apply(&mut fig2b, target).unwrap();
    let b_trace = simulate(&fig2b, &catalog, &cfg).unwrap();
    let b = quality::evaluate(&fig2b, &b_trace);
    let b_trials = simulate_trials(&fig2b, &catalog, &cfg, 50).unwrap();

    use quality::MeasureId::*;
    println!("FIG2 — FCP generation on the S_Purchases flow (scale 3000)\n");
    let rows = vec![
        vec![
            "initial flow".into(),
            fmt(base.get(CycleTimeMs).unwrap()),
            fmt(base.get(ExpectedRedoMs).unwrap()),
            fmt(base.get(Recoverability).unwrap()),
            fmt(base_trials.mean_cycle_ms),
            flow.op_count().to_string(),
        ],
        vec![
            "(a) + ParallelizeTask (performance)".into(),
            fmt(a.get(CycleTimeMs).unwrap()),
            fmt(a.get(ExpectedRedoMs).unwrap()),
            fmt(a.get(Recoverability).unwrap()),
            "-".into(),
            fig2a.op_count().to_string(),
        ],
        vec![
            format!("(b) + AddCheckpoint (reliability, {desc})"),
            fmt(b.get(CycleTimeMs).unwrap()),
            fmt(b.get(ExpectedRedoMs).unwrap()),
            fmt(b.get(Recoverability).unwrap()),
            fmt(b_trials.mean_cycle_ms),
            fig2b.op_count().to_string(),
        ],
    ];
    print!(
        "{}",
        viz::render_table(
            &[
                "design",
                "cycle (ms)",
                "E[redo] (ms)",
                "recoverability",
                "MC mean cycle",
                "#ops"
            ],
            &rows
        )
    );

    // Expected shapes from the paper
    let speedup = base.get(CycleTimeMs).unwrap() / a.get(CycleTimeMs).unwrap();
    let redo_cut = base.get(ExpectedRedoMs).unwrap() / b.get(ExpectedRedoMs).unwrap().max(1e-9);
    println!("\nshape checks:");
    println!(
        "  (a) cycle-time speedup      : {:.2}x (expect > 1)",
        speedup
    );
    println!(
        "  (b) expected-redo reduction : {:.2}x (expect > 1)",
        redo_cut
    );
    assert!(speedup > 1.0, "parallelisation must speed the flow up");
    assert!(redo_cut > 1.0, "savepoint must cut expected redo");
    assert_eq!(fig2a.ops_of_kind("partition").len(), 1);
    assert_eq!(fig2b.ops_of_kind("checkpoint").len(), 1);
}

fn target_desc(flow: &etl_model::EtlFlow, e: etl_model::EdgeId) -> String {
    let (s, _) = flow.graph.endpoints(e).unwrap();
    format!("after `{}`", flow.op(s).unwrap().name)
}
