//! CONC — verifies the §3 claim that concurrent background evaluation keeps
//! the system responsive: sweeps the evaluation-pool width over a fixed
//! alternative set and reports the speedup series.

use bench::{tpcds_setup, SEED};
use etl_model::EtlFlow;
use poiesis::eval::{evaluate_pool, EvalMode};
use poiesis::generate::generate_uncapped;
use std::time::Instant;

struct FlowBox(EtlFlow);
impl AsRef<EtlFlow> for FlowBox {
    fn as_ref(&self) -> &EtlFlow {
        &self.0
    }
}

fn main() {
    let (flow, catalog) = tpcds_setup(1_500);
    let registry = fcp::PatternRegistry::standard_for_catalog(&catalog);
    let stats = quality::source_stats(&catalog);
    // build a deterministic set of ~2000 single-pattern alternatives by
    // cycling the candidate list
    let candidates = generate_uncapped(&flow, &registry).unwrap();
    let mut flows = Vec::new();
    'outer: loop {
        for c in &candidates {
            let mut g = flow.fork(format!("alt_{}", flows.len()));
            if c.pattern.apply(&mut g, c.point).is_ok() {
                flows.push(FlowBox(g));
            }
            if flows.len() >= 2_000 {
                break 'outer;
            }
        }
        if candidates.is_empty() {
            break;
        }
    }

    println!(
        "CONC — concurrent evaluation of {} alternatives (simulation mode, TPC-DS scale 1500)\n",
        flows.len()
    );
    let mut rows = Vec::new();
    let mut t1 = None;
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let results = evaluate_pool(&flows, &catalog, &stats, EvalMode::Simulate, workers, SEED);
        let wall = t0.elapsed().as_secs_f64();
        assert!(results.iter().all(|r| r.is_ok()));
        let base = *t1.get_or_insert(wall);
        rows.push(vec![
            workers.to_string(),
            format!("{wall:.2}"),
            format!("{:.2}x", base / wall),
            format!("{:.0}", flows.len() as f64 / wall),
        ]);
    }
    print!(
        "{}",
        viz::render_table(&["workers", "wall (s)", "speedup", "alternatives/s"], &rows)
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\ndetected hardware threads: {cores}");
    if cores > 1 {
        println!(
            "shape: near-linear scaling until the physical core count — the\n\
             thread pool plays the role of the paper's elastic EC2 workers."
        );
    } else {
        println!(
            "note: this host exposes a single hardware thread, so no wall-clock\n\
             speedup is physically possible here; the sweep still exercises the\n\
             concurrent-evaluation code path (work-stealing pool, ordered results).\n\
             On a multi-core host the series scales with the worker count."
        );
    }
}
