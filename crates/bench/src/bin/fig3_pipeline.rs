//! FIG3 — exercises the POIESIS architecture end-to-end (pattern generation
//! → pattern application → measures estimation → visualisation input) and
//! runs the estimator-vs-simulation ablation: the analytic estimator must
//! rank alternatives consistently with full simulation.

use bench::{planner_for, tpch_setup};
use poiesis::{EvalMode, PlannerConfig};
use std::time::Instant;

fn main() {
    let (flow, catalog) = tpch_setup(500);
    println!("FIG3 — planner pipeline over the TPC-H demo flow (scale 500)\n");

    // --- estimate mode (the interactive default)
    let t0 = Instant::now();
    let planner = planner_for(
        flow.clone(),
        catalog.clone(),
        PlannerConfig {
            max_alternatives: 400,
            ..PlannerConfig::default()
        },
    );
    let est_out = planner.plan().expect("plan (estimate)");
    let est_time = t0.elapsed();

    // --- simulate mode (ablation)
    let t0 = Instant::now();
    let sim_planner = planner_for(
        flow,
        catalog,
        PlannerConfig {
            eval_mode: EvalMode::Simulate,
            max_alternatives: 400,
            ..PlannerConfig::default()
        },
    );
    let sim_out = sim_planner.plan().expect("plan (simulate)");
    let sim_time = t0.elapsed();

    println!("stage counts (Fig. 3 pipeline):");
    println!("  generated candidates : {}", est_out.candidates.len());
    println!("  applied alternatives : {}", est_out.alternatives.len());
    println!("  skyline size         : {}", est_out.skyline.len());
    println!();
    println!("ablation — estimation vs full simulation over the same space:");
    println!(
        "  estimate mode : {:>8.1} ms total",
        est_time.as_secs_f64() * 1e3
    );
    println!(
        "  simulate mode : {:>8.1} ms total",
        sim_time.as_secs_f64() * 1e3
    );
    println!(
        "  estimator speedup: {:.1}x",
        sim_time.as_secs_f64() / est_time.as_secs_f64()
    );

    // ranking agreement on the first dimension (performance score):
    // Spearman-style check over alternatives present in both runs
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for a in &est_out.alternatives {
        if let Some(b) = sim_out.alternatives.iter().find(|b| b.name == a.name) {
            pairs.push((a.scores[0], b.scores[0]));
        }
    }
    let n = pairs.len();
    let concordant = {
        let mut c = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let d_est = pairs[i].0 - pairs[j].0;
                let d_sim = pairs[i].1 - pairs[j].1;
                if d_est.abs() < 1e-9 || d_sim.abs() < 1e-9 {
                    continue;
                }
                total += 1;
                if (d_est > 0.0) == (d_sim > 0.0) {
                    c += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            c as f64 / total as f64
        }
    };
    println!(
        "  performance-ranking concordance (estimator vs simulator): {:.1}% over {n} shared alternatives",
        concordant * 100.0
    );
    assert!(
        concordant > 0.75,
        "estimator must rank consistently with simulation ({concordant})"
    );
    assert!(
        est_time < sim_time,
        "estimation must be faster than simulation"
    );
}
