//! The pinned fault-lab matrix, with seed replay.
//!
//! `harness = false`: this binary owns its CLI so a failing seed can be
//! replayed verbatim with the command the failure printed:
//!
//! ```text
//! cargo test -p simlab --test lab -- --seed 42
//! ```
//!
//! Without `--seed`, the pinned matrix runs, followed by a
//! determinism double-run of the first seed (same seed ⇒ byte-identical
//! schedule and identical outcome digest). The pinned seeds are chosen
//! so the matrix collectively covers every fault kind, including at
//! least one kill/restart with completed cycles (what the CI mutation
//! canary needs) and at least one torn final write (quarantine path).

use simlab::{run_seed, FaultPlan, LabConfig};
use std::process::ExitCode;

/// Seeds pinned after an empirical scan: between them the expanded
/// plans include drops, truncations, stalls, synthetic `503`s, virtual
/// delays, mid-run kill/restarts after completed cycles, and torn
/// temp/final snapshot writes. Re-scan with
/// `for s in 0..100: FaultPlan::from_seed(s, 3, 24)` when the expansion
/// changes.
const PINNED_SEEDS: &[u64] = &[1, 7, 11, 18];

fn parse_seeds(args: &[String]) -> Result<Vec<u64>, String> {
    let mut seeds = Vec::new();
    let mut iter = args.iter().skip(1).peekable();
    while let Some(arg) = iter.next() {
        if arg == "--seed" {
            let value = iter
                .next()
                .ok_or_else(|| "--seed takes a u64 value".to_string())?;
            seeds.push(
                value
                    .parse()
                    .map_err(|_| format!("--seed takes a u64, got `{value}`"))?,
            );
        } else if let Some(value) = arg.strip_prefix("--seed=") {
            seeds.push(
                value
                    .parse()
                    .map_err(|_| format!("--seed takes a u64, got `{value}`"))?,
            );
        }
        // Anything else (libtest-style flags like --nocapture) is ignored.
    }
    Ok(seeds)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let requested = match parse_seeds(&args) {
        Ok(seeds) => seeds,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let replay = !requested.is_empty();
    let seeds = if replay {
        requested
    } else {
        PINNED_SEEDS.to_vec()
    };
    let cfg = LabConfig::default();
    let mut failed = false;

    for &seed in &seeds {
        println!(
            "simlab seed {seed}: {}",
            FaultPlan::from_seed(seed, cfg.cycles, cfg.wire_slots).describe()
        );
        match run_seed(seed, &cfg) {
            Ok(report) => println!(
                "simlab seed {seed}: ok — {} exchanges, {} retries ({:?} virtual wait), \
                 {} restart(s), {} quarantine(s), outcome {}",
                report.wire_exchanges,
                report.client_retries,
                report.virtual_wait,
                report.restarts,
                report.quarantines,
                report.outcome_digest
            ),
            Err(failure) => {
                eprintln!("{failure}");
                failed = true;
            }
        }
    }

    // Determinism: the same seed must reproduce the same schedule and the
    // same outcome, byte for byte. Skipped on explicit replays — a replay
    // exists to show one failure, not to re-prove determinism.
    if !failed && !replay {
        let seed = seeds[0];
        match (run_seed(seed, &cfg), run_seed(seed, &cfg)) {
            (Ok(first), Ok(second)) => {
                if first.schedule != second.schedule {
                    eprintln!(
                        "determinism violation for seed {seed}: schedules differ\n  {}\n  {}",
                        first.schedule, second.schedule
                    );
                    failed = true;
                } else if first.outcome_digest != second.outcome_digest {
                    eprintln!(
                        "determinism violation for seed {seed}: outcomes differ \
                         ({} vs {})\n  replay: cargo test -p simlab --test lab -- --seed {seed}",
                        first.outcome_digest, second.outcome_digest
                    );
                    failed = true;
                } else {
                    println!(
                        "simlab determinism: seed {seed} twice → identical schedule and outcome"
                    );
                }
            }
            (first, second) => {
                if let Err(failure) = first {
                    eprintln!("{failure}");
                }
                if let Err(failure) = second {
                    eprintln!("{failure}");
                }
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
