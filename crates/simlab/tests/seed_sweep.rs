//! Property sweep: arbitrary seeds must preserve the lab's invariants.
//!
//! The pinned matrix in `tests/lab.rs` covers curated schedules; this
//! sweep samples the seed space so schedule shapes nobody pinned still
//! uphold frontier-equality-after-recovery and the no-hang bound. The
//! case count is deliberately tiny for tier-1 wall time — CI's
//! `fault-lab` job widens it via the same test. The vendored proptest is
//! deterministic (name-seeded), so this sweep itself replays
//! identically; any failing seed it finds is reported by `LabFailure`
//! with the `--seed` replay command.

use proptest::prelude::*;
use simlab::{run_seed, LabConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn arbitrary_seeds_recover_bit_identically_and_never_hang(seed in 0u64..1_000_000) {
        // Two cycles keep one case under a few seconds; every invariant
        // (recovery equality, quarantine, typed failures, virtual waits)
        // is still enforced by the runner.
        let cfg = LabConfig { cycles: 2, ..LabConfig::default() };
        match run_seed(seed, &cfg) {
            Ok(report) => {
                prop_assert_eq!(report.cycles, 2);
                prop_assert_eq!(report.seed, seed);
            }
            Err(failure) => return Err(TestCaseError::fail(failure.to_string())),
        }
    }
}

/// One pinned seed replays the fault-lab workload against a scenario
/// template instead of the built-in demo: the recovery invariants must
/// hold regardless of which flow the server is planning, and the
/// outcome digest must stay seed-deterministic on the bigger flow too.
#[test]
fn pinned_seed_recovers_on_a_scenario_template() {
    let cfg = LabConfig {
        template: "scenario:log_compaction".to_string(),
        cycles: 2,
        ..LabConfig::default()
    };
    let seed = 0x5CE42;
    let first = run_seed(seed, &cfg).unwrap_or_else(|f| panic!("scenario lab run failed: {f}"));
    assert_eq!(first.cycles, 2);
    let second = run_seed(seed, &cfg).unwrap_or_else(|f| panic!("scenario lab replay failed: {f}"));
    assert_eq!(
        first.outcome_digest, second.outcome_digest,
        "scenario-template lab run is not seed-deterministic"
    );
}
