//! Property sweep: arbitrary seeds must preserve the lab's invariants.
//!
//! The pinned matrix in `tests/lab.rs` covers curated schedules; this
//! sweep samples the seed space so schedule shapes nobody pinned still
//! uphold frontier-equality-after-recovery and the no-hang bound. The
//! case count is deliberately tiny for tier-1 wall time — CI's
//! `fault-lab` job widens it via the same test. The vendored proptest is
//! deterministic (name-seeded), so this sweep itself replays
//! identically; any failing seed it finds is reported by `LabFailure`
//! with the `--seed` replay command.

use proptest::prelude::*;
use simlab::{run_seed, LabConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn arbitrary_seeds_recover_bit_identically_and_never_hang(seed in 0u64..1_000_000) {
        // Two cycles keep one case under a few seconds; every invariant
        // (recovery equality, quarantine, typed failures, virtual waits)
        // is still enforced by the runner.
        let cfg = LabConfig { cycles: 2, ..LabConfig::default() };
        match run_seed(seed, &cfg) {
            Ok(report) => {
                prop_assert_eq!(report.cycles, 2);
                prop_assert_eq!(report.seed, seed);
            }
            Err(failure) => return Err(TestCaseError::fail(failure.to_string())),
        }
    }
}
