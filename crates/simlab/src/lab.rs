//! The scenario runner.
//!
//! [`run_seed`] executes one full lab run: expand the seed into a
//! [`FaultPlan`], record an undisturbed **control run** of the same
//! workload, then replay the workload through the fault proxy against a
//! real server that gets killed, restarted and torn mid-run — checking
//! the system invariants after every operation:
//!
//! 1. **Recovery is bit-identical**: a restarted server's recovered
//!    history and re-explored frontier match the control run at the
//!    recovered cycle count (a torn temp-file write may legally roll
//!    back *one* cycle — to the previous durable state — never to an
//!    in-between one).
//! 2. **No handle reuse**: session handles stay unique and monotonic
//!    across restarts within one snapshot lineage.
//! 3. **No partial snapshot ever loads**: a torn final write must be
//!    quarantined at startup (`sessions.json.corrupt`), counted in
//!    `poiesis_snapshot_quarantined_total`, and the server starts empty.
//! 4. **Failures are typed**: every client-visible failure is an I/O
//!    error or a documented wire-error body — never a hang past the
//!    read timeout, never an undecodable success body.
//! 5. **Waits are virtual**: every `Retry-After` second the client
//!    honoured is on the [`SimClock`], none on the wall clock.
//!
//! A failing run returns a [`LabFailure`] that prints the seed, the
//! decoded schedule, the faults actually applied, and the exact replay
//! command.

use crate::clock::SimClock;
use crate::plan::{FaultPlan, ProcessFault};
use crate::proxy::FaultProxy;
use poiesis::{FromJson, IterationRecord, ManagerSnapshot, PlanResponse, ToJson};
use poiesis_server::{
    Client, ClientError, Clock, PlanningService, RetryPolicy, Server, ServerConfig,
    SessionTemplate, ShutdownHandle, StateStore, SystemClock, TornWrite, TornWriteHook,
};
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Tunables of one lab run. The defaults are what the pinned CI seeds
/// use; tests shrink `cycles`/`rows` for speed, never the invariants.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Session-template spec the lab's server plans against — any
    /// rowless `SessionTemplate::from_spec` name (`demo`,
    /// `scenario:<name>`); `rows` is appended by the lab.
    pub template: String,
    /// Rows per synthesised source in the session template.
    pub rows: usize,
    /// Explore/select cycles the workload completes.
    pub cycles: usize,
    /// Wire-fault slots expanded from the seed.
    pub wire_slots: usize,
    /// Workload client read timeout — the hang bound: a server that
    /// sends nothing for this long is a failed exchange, not a wait.
    pub client_timeout: Duration,
    /// How long a `Stall` fault holds the connection (must exceed
    /// `client_timeout`).
    pub stall_hold: Duration,
    /// Attempts per logical op before the runner declares it stuck.
    pub op_attempts: usize,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            template: "demo".to_string(),
            rows: 32,
            cycles: 3,
            wire_slots: 24,
            client_timeout: Duration::from_millis(400),
            stall_hold: Duration::from_millis(700),
            op_attempts: 12,
        }
    }
}

/// What a successful run proved, plus the digests the determinism test
/// compares across invocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabReport {
    /// The seed that was run.
    pub seed: u64,
    /// Cycles the workload completed (== `LabConfig::cycles`).
    pub cycles: usize,
    /// Exchanges the proxy saw, including client-internal retries.
    pub wire_exchanges: usize,
    /// `503`-triggered retries the workload client performed.
    pub client_retries: u64,
    /// Virtual time spent honouring `Retry-After` — wall time spent: none.
    pub virtual_wait: Duration,
    /// Snapshot quarantines observed (torn final writes).
    pub quarantines: usize,
    /// Server kill/restart events executed.
    pub restarts: usize,
    /// FNV-1a digest over the run's observable outcome (final history,
    /// schedule, exchange/retry/restart counts) — byte-identical across
    /// runs of the same seed.
    pub outcome_digest: String,
    /// The decoded fault schedule.
    pub schedule: String,
}

/// A broken invariant, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct LabFailure {
    /// The seed that exposed it.
    pub seed: u64,
    /// Which phase of the run broke.
    pub stage: String,
    /// What went wrong.
    pub message: String,
    /// The decoded fault schedule.
    pub schedule: String,
    /// Faults actually applied before the failure, in order.
    pub applied: Vec<String>,
}

impl fmt::Display for LabFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault lab failure (seed {})", self.seed)?;
        writeln!(f, "  stage:    {}", self.stage)?;
        writeln!(f, "  problem:  {}", self.message)?;
        writeln!(f, "  schedule: {}", self.schedule)?;
        writeln!(f, "  applied:  [{}]", self.applied.join("; "))?;
        write!(
            f,
            "  replay:   cargo test -p simlab --test lab -- --seed {}",
            self.seed
        )
    }
}

impl std::error::Error for LabFailure {}

/// FNV-1a, 64-bit — a stable, dependency-free content digest.
pub fn fnv64(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// The frontier, canonicalised for cross-run comparison: the session
/// handle is erased (control and faulted runs allocate different
/// handles once faults orphan a create), everything else — axes,
/// baseline, counts, the full skyline — must match byte-for-byte.
fn frontier_digest(response: &PlanResponse) -> String {
    let mut canonical = response.clone();
    canonical.session = None;
    fnv64(&canonical.to_json_string())
}

fn lab_dir(seed: u64, role: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simlab-{}-{seed}-{role}", std::process::id()))
}

fn reset_dir(dir: &Path) -> io::Result<()> {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir)
}

fn lab_server_config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        queue: 16,
        retry_after: Duration::from_secs(1),
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

/// One server incarnation, killable from the runner.
struct Incarnation {
    addr: std::net::SocketAddr,
    handle: ShutdownHandle,
    join: thread::JoinHandle<io::Result<usize>>,
    hook: TornWriteHook,
}

impl Incarnation {
    fn start(dir: &Path, cfg: &LabConfig) -> Result<Incarnation, String> {
        let store = StateStore::open(dir).map_err(|e| format!("opening state store: {e}"))?;
        let hook = store.fault_hook();
        let template = SessionTemplate::from_spec(&format!("{}:{}", cfg.template, cfg.rows))
            .map_err(|e| format!("resolving lab template: {e}"))?;
        let service = PlanningService::new(template)
            .with_store(store)
            .map_err(|e| format!("starting service: {e}"))?;
        let server = Server::bind("127.0.0.1:0", service, lab_server_config())
            .map_err(|e| format!("binding server: {e}"))?;
        let (addr, handle, join) = server
            .spawn()
            .map_err(|e| format!("spawning server: {e}"))?;
        Ok(Incarnation {
            addr,
            handle,
            join,
            hook,
        })
    }

    /// Stops the incarnation. Persistence happens per mutation, never at
    /// shutdown, so by the time the runner calls this between ops the
    /// disk state is exactly what a `kill -9` at the same point would
    /// have left.
    fn kill(self) {
        self.handle.shutdown();
        let _ = self.join.join();
    }
}

/// The control run: the same workload, no proxy, no faults. Records the
/// per-cycle frontier digests and iteration records the faulted run must
/// reproduce.
struct Control {
    frontier_digests: Vec<String>,
    records: Vec<IterationRecord>,
}

fn control_run(cfg: &LabConfig, seed: u64) -> Result<Control, String> {
    let dir = lab_dir(seed, "control");
    reset_dir(&dir).map_err(|e| format!("control dir: {e}"))?;
    let incarnation = Incarnation::start(&dir, cfg)?;
    let mut client = Client::connect_with(
        incarnation.addr,
        Duration::from_secs(10),
        Arc::new(SystemClock::new()),
        RetryPolicy::none(),
    )
    .map_err(|e| format!("control connect: {e}"))?;
    let sid = client
        .create(None)
        .map_err(|e| format!("control create: {e}"))?;
    let mut frontier_digests = Vec::with_capacity(cfg.cycles);
    let mut records = Vec::with_capacity(cfg.cycles);
    for cycle in 1..=cfg.cycles {
        let frontier = client
            .explore(sid)
            .map_err(|e| format!("control explore #{cycle}: {e}"))?;
        if frontier.skyline.is_empty() {
            return Err(format!("control frontier is empty at cycle {cycle}"));
        }
        frontier_digests.push(frontier_digest(&frontier));
        let record = client
            .select(sid, 0)
            .map_err(|e| format!("control select #{cycle}: {e}"))?;
        records.push(record);
    }
    let history = client
        .history(sid)
        .map_err(|e| format!("control history: {e}"))?;
    if history != records {
        return Err("control history disagrees with its own selects".to_string());
    }
    incarnation.kill();
    let _ = fs::remove_dir_all(&dir);
    Ok(Control {
        frontier_digests,
        records,
    })
}

/// The injected recovery bug for the mutation canary: with
/// `SIMLAB_MUTATE` set, every restart first tampers with the on-disk
/// snapshot (bumping the last recorded score) in a way that still passes
/// the snapshot consistency check — only the control-run comparison can
/// catch it. CI asserts the lab *fails* under this mutation.
fn mutation_enabled() -> bool {
    std::env::var_os("SIMLAB_MUTATE").is_some_and(|v| !v.is_empty())
}

fn mutate_snapshot(dir: &Path) {
    let path = dir.join("sessions.json");
    let Ok(text) = fs::read_to_string(&path) else {
        return;
    };
    let Ok(mut snapshot) = ManagerSnapshot::from_json_str(&text) else {
        return;
    };
    for session in snapshot.sessions.iter_mut().rev() {
        if let Some(last) = session.history.last_mut() {
            match last.scores.first_mut() {
                Some(score) => *score += 1.0,
                None => last.selected.push('~'),
            }
            let _ = fs::write(&path, snapshot.to_json_string());
            return;
        }
    }
}

/// What a failed client op tells the runner to do next.
enum Next {
    /// Transient (socket error or exhausted `503`): reconnect and retry.
    Retry,
    /// `409 nothing_explored`: the select's exploration was lost to a
    /// restart or consumed by a select whose response we never saw —
    /// explore again, then retry.
    ReExplore,
    /// An invariant violation: undecodable body or an undocumented error.
    Fatal(String),
}

fn classify(error: &ClientError) -> Next {
    match error {
        ClientError::Io(_) => Next::Retry,
        ClientError::Api { status: 503, .. } => Next::Retry,
        ClientError::Api { code, .. } if code == "nothing_explored" => Next::ReExplore,
        ClientError::Decode(message) => Next::Fatal(format!("garbage response body: {message}")),
        ClientError::Api {
            status,
            code,
            message,
        } => Next::Fatal(format!("unexpected api error {status} ({code}): {message}")),
    }
}

struct Lab<'a> {
    cfg: &'a LabConfig,
    plan: &'a FaultPlan,
    control: &'a Control,
    dir: PathBuf,
    proxy: FaultProxy,
    workload: Client,
    incarnation: Option<Incarnation>,
    sid: u64,
    seen_handles: BTreeSet<u64>,
    completed: usize,
    fault_cursor: usize,
    quarantines: usize,
    restarts: usize,
}

impl Lab<'_> {
    fn fail(&self, stage: &str, message: impl Into<String>) -> LabFailure {
        LabFailure {
            seed: self.plan.seed,
            stage: stage.to_string(),
            message: message.into(),
            schedule: self.plan.describe(),
            applied: self.proxy.log(),
        }
    }

    fn addr(&self) -> std::net::SocketAddr {
        self.incarnation.as_ref().expect("live incarnation").addr
    }

    /// A fresh fault-free connection straight to the current server
    /// incarnation — the runner's omniscient observer for invariant
    /// checks, deliberately outside the fault path.
    fn oracle(&self) -> Result<Client, LabFailure> {
        Client::connect_with(
            self.addr(),
            Duration::from_secs(10),
            Arc::new(SystemClock::new()),
            RetryPolicy::none(),
        )
        .map_err(|e| self.fail("oracle", format!("connecting oracle client: {e}")))
    }

    fn note_new_handle(&mut self, stage: &str, id: u64) -> Result<(), LabFailure> {
        if self.seen_handles.contains(&id) {
            return Err(self.fail(stage, format!("session handle {id} was reused")));
        }
        if let Some(&max) = self.seen_handles.iter().next_back() {
            if id <= max {
                return Err(self.fail(
                    stage,
                    format!("session handle {id} is not monotonic (saw {max} earlier)"),
                ));
            }
        }
        self.seen_handles.insert(id);
        Ok(())
    }

    /// Runs `op` with reconnect-and-retry on transient failures; every
    /// failure must classify as a documented one or the run fails.
    fn attempt<T>(
        &mut self,
        stage: &str,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
        mut on_transient: impl FnMut(&mut Self) -> Result<Option<T>, LabFailure>,
        mut on_reexplore: impl FnMut(&mut Self) -> Result<(), LabFailure>,
    ) -> Result<T, LabFailure> {
        for _ in 0..self.cfg.op_attempts {
            match op(&mut self.workload) {
                Ok(value) => return Ok(value),
                Err(error) => match classify(&error) {
                    Next::Retry => {
                        let _ = self.workload.reconnect();
                        if let Some(value) = on_transient(self)? {
                            return Ok(value);
                        }
                    }
                    Next::ReExplore => {
                        let _ = self.workload.reconnect();
                        on_reexplore(self)?;
                    }
                    Next::Fatal(message) => return Err(self.fail(stage, message)),
                },
            }
        }
        Err(self.fail(
            stage,
            format!(
                "op did not complete within {} attempts (possible hang or starvation)",
                self.cfg.op_attempts
            ),
        ))
    }

    fn op_create(&mut self, stage: &str) -> Result<(), LabFailure> {
        let id = self.attempt(
            stage,
            |c| c.create(None),
            |_| Ok(None),
            |lab| Err(lab.fail("create", "nothing_explored on a create")),
        )?;
        self.note_new_handle(stage, id)?;
        self.sid = id;
        Ok(())
    }

    fn op_explore(&mut self) -> Result<(), LabFailure> {
        let sid = self.sid;
        let frontier = self.attempt(
            "explore",
            move |c| c.explore(sid),
            |_| Ok(None),
            |lab| Err(lab.fail("explore", "nothing_explored on an explore")),
        )?;
        let digest = frontier_digest(&frontier);
        let expected = &self.control.frontier_digests[self.completed];
        if digest != *expected {
            return Err(self.fail(
                "explore",
                format!(
                    "frontier diverges from control at cycle {} (got {digest}, control {expected})",
                    self.completed + 1
                ),
            ));
        }
        Ok(())
    }

    /// After a failed select we cannot know whether it landed — ask the
    /// server directly and fast-forward if it did.
    fn resync_completed(&mut self) -> Result<bool, LabFailure> {
        let mut oracle = self.oracle()?;
        let sid = self.sid;
        let history = oracle
            .history(sid)
            .map_err(|e| self.fail("resync", format!("oracle history: {e}")))?;
        if history != self.control.records[..history.len().min(self.control.records.len())]
            || history.len() > self.control.records.len()
        {
            return Err(self.fail(
                "resync",
                format!(
                    "server history diverges from control after {} records",
                    history.len()
                ),
            ));
        }
        if history.len() > self.completed {
            self.completed = history.len();
            return Ok(true);
        }
        Ok(false)
    }

    fn op_select(&mut self) -> Result<(), LabFailure> {
        let sid = self.sid;
        let before = self.completed;
        let outcome = self.attempt(
            "select",
            move |c| c.select(sid, 0).map(Some),
            |lab| {
                if lab.resync_completed()? {
                    Ok(Some(None)) // the select landed; response was lost
                } else {
                    Ok(None)
                }
            },
            |lab| {
                // Exploration lost (restart) or consumed (select landed but
                // the resync already accounted for it): explore again.
                lab.op_explore()
            },
        )?;
        if let Some(record) = outcome {
            let expected = &self.control.records[before];
            if record != *expected {
                return Err(self.fail(
                    "select",
                    format!(
                        "iteration record diverges from control at cycle {}: got {}, control {}",
                        before + 1,
                        record.to_json_string(),
                        expected.to_json_string()
                    ),
                ));
            }
            self.completed = before + 1;
        }
        Ok(())
    }

    fn op_final_history(&mut self) -> Result<Vec<IterationRecord>, LabFailure> {
        let sid = self.sid;
        let history = self.attempt(
            "history",
            move |c| c.history(sid),
            |_| Ok(None),
            |lab| Err(lab.fail("history", "nothing_explored on a history read")),
        )?;
        if history != self.control.records {
            return Err(self.fail(
                "history",
                format!(
                    "final history diverges from control ({} vs {} records)",
                    history.len(),
                    self.control.records.len()
                ),
            ));
        }
        Ok(history)
    }

    /// Arms the torn-write hook when the upcoming op is the target of a
    /// torn-write fault — the tear must corrupt *that op's* snapshot save.
    fn arm_before_op(&mut self, op_index: usize) {
        let Some((fault_op, fault)) = self.plan.process.get(self.fault_cursor) else {
            return;
        };
        if *fault_op != op_index {
            return;
        }
        let hook = &self.incarnation.as_ref().expect("live incarnation").hook;
        match fault {
            ProcessFault::TornTempThenKill { keep_bytes } => hook.arm(TornWrite::TempOnly {
                keep_bytes: *keep_bytes,
            }),
            ProcessFault::TornFinalThenKill { keep_bytes } => hook.arm(TornWrite::Final {
                keep_bytes: *keep_bytes,
            }),
            ProcessFault::KillRestart => {}
        }
    }

    /// Fires the process fault scheduled after `op_index`, if any.
    fn fault_after_op(&mut self, op_index: usize) -> Result<(), LabFailure> {
        let Some((fault_op, fault)) = self.plan.process.get(self.fault_cursor) else {
            return Ok(());
        };
        if *fault_op != op_index {
            return Ok(());
        }
        let fault = fault.clone();
        self.fault_cursor += 1;
        match fault {
            ProcessFault::KillRestart => self.restart(false, false),
            ProcessFault::TornTempThenKill { .. } => self.restart(false, true),
            ProcessFault::TornFinalThenKill { .. } => self.restart(true, false),
        }
    }

    fn restart(
        &mut self,
        expect_quarantine: bool,
        rollback_allowed: bool,
    ) -> Result<(), LabFailure> {
        let incarnation = self.incarnation.take().expect("live incarnation");
        incarnation.kill();
        self.restarts += 1;
        if mutation_enabled() {
            mutate_snapshot(&self.dir);
        }
        let incarnation =
            Incarnation::start(&self.dir, self.cfg).map_err(|e| self.fail("restart", e))?;
        self.proxy.set_backend(incarnation.addr);
        self.incarnation = Some(incarnation);
        let mut oracle = self.oracle()?;
        let corrupt = self.dir.join("sessions.json.corrupt");
        if expect_quarantine {
            if !corrupt.exists() {
                return Err(self.fail(
                    "restart",
                    "torn final snapshot was not quarantined at startup",
                ));
            }
            let live = oracle
                .healthz()
                .map_err(|e| self.fail("restart", format!("healthz after quarantine: {e}")))?;
            if live != 0 {
                return Err(self.fail(
                    "restart",
                    format!("server restored {live} session(s) from a mangled snapshot"),
                ));
            }
            let counted = oracle
                .metric_value("poiesis_snapshot_quarantined_total")
                .map_err(|e| self.fail("restart", format!("quarantine metric: {e}")))?;
            if counted < 1.0 {
                return Err(self.fail(
                    "restart",
                    "quarantine happened but poiesis_snapshot_quarantined_total is 0",
                ));
            }
            let _ = fs::remove_file(&corrupt);
            self.quarantines += 1;
            // The snapshot lineage ends here: handles may legally restart.
            self.seen_handles.clear();
            self.completed = 0;
            self.op_create("create (post-quarantine)")?;
            return Ok(());
        }
        if corrupt.exists() {
            return Err(self.fail(
                "restart",
                "a cleanly written snapshot was quarantined on restart",
            ));
        }
        let history = match oracle.history(self.sid) {
            Ok(history) => history,
            Err(e) => {
                return Err(self.fail(
                    "restart",
                    format!("session {} lost across restart: {e}", self.sid),
                ))
            }
        };
        let floor = if rollback_allowed {
            self.completed.saturating_sub(1)
        } else {
            self.completed
        };
        if history.len() > self.completed || history.len() < floor {
            return Err(self.fail(
                "restart",
                format!(
                    "recovered {} cycle(s); the workload had {} durable (rollback allowed: {})",
                    history.len(),
                    self.completed,
                    rollback_allowed
                ),
            ));
        }
        if history != self.control.records[..history.len()] {
            return Err(self.fail("restart", "recovered history diverges from the control run"));
        }
        self.completed = history.len();
        // Handle-uniqueness probe: a fresh create must never reuse a
        // handle issued before the restart.
        let probe = oracle
            .create(None)
            .map_err(|e| self.fail("restart", format!("probe create: {e}")))?;
        self.note_new_handle("restart", probe)?;
        oracle
            .close(probe)
            .map_err(|e| self.fail("restart", format!("probe close: {e}")))?;
        Ok(())
    }
}

/// Runs one seed end to end. See the module docs for the invariants.
pub fn run_seed(seed: u64, cfg: &LabConfig) -> Result<LabReport, LabFailure> {
    let plan = FaultPlan::from_seed(seed, cfg.cycles, cfg.wire_slots);
    let bare_failure = |stage: &str, message: String| LabFailure {
        seed,
        stage: stage.to_string(),
        message,
        schedule: plan.describe(),
        applied: Vec::new(),
    };
    let control = control_run(cfg, seed).map_err(|e| bare_failure("control", e))?;

    let dir = lab_dir(seed, "faulted");
    reset_dir(&dir).map_err(|e| bare_failure("setup", format!("lab dir: {e}")))?;
    let clock = Arc::new(SimClock::new());
    let incarnation = Incarnation::start(&dir, cfg).map_err(|e| bare_failure("setup", e))?;
    let proxy = FaultProxy::spawn(
        plan.wire.clone(),
        incarnation.addr,
        Arc::clone(&clock),
        cfg.stall_hold,
    )
    .map_err(|e| bare_failure("setup", format!("proxy: {e}")))?;
    let workload = Client::connect_with(
        proxy.addr(),
        cfg.client_timeout,
        Arc::clone(&clock) as Arc<dyn Clock>,
        RetryPolicy::default(),
    )
    .map_err(|e| bare_failure("setup", format!("workload client: {e}")))?;

    let mut lab = Lab {
        cfg,
        plan: &plan,
        control: &control,
        dir: dir.clone(),
        proxy,
        workload,
        incarnation: Some(incarnation),
        sid: 0,
        seen_handles: BTreeSet::new(),
        completed: 0,
        fault_cursor: 0,
        quarantines: 0,
        restarts: 0,
    };

    // ---- nominal workload: create, then explore/select until the
    // workload has cfg.cycles durable cycles, then read history back.
    lab.arm_before_op(0);
    lab.op_create("create")?;
    lab.fault_after_op(0)?;
    let mut op_index = 1;
    let op_budget = 10 * (2 * cfg.cycles + 2);
    while lab.completed < cfg.cycles {
        if op_index > op_budget {
            return Err(lab.fail("workload", "runner did not converge within its op budget"));
        }
        lab.arm_before_op(op_index);
        lab.op_explore()?;
        lab.fault_after_op(op_index)?;
        op_index += 1;

        lab.arm_before_op(op_index);
        lab.op_select()?;
        lab.fault_after_op(op_index)?;
        op_index += 1;
    }
    let history = lab.op_final_history()?;

    // ---- the virtual-wait invariant: every Retry-After second the
    // client honoured (1 s per retry here) is on the sim clock.
    let retries = lab.workload.retries();
    if clock.total_slept() != Duration::from_secs(retries) {
        return Err(lab.fail(
            "clock",
            format!(
                "client waited {:?} virtually for {retries} retries (expected {retries} s)",
                clock.total_slept()
            ),
        ));
    }

    // ---- teardown + report
    let exchanges = lab.proxy.exchanges();
    if let Some(incarnation) = lab.incarnation.take() {
        incarnation.kill();
    }
    lab.proxy.stop();
    let _ = fs::remove_dir_all(&dir);

    let outcome = format!(
        "schedule={} exchanges={exchanges} retries={retries} quarantines={} restarts={} history={}",
        plan.describe(),
        lab.quarantines,
        lab.restarts,
        history
            .iter()
            .map(|r| r.to_json_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    Ok(LabReport {
        seed,
        cycles: cfg.cycles,
        wire_exchanges: exchanges,
        client_retries: retries,
        virtual_wait: clock.total_slept(),
        quarantines: lab.quarantines,
        restarts: lab.restarts,
        outcome_digest: fnv64(&outcome),
        schedule: plan.describe(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv64(""), "cbf29ce484222325");
        assert_eq!(fnv64("poiesis"), fnv64("poiesis"));
        assert_ne!(fnv64("a"), fnv64("b"));
    }

    #[test]
    fn mutation_tamper_keeps_the_snapshot_loadable_but_divergent() {
        let dir = std::env::temp_dir().join(format!("simlab-mutate-{}", std::process::id()));
        reset_dir(&dir).unwrap();
        let record = IterationRecord {
            cycle: 1,
            selected: "alt".to_string(),
            integrated: vec!["p".to_string()],
            scores: vec![0.5],
        };
        let snapshot = ManagerSnapshot {
            next_id: 2,
            sessions: vec![poiesis::SessionSnapshot {
                id: 1,
                base_name: "flow".to_string(),
                flow_xlm: "<xlm/>".to_string(),
                request: poiesis::PlanRequest::default(),
                history: vec![record.clone()],
            }],
        };
        fs::write(dir.join("sessions.json"), snapshot.to_json_string()).unwrap();
        mutate_snapshot(&dir);
        let tampered =
            ManagerSnapshot::from_json_str(&fs::read_to_string(dir.join("sessions.json")).unwrap())
                .unwrap();
        assert!(tampered.validate().is_ok(), "tamper must stay consistent");
        assert_ne!(
            tampered.sessions[0].history[0], record,
            "tamper must diverge from the original"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
