//! `simlab` — a deterministic, seed-driven fault-injection lab for the
//! POIESIS planning service.
//!
//! The lab runs the *unmodified* production stack — `poiesis-server`'s
//! HTTP server, client, and snapshot persistence over the real
//! `poiesis::SessionManager` — and injects failure at its boundaries:
//!
//! - **wire faults** (drop, virtual delay, truncate-mid-body, stall,
//!   synthetic `503` sheds) through a proxying transport
//!   ([`proxy::FaultProxy`]) between the client and the server;
//! - **process faults** (scripted kill/restart against the
//!   `--state-dir`, torn snapshot writes injected into the
//!   temp+rename path via the store's test-only
//!   [`TornWriteHook`](poiesis_server::TornWriteHook)).
//!
//! Everything injected is decided by expanding a `u64` seed through the
//! vendored `rand` ([`plan::FaultPlan`]), and every wait runs on virtual
//! time ([`clock::SimClock`]), so a run is **reproducible**: the same
//! seed yields a byte-identical fault schedule and an identical outcome
//! digest. A failure prints the seed, the decoded schedule, and the
//! replay command:
//!
//! ```text
//! cargo test -p simlab --test lab -- --seed 42
//! ```
//!
//! The invariants the runner ([`lab::run_seed`]) enforces, and how to
//! add a fault kind, are documented in `docs/TESTING.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod lab;
pub mod plan;
pub mod proxy;

pub use clock::SimClock;
pub use lab::{fnv64, run_seed, LabConfig, LabFailure, LabReport};
pub use plan::{FaultPlan, ProcessFault, WireFault};
pub use proxy::FaultProxy;
