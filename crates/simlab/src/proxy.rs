//! The wire-fault proxy.
//!
//! [`FaultProxy`] sits between the lab's [`Client`](poiesis_server::Client)
//! and the real server, speaking just enough HTTP/1.1 to delimit
//! exchanges (head + `Content-Length` body — the only framing either
//! side of this workspace emits). Each exchange draws its fault from the
//! plan by a global exchange counter, so the schedule is a pure function
//! of the seed and of how many requests the client (including its own
//! internal `503` retries) has sent — not of thread timing.
//!
//! The backend address is retargetable because the server under test is
//! killed and restarted on fresh ports mid-run.

use crate::clock::SimClock;
use crate::plan::WireFault;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Reads one HTTP message (request or response) off `reader`: head up to
/// the blank line, then exactly `Content-Length` body bytes. Returns the
/// raw bytes, or `None` on a clean EOF before the first byte.
fn read_message(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Vec<u8>>> {
    let mut message = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            if message.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed mid-head",
            ));
        }
        message.extend_from_slice(line.as_bytes());
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() && message.len() > line.len() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    let head_len = message.len();
    message.resize(head_len + content_length, 0);
    reader.read_exact(&mut message[head_len..])?;
    Ok(Some(message))
}

/// Where the response head ends (after `\r\n\r\n`), or the full length
/// when no body separator is found.
fn head_end(message: &[u8]) -> usize {
    message
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .unwrap_or(message.len())
}

struct ProxyState {
    wire: Vec<WireFault>,
    backend: Mutex<SocketAddr>,
    clock: Arc<SimClock>,
    /// Global exchange counter — the index into the wire schedule.
    exchanges: AtomicUsize,
    /// Human-readable log of every fault applied, in exchange order.
    log: Mutex<Vec<String>>,
    stop: AtomicBool,
    stall_hold: Duration,
}

impl ProxyState {
    fn record(&self, index: usize, fault: &WireFault) {
        self.log
            .lock()
            .expect("proxy log")
            .push(format!("exchange {index}: {fault}"));
    }
}

/// A listening fault injector; see the module docs.
pub struct FaultProxy {
    addr: SocketAddr,
    state: Arc<ProxyState>,
    accept: Option<thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds on a loopback ephemeral port and starts proxying to
    /// `backend`, applying `wire` faults round-robin by exchange index.
    /// `stall_hold` is how long a [`WireFault::Stall`] holds the
    /// connection open in real time; it must exceed the client's read
    /// timeout for the stall to present as a hang.
    pub fn spawn(
        wire: Vec<WireFault>,
        backend: SocketAddr,
        clock: Arc<SimClock>,
        stall_hold: Duration,
    ) -> io::Result<FaultProxy> {
        assert!(!wire.is_empty(), "a fault plan needs at least one slot");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ProxyState {
            wire,
            backend: Mutex::new(backend),
            clock,
            exchanges: AtomicUsize::new(0),
            log: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            stall_hold,
        });
        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("simlab-proxy".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_state.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { break };
                    let conn_state = Arc::clone(&accept_state);
                    let _ = thread::Builder::new()
                        .name("simlab-proxy-conn".to_string())
                        .spawn(move || {
                            let _ = serve_connection(&conn_state, conn);
                        });
                }
            })?;
        Ok(FaultProxy {
            addr,
            state,
            accept: Some(accept),
        })
    }

    /// Where clients should connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Points subsequent exchanges at a new server incarnation.
    pub fn set_backend(&self, backend: SocketAddr) {
        *self.state.backend.lock().expect("proxy backend") = backend;
    }

    /// Exchanges seen so far.
    pub fn exchanges(&self) -> usize {
        self.state.exchanges.load(Ordering::SeqCst)
    }

    /// The applied-fault log, one line per exchange.
    pub fn log(&self) -> Vec<String> {
        self.state.log.lock().expect("proxy log").clone()
    }

    /// Stops accepting and joins the accept thread. In-flight exchange
    /// threads finish on their own (bounded by the stall hold).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.accept.take() {
            let _ = join.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown();
        }
    }
}

/// One client connection: exchanges until EOF or a connection-killing
/// fault.
fn serve_connection(state: &ProxyState, client: TcpStream) -> io::Result<()> {
    client.set_nodelay(true)?;
    client.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(client.try_clone()?);
    let mut writer = client;
    loop {
        let Some(request) = read_message(&mut reader)? else {
            return Ok(()); // client closed between exchanges
        };
        let index = state.exchanges.fetch_add(1, Ordering::SeqCst);
        let fault = state.wire[index % state.wire.len()].clone();
        state.record(index, &fault);
        match fault {
            WireFault::Drop => return Ok(()),
            WireFault::Stall => {
                thread::sleep(state.stall_hold);
                return Ok(());
            }
            WireFault::Reject503 => {
                let body = r#"{"error":{"code":"overloaded","message":"injected shed"}}"#;
                let head = format!(
                    "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                writer.write_all(head.as_bytes())?;
                writer.write_all(body.as_bytes())?;
                writer.flush()?;
                return Ok(()); // sheds close, like the real server
            }
            WireFault::Forward | WireFault::Delay { .. } | WireFault::TruncateBody { .. } => {
                if let WireFault::Delay { millis } = fault {
                    state.clock.advance(Duration::from_millis(millis));
                }
                let backend = *state.backend.lock().expect("proxy backend");
                let upstream = TcpStream::connect(backend)?;
                upstream.set_nodelay(true)?;
                upstream.set_read_timeout(Some(Duration::from_secs(10)))?;
                let mut up_reader = BufReader::new(upstream.try_clone()?);
                let mut up_writer = upstream;
                up_writer.write_all(&request)?;
                up_writer.flush()?;
                let Some(response) = read_message(&mut up_reader)? else {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "backend closed without responding",
                    ));
                };
                if let WireFault::TruncateBody { keep_pct } = fault {
                    let head = head_end(&response);
                    let body_len = response.len() - head;
                    // Always at least one byte short of complete, so the
                    // client observes a truncation rather than a success.
                    let keep = (body_len * keep_pct as usize / 100).min(body_len.saturating_sub(1));
                    writer.write_all(&response[..head + keep])?;
                    writer.flush()?;
                    return Ok(());
                }
                writer.write_all(&response)?;
                writer.flush()?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poiesis_server::Clock;

    fn echo_backend() -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = thread::spawn(move || {
            // Serve a fixed number of one-shot connections, then exit.
            for _ in 0..8 {
                let Ok((conn, _)) = listener.accept() else {
                    return;
                };
                let mut reader = BufReader::new(conn.try_clone().unwrap());
                while let Ok(Some(_)) = read_message(&mut reader) {
                    let body = r#"{"ok":true}"#;
                    let response = format!(
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let mut w = conn.try_clone().unwrap();
                    if w.write_all(response.as_bytes()).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, join)
    }

    fn roundtrip(addr: SocketAddr) -> io::Result<Vec<u8>> {
        let conn = TcpStream::connect(addr)?;
        conn.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut w = conn.try_clone()?;
        w.write_all(b"GET /x HTTP/1.1\r\nHost: t\r\n\r\n")?;
        let mut reader = BufReader::new(conn);
        match read_message(&mut reader)? {
            Some(bytes) => Ok(bytes),
            None => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed")),
        }
    }

    #[test]
    fn faults_apply_in_schedule_order() {
        let (backend, _join) = echo_backend();
        let clock = Arc::new(SimClock::new());
        let proxy = FaultProxy::spawn(
            vec![
                WireFault::Forward,
                WireFault::Drop,
                WireFault::TruncateBody { keep_pct: 50 },
                WireFault::Delay { millis: 250 },
            ],
            backend,
            Arc::clone(&clock),
            Duration::from_millis(100),
        )
        .unwrap();

        // Exchange 0: forwarded intact.
        let ok = roundtrip(proxy.addr()).unwrap();
        assert!(ok.ends_with(br#"{"ok":true}"#));
        // Exchange 1: dropped — no response.
        assert!(roundtrip(proxy.addr()).is_err());
        // Exchange 2: truncated — read_message hits EOF mid-body.
        assert!(roundtrip(proxy.addr()).is_err());
        // Exchange 3: delayed virtually, then forwarded intact.
        let ok = roundtrip(proxy.addr()).unwrap();
        assert!(ok.ends_with(br#"{"ok":true}"#));
        assert_eq!(clock.elapsed(), Duration::from_millis(250));

        assert_eq!(proxy.exchanges(), 4);
        let log = proxy.log();
        assert_eq!(log.len(), 4);
        assert!(log[1].contains("drop"), "log: {log:?}");
        proxy.stop();
    }

    #[test]
    fn reject503_carries_retry_after_and_closes() {
        let (backend, _join) = echo_backend();
        let proxy = FaultProxy::spawn(
            vec![WireFault::Reject503],
            backend,
            Arc::new(SimClock::new()),
            Duration::from_millis(100),
        )
        .unwrap();
        let response = roundtrip(proxy.addr()).unwrap();
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 503"), "{text}");
        assert!(text.contains("Retry-After: 1"), "{text}");
        proxy.stop();
    }
}
