//! Seed → fault schedule.
//!
//! Everything a lab run injects is decided *up front* by expanding a
//! `u64` seed through the vendored `rand` (`SmallRng`, a fixed
//! xoshiro-family generator, so the expansion is stable across
//! platforms and releases). The resulting [`FaultPlan`] is pure data:
//! printing it shows exactly what a run will do, and the same seed
//! always produces a byte-identical schedule — the property the
//! determinism test in `tests/lab.rs` pins.
//!
//! # Op indexing
//!
//! Process faults are keyed to *logical operation indices* of the
//! scenario runner's nominal workload: op `0` is the session create, op
//! `2k-1` is the explore of cycle `k`, op `2k` is the select of cycle
//! `k`. The parity invariant (odd = explore, even ≥ 2 = select) holds
//! even when recovery repeats cycles, so a torn-write fault aimed at an
//! even index always lands on a select — a mutation whose snapshot save
//! it can corrupt.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::fmt;

/// What the proxy does to one client↔server exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFault {
    /// Pass the exchange through untouched.
    Forward,
    /// Advance virtual time by `millis`, then forward untouched — models
    /// network latency without costing wall-clock time.
    Delay {
        /// Virtual latency in milliseconds.
        millis: u64,
    },
    /// Read the request, then close the connection without responding.
    Drop,
    /// Forward, but cut the response body short: keep `keep_pct`% of the
    /// body bytes (always at least one byte short of complete), then
    /// close.
    TruncateBody {
        /// Percentage of the response body to deliver.
        keep_pct: u8,
    },
    /// Read the request and go silent until the client's read timeout
    /// fires, then close — the "hung server" case.
    Stall,
    /// Answer `503` + `Retry-After: 1` ourselves without consulting the
    /// server — deterministically exercises the client's shed-retry
    /// path.
    Reject503,
}

impl fmt::Display for WireFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireFault::Forward => write!(f, "forward"),
            WireFault::Delay { millis } => write!(f, "delay({millis}ms)"),
            WireFault::Drop => write!(f, "drop"),
            WireFault::TruncateBody { keep_pct } => write!(f, "truncate({keep_pct}%)"),
            WireFault::Stall => write!(f, "stall"),
            WireFault::Reject503 => write!(f, "reject503"),
        }
    }
}

/// A process-level fault, fired at a logical op boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessFault {
    /// Stop the server after the op completes and restart it from its
    /// `--state-dir`. Recovery must land on a state bit-identical to the
    /// control run at the recovered cycle count.
    KillRestart,
    /// Arm a torn write for the op's snapshot save — the crash happens
    /// *before* the temp file is renamed, so the previous snapshot
    /// survives intact — then kill and restart. Recovery rolls back to
    /// the previous consistent state.
    TornTempThenKill {
        /// Bytes of the new snapshot that reach the temp file.
        keep_bytes: usize,
    },
    /// Arm a torn write that lands partial bytes in the *final* snapshot
    /// path (a non-atomic rename, a lying disk), then kill and restart.
    /// Startup must quarantine the mangled file and serve empty rather
    /// than load half a snapshot.
    TornFinalThenKill {
        /// Bytes of the snapshot that reach `sessions.json`.
        keep_bytes: usize,
    },
}

impl fmt::Display for ProcessFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessFault::KillRestart => write!(f, "kill+restart"),
            ProcessFault::TornTempThenKill { keep_bytes } => {
                write!(f, "torn-temp({keep_bytes}B)+kill+restart")
            }
            ProcessFault::TornFinalThenKill { keep_bytes } => {
                write!(f, "torn-final({keep_bytes}B)+kill+restart")
            }
        }
    }
}

/// The full, deterministic schedule for one lab run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was expanded from.
    pub seed: u64,
    /// Wire faults, applied to exchange `i` as `wire[i % wire.len()]`.
    pub wire: Vec<WireFault>,
    /// Process faults as `(op index, fault)`, ascending and unique by
    /// op index.
    pub process: Vec<(usize, ProcessFault)>,
}

impl FaultPlan {
    /// Expands `seed` into a schedule for a workload of `cycles`
    /// explore/select cycles, with `wire_slots` wire-fault slots.
    ///
    /// The distribution keeps runs terminating: forwards dominate, and a
    /// post-pass forces every fourth consecutive non-forward slot back to
    /// `Forward` so no op can starve behind an endless fault run.
    pub fn from_seed(seed: u64, cycles: usize, wire_slots: usize) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut wire = Vec::with_capacity(wire_slots);
        for _ in 0..wire_slots {
            let roll = rng.gen_range(0..100u32);
            wire.push(match roll {
                0..=54 => WireFault::Forward,
                55..=66 => WireFault::Delay {
                    millis: rng.gen_range(20..2000),
                },
                67..=76 => WireFault::Reject503,
                77..=84 => WireFault::Drop,
                85..=94 => WireFault::TruncateBody {
                    keep_pct: rng.gen_range(5..95),
                },
                _ => WireFault::Stall,
            });
        }
        // Guarantee forward progress: cap consecutive faults at three.
        let mut consecutive = 0usize;
        for slot in &mut wire {
            if *slot == WireFault::Forward || matches!(slot, WireFault::Delay { .. }) {
                consecutive = 0;
            } else if consecutive == 2 {
                *slot = WireFault::Forward;
                consecutive = 0;
            } else {
                consecutive += 1;
            }
        }

        // Process faults: up to two, at distinct op indices. Torn writes
        // only make sense on a mutating op's save, so they are pinned to
        // select indices (even, ≥ 2); kills can land anywhere.
        let last_op = 2 * cycles;
        let mut process: Vec<(usize, ProcessFault)> = Vec::new();
        let events = rng.gen_range(0..=2usize);
        for _ in 0..events {
            let (op, fault) = if cycles > 0 && rng.gen_bool(0.45) {
                let select = 2 * rng.gen_range(1..=cycles);
                let keep_bytes = rng.gen_range(1..=64usize);
                let fault = if rng.gen_bool(0.5) {
                    ProcessFault::TornTempThenKill { keep_bytes }
                } else {
                    ProcessFault::TornFinalThenKill { keep_bytes }
                };
                (select, fault)
            } else {
                (rng.gen_range(0..=last_op), ProcessFault::KillRestart)
            };
            if !process.iter().any(|(existing, _)| *existing == op) {
                process.push((op, fault));
            }
        }
        process.sort_by_key(|(op, _)| *op);
        FaultPlan {
            seed,
            wire,
            process,
        }
    }

    /// The decoded schedule, one line — what a failing run prints so the
    /// fault sequence can be read without re-expanding the seed.
    pub fn describe(&self) -> String {
        let wire = self
            .wire
            .iter()
            .enumerate()
            .map(|(i, f)| format!("{i}:{f}"))
            .collect::<Vec<_>>()
            .join(" ");
        let process = if self.process.is_empty() {
            "none".to_string()
        } else {
            self.process
                .iter()
                .map(|(op, f)| format!("after-op-{op}:{f}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        format!("seed={} wire=[{wire}] process=[{process}]", self.seed)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_expands_to_a_byte_identical_schedule() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = FaultPlan::from_seed(seed, 3, 24);
            let b = FaultPlan::from_seed(seed, 3, 24);
            assert_eq!(a, b);
            assert_eq!(a.describe(), b.describe());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let plans: Vec<_> = (0..16u64)
            .map(|s| FaultPlan::from_seed(s, 3, 24).describe())
            .collect();
        let distinct: std::collections::BTreeSet<_> = plans.iter().collect();
        assert!(distinct.len() > 8, "seeds barely vary the schedule");
    }

    #[test]
    fn no_schedule_starves_an_op_behind_endless_faults() {
        for seed in 0..200u64 {
            let plan = FaultPlan::from_seed(seed, 3, 24);
            let mut consecutive = 0;
            for slot in &plan.wire {
                let progresses = matches!(slot, WireFault::Forward | WireFault::Delay { .. });
                consecutive = if progresses { 0 } else { consecutive + 1 };
                assert!(consecutive <= 3, "seed {seed}: {}", plan.describe());
            }
        }
    }

    #[test]
    fn torn_faults_only_target_select_ops() {
        for seed in 0..200u64 {
            let plan = FaultPlan::from_seed(seed, 3, 24);
            for (op, fault) in &plan.process {
                assert!(*op <= 6);
                if !matches!(fault, ProcessFault::KillRestart) {
                    assert!(*op >= 2 && op % 2 == 0, "torn fault at op {op}");
                }
            }
        }
    }
}
