//! Virtual time for the lab.
//!
//! The server's client and retry machinery take time through the
//! [`Clock`] trait; production code gets `SystemClock`, the lab installs
//! a [`SimClock`] so every `Retry-After` wait and injected delay is an
//! atomic counter bump instead of a real sleep. A whole fault schedule
//! that "waits" tens of seconds replays in milliseconds, and the waited
//! total is itself an assertable, deterministic output of the run.

use poiesis_server::Clock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A [`Clock`] that never blocks: `sleep` advances a virtual nanosecond
/// counter and returns immediately.
#[derive(Debug, Default)]
pub struct SimClock {
    /// Virtual nanoseconds since the clock was created.
    now_nanos: AtomicU64,
    /// Virtual nanoseconds spent inside `sleep` specifically, so the lab
    /// can assert that retries waited *virtually* rather than in
    /// wall-clock time.
    slept_nanos: AtomicU64,
}

impl SimClock {
    /// A fresh clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances virtual time without counting it as a sleep — what the
    /// proxy uses for injected `Delay` faults.
    pub fn advance(&self, by: Duration) {
        self.now_nanos
            .fetch_add(by.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total virtual time spent in [`Clock::sleep`].
    pub fn total_slept(&self) -> Duration {
        Duration::from_nanos(self.slept_nanos.load(Ordering::Relaxed))
    }
}

impl Clock for SimClock {
    fn sleep(&self, duration: Duration) {
        let nanos = duration.as_nanos() as u64;
        self.now_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.slept_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.now_nanos.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn sleeps_are_instant_and_accounted() {
        let clock = Arc::new(SimClock::new());
        let wall = Instant::now();
        clock.sleep(Duration::from_secs(3600));
        clock.advance(Duration::from_secs(10));
        assert!(wall.elapsed() < Duration::from_secs(1));
        assert_eq!(clock.total_slept(), Duration::from_secs(3600));
        assert_eq!(clock.elapsed(), Duration::from_secs(3610));
    }
}
