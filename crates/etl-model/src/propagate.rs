//! Schema propagation: computes the output schema of every operation and
//! checks the consistency FCP deployment must preserve (§3 of the paper:
//! "ensuring the consistency between data schemata").

use crate::expr::BindError;
use crate::flow::EtlFlow;
use crate::op::OpKind;
use crate::types::Schema;
use std::fmt;

/// Schema-propagation failures, attributed to the offending operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// An expression referenced a missing attribute.
    Bind {
        /// Operation name.
        op: String,
        /// Missing attribute.
        column: String,
    },
    /// A projection/aggregation referenced a missing attribute.
    MissingAttr {
        /// Operation name.
        op: String,
        /// Missing attribute.
        column: String,
    },
    /// A derive would have introduced a duplicate attribute name.
    DuplicateAttr {
        /// Operation name.
        op: String,
        /// Clashing attribute.
        column: String,
    },
    /// Merge inputs disagree on their schemas.
    MergeMismatch {
        /// Operation name.
        op: String,
    },
    /// The flow was structurally broken (cycle) before schemas could run.
    NotADag,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Bind { op, column } => {
                write!(f, "`{op}`: expression references unknown column `{column}`")
            }
            SchemaError::MissingAttr { op, column } => {
                write!(f, "`{op}`: attribute `{column}` not found in input schema")
            }
            SchemaError::DuplicateAttr { op, column } => {
                write!(f, "`{op}`: attribute `{column}` already exists")
            }
            SchemaError::MergeMismatch { op } => {
                write!(f, "`{op}`: merge inputs have mismatching schemas")
            }
            SchemaError::NotADag => write!(f, "flow graph has a cycle"),
        }
    }
}

impl std::error::Error for SchemaError {}

fn bind_err(op: &str, e: BindError) -> SchemaError {
    match e {
        BindError::UnknownColumn(c) => SchemaError::Bind {
            op: op.to_string(),
            column: c,
        },
    }
}

/// Computes the output schema of every operation, in a dense table indexed
/// by [`flowgraph::NodeId::index`]. Operations whose ids were removed hold `None`.
pub fn propagate_schemas(flow: &EtlFlow) -> Result<Vec<Option<Schema>>, SchemaError> {
    let order = flow.topo_order().map_err(|_| SchemaError::NotADag)?;
    let mut out: Vec<Option<Schema>> = vec![None; flow.graph.node_bound()];
    for n in order {
        let op = flow.op(n).expect("live node");
        let inputs: Vec<&Schema> = flow
            .graph
            .predecessors(n)
            .map(|p| {
                out[p.index()]
                    .as_ref()
                    .expect("topological order guarantees predecessor schemas")
            })
            .collect();
        let schema = output_schema(&op.name, &op.kind, &inputs)?;
        out[n.index()] = Some(schema);
    }
    Ok(out)
}

/// Output schema of one operation given its input schemas (in predecessor
/// order). Exposed for pattern configuration, which must compute the schema
/// at an application point before instantiating an FCP there.
pub fn output_schema(name: &str, kind: &OpKind, inputs: &[&Schema]) -> Result<Schema, SchemaError> {
    let first = |op: &str| -> Result<Schema, SchemaError> {
        inputs
            .first()
            .map(|s| (*s).clone())
            .ok_or_else(|| SchemaError::MissingAttr {
                op: op.to_string(),
                column: "<input>".to_string(),
            })
    };
    Ok(match kind {
        OpKind::Extract { schema, .. } => schema.clone(),
        OpKind::Load { .. } => first(name)?,
        OpKind::Filter { predicate } => {
            let s = first(name)?;
            predicate.bind(&s).map_err(|e| bind_err(name, e))?;
            s
        }
        OpKind::Project { keep } => {
            let s = first(name)?;
            s.project(keep).map_err(|c| SchemaError::MissingAttr {
                op: name.to_string(),
                column: c,
            })?
        }
        OpKind::Derive { outputs } => {
            let mut s = first(name)?;
            for (new_name, expr) in outputs {
                let dtype = expr.result_type(&s).map_err(|e| bind_err(name, e))?;
                expr.bind(&s).map_err(|e| bind_err(name, e))?;
                s = s
                    .extend_with(crate::types::Attribute::new(new_name.clone(), dtype))
                    .map_err(|c| SchemaError::DuplicateAttr {
                        op: name.to_string(),
                        column: c,
                    })?;
            }
            s
        }
        OpKind::Convert { column, to } => {
            let s = first(name)?;
            if !s.contains(column) {
                return Err(SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: column.clone(),
                });
            }
            Schema::new(
                s.attrs()
                    .iter()
                    .map(|a| {
                        let mut a = a.clone();
                        if &a.name == column {
                            a.dtype = *to;
                        }
                        a
                    })
                    .collect(),
            )
        }
        OpKind::Join {
            left_key,
            right_key,
        } => {
            if inputs.len() < 2 {
                return Err(SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: "<second input>".to_string(),
                });
            }
            let (l, r) = (inputs[0], inputs[1]);
            if !l.contains(left_key) {
                return Err(SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: left_key.clone(),
                });
            }
            if !r.contains(right_key) {
                return Err(SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: right_key.clone(),
                });
            }
            l.join_concat(r, "r")
        }
        OpKind::Aggregate { group_by, aggs } => {
            let s = first(name)?;
            let mut attrs = Vec::new();
            for g in group_by {
                attrs.push(
                    s.attr(g)
                        .ok_or_else(|| SchemaError::MissingAttr {
                            op: name.to_string(),
                            column: g.clone(),
                        })?
                        .clone(),
                );
            }
            for (out_name, func, input_attr) in aggs {
                let input = s.attr(input_attr).ok_or_else(|| SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: input_attr.clone(),
                })?;
                attrs.push(crate::types::Attribute::new(
                    out_name.clone(),
                    func.result_type(input.dtype),
                ));
            }
            Schema::new(attrs)
        }
        OpKind::Sort { by } => {
            let s = first(name)?;
            for b in by {
                if !s.contains(b) {
                    return Err(SchemaError::MissingAttr {
                        op: name.to_string(),
                        column: b.clone(),
                    });
                }
            }
            s
        }
        OpKind::Router { predicate } => {
            let s = first(name)?;
            predicate.bind(&s).map_err(|e| bind_err(name, e))?;
            s
        }
        OpKind::Merge => {
            let s = first(name)?;
            for other in &inputs[1..] {
                if !same_shape(&s, other) {
                    return Err(SchemaError::MergeMismatch {
                        op: name.to_string(),
                    });
                }
            }
            s
        }
        OpKind::Dedup { keys } => {
            let s = first(name)?;
            for k in keys {
                if !s.contains(k) {
                    return Err(SchemaError::MissingAttr {
                        op: name.to_string(),
                        column: k.clone(),
                    });
                }
            }
            s
        }
        OpKind::FilterNulls { columns } => {
            let s = first(name)?;
            for c in columns {
                if !s.contains(c) {
                    return Err(SchemaError::MissingAttr {
                        op: name.to_string(),
                        column: c.clone(),
                    });
                }
            }
            // Downstream, the filtered columns are guaranteed non-null.
            if columns.is_empty() {
                let all: Vec<String> = s.attrs().iter().map(|a| a.name.clone()).collect();
                s.with_non_nullable(&all)
            } else {
                s.with_non_nullable(columns)
            }
        }
        OpKind::Crosscheck { key, .. } => {
            let s = first(name)?;
            if !s.contains(key) {
                return Err(SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: key.clone(),
                });
            }
            s
        }
        OpKind::Split | OpKind::Partition | OpKind::Checkpoint { .. } | OpKind::Encrypt => {
            first(name)?
        }
    })
}

/// Merge compatibility: same attribute names and types, position-wise
/// (nullability may differ — a cleaned branch unions with an uncleaned one).
fn same_shape(a: &Schema, b: &Schema) -> bool {
    a.len() == b.len()
        && a.attrs()
            .iter()
            .zip(b.attrs())
            .all(|(x, y)| x.name == y.name && x.dtype == y.dtype)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{AggFunc, Operation};
    use crate::types::{Attribute, DataType};

    fn base_schema() -> Schema {
        Schema::new(vec![
            Attribute::required("id", DataType::Int),
            Attribute::new("qty", DataType::Int),
            Attribute::new("price", DataType::Float),
        ])
    }

    fn flow_one(op: Operation) -> EtlFlow {
        let mut f = EtlFlow::new("t");
        let e = f.add_op(Operation::extract("s", base_schema()));
        let m = f.add_op(op);
        let l = f.add_op(Operation::load("dw"));
        f.connect(e, m).unwrap();
        f.connect(m, l).unwrap();
        f
    }

    fn schema_of(f: &EtlFlow, idx: usize) -> Schema {
        let schemas = propagate_schemas(f).unwrap();
        schemas[idx].clone().unwrap()
    }

    #[test]
    fn extract_passes_source_schema() {
        let f = flow_one(Operation::filter("f", Expr::col("qty").gt(Expr::lit_i(0))));
        assert_eq!(schema_of(&f, 0), base_schema());
        assert_eq!(schema_of(&f, 2), base_schema()); // load passthrough
    }

    #[test]
    fn derive_extends_schema() {
        let f = flow_one(Operation::derive(
            "d",
            vec![("total".into(), Expr::col("qty").mul(Expr::col("price")))],
        ));
        let s = schema_of(&f, 1);
        assert_eq!(s.len(), 4);
        assert_eq!(s.attr("total").unwrap().dtype, DataType::Float);
    }

    #[test]
    fn derive_duplicate_rejected() {
        let f = flow_one(Operation::derive("d", vec![("qty".into(), Expr::lit_i(0))]));
        assert!(matches!(
            propagate_schemas(&f),
            Err(SchemaError::DuplicateAttr { .. })
        ));
    }

    #[test]
    fn filter_binds_predicate() {
        let f = flow_one(Operation::filter(
            "f",
            Expr::col("ghost").gt(Expr::lit_i(0)),
        ));
        match propagate_schemas(&f) {
            Err(SchemaError::Bind { op, column }) => {
                assert_eq!(op, "f");
                assert_eq!(column, "ghost");
            }
            other => panic!("expected bind error, got {other:?}"),
        }
    }

    #[test]
    fn project_subsets() {
        let f = flow_one(Operation::project("p", vec!["id".into()]));
        assert_eq!(schema_of(&f, 1).len(), 1);
    }

    #[test]
    fn project_missing_attr() {
        let f = flow_one(Operation::project("p", vec!["nope".into()]));
        assert!(matches!(
            propagate_schemas(&f),
            Err(SchemaError::MissingAttr { .. })
        ));
    }

    #[test]
    fn aggregate_schema() {
        let f = flow_one(Operation::new(
            "agg",
            OpKind::Aggregate {
                group_by: vec!["id".into()],
                aggs: vec![
                    ("n".into(), AggFunc::Count, "qty".into()),
                    ("total".into(), AggFunc::Sum, "price".into()),
                ],
            },
        ));
        let s = schema_of(&f, 1);
        assert_eq!(s.len(), 3);
        assert_eq!(s.attr("n").unwrap().dtype, DataType::Int);
        assert_eq!(s.attr("total").unwrap().dtype, DataType::Float);
    }

    #[test]
    fn join_concatenates() {
        let mut f = EtlFlow::new("j");
        let e1 = f.add_op(Operation::extract("a", base_schema()));
        let e2 = f.add_op(Operation::extract(
            "b",
            Schema::new(vec![
                Attribute::required("id", DataType::Int),
                Attribute::new("city", DataType::Str),
            ]),
        ));
        let j = f.add_op(Operation::new(
            "join",
            OpKind::Join {
                left_key: "id".into(),
                right_key: "id".into(),
            },
        ));
        let l = f.add_op(Operation::load("dw"));
        f.connect(e1, j).unwrap();
        f.connect(e2, j).unwrap();
        f.connect(j, l).unwrap();
        let s = schema_of(&f, j.index());
        assert_eq!(s.len(), 5);
        assert!(s.contains("r_id"));
        assert!(s.contains("city"));
    }

    #[test]
    fn merge_requires_same_shape() {
        let mut f = EtlFlow::new("m");
        let e1 = f.add_op(Operation::extract("a", base_schema()));
        let e2 = f.add_op(Operation::extract(
            "b",
            Schema::new(vec![Attribute::new("other", DataType::Str)]),
        ));
        let m = f.add_op(Operation::new("merge", OpKind::Merge));
        let l = f.add_op(Operation::load("dw"));
        f.connect(e1, m).unwrap();
        f.connect(e2, m).unwrap();
        f.connect(m, l).unwrap();
        assert!(matches!(
            propagate_schemas(&f),
            Err(SchemaError::MergeMismatch { .. })
        ));
    }

    #[test]
    fn merge_tolerates_nullability_difference() {
        let mut f = EtlFlow::new("m");
        let relaxed = Schema::new(vec![Attribute::new("id", DataType::Int)]);
        let strict = Schema::new(vec![Attribute::required("id", DataType::Int)]);
        let e1 = f.add_op(Operation::extract("a", relaxed));
        let e2 = f.add_op(Operation::extract("b", strict));
        let m = f.add_op(Operation::new("merge", OpKind::Merge));
        let l = f.add_op(Operation::load("dw"));
        f.connect(e1, m).unwrap();
        f.connect(e2, m).unwrap();
        f.connect(m, l).unwrap();
        assert!(propagate_schemas(&f).is_ok());
    }

    #[test]
    fn filter_nulls_tightens_nullability() {
        let f = flow_one(Operation::new(
            "fn",
            OpKind::FilterNulls {
                columns: vec!["qty".into()],
            },
        ));
        let s = schema_of(&f, 1);
        assert!(!s.attr("qty").unwrap().nullable);
        assert!(s.attr("price").unwrap().nullable);
    }

    #[test]
    fn filter_nulls_empty_means_all() {
        let f = flow_one(Operation::new(
            "fn",
            OpKind::FilterNulls { columns: vec![] },
        ));
        let s = schema_of(&f, 1);
        assert!(s.attrs().iter().all(|a| !a.nullable));
    }

    #[test]
    fn convert_changes_type() {
        let f = flow_one(Operation::new(
            "cv",
            OpKind::Convert {
                column: "qty".into(),
                to: DataType::Float,
            },
        ));
        assert_eq!(schema_of(&f, 1).attr("qty").unwrap().dtype, DataType::Float);
    }
}
