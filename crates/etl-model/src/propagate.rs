//! Schema propagation: computes the output schema of every operation and
//! checks the consistency FCP deployment must preserve (§3 of the paper:
//! "ensuring the consistency between data schemata").

use crate::expr::BindError;
use crate::flow::EtlFlow;
use crate::op::OpKind;
use crate::types::Schema;
use flowgraph::{affected_topo, CowDelta, NodeId};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Schema-propagation failures, attributed to the offending operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// An expression referenced a missing attribute.
    Bind {
        /// Operation name.
        op: String,
        /// Missing attribute.
        column: String,
    },
    /// A projection/aggregation referenced a missing attribute.
    MissingAttr {
        /// Operation name.
        op: String,
        /// Missing attribute.
        column: String,
    },
    /// A derive would have introduced a duplicate attribute name.
    DuplicateAttr {
        /// Operation name.
        op: String,
        /// Clashing attribute.
        column: String,
    },
    /// Merge inputs disagree on their schemas.
    MergeMismatch {
        /// Operation name.
        op: String,
    },
    /// The flow was structurally broken (cycle) before schemas could run.
    NotADag,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Bind { op, column } => {
                write!(f, "`{op}`: expression references unknown column `{column}`")
            }
            SchemaError::MissingAttr { op, column } => {
                write!(f, "`{op}`: attribute `{column}` not found in input schema")
            }
            SchemaError::DuplicateAttr { op, column } => {
                write!(f, "`{op}`: attribute `{column}` already exists")
            }
            SchemaError::MergeMismatch { op } => {
                write!(f, "`{op}`: merge inputs have mismatching schemas")
            }
            SchemaError::NotADag => write!(f, "flow graph has a cycle"),
        }
    }
}

impl std::error::Error for SchemaError {}

fn bind_err(op: &str, e: BindError) -> SchemaError {
    match e {
        BindError::UnknownColumn(c) => SchemaError::Bind {
            op: op.to_string(),
            column: c,
        },
    }
}

/// Dense schema table indexed by [`flowgraph::NodeId::index`]: the output
/// schema of every live operation, `None` for removed ids. Schemas are
/// `Arc`-shared — passthrough operators (filter, sort, checkpoint, …) reuse
/// their input's allocation, and [`propagate_schemas_delta`] reuses a base
/// table's entries for unaffected nodes.
pub type SchemaTable = Vec<Option<Arc<Schema>>>;

/// Computes the output schema of every operation, in a dense table indexed
/// by [`flowgraph::NodeId::index`]. Operations whose ids were removed hold `None`.
pub fn propagate_schemas(flow: &EtlFlow) -> Result<SchemaTable, SchemaError> {
    let order = flow.topo_order().map_err(|_| SchemaError::NotADag)?;
    let mut out: SchemaTable = vec![None; flow.graph.node_bound()];
    for n in order {
        out[n.index()] = Some(propagate_node(flow, n, &out)?);
    }
    Ok(out)
}

/// Recomputes the schema table of a copy-on-write fork against its base's
/// table, re-propagating only over the affected region (the fork's touched
/// nodes and their descendants). Produces a table equal to
/// [`propagate_schemas`] on the fork, in `O(affected region)` worst case —
/// and in `O(patch)` for the common case of schema-passthrough patches,
/// because the walk stops descending once recomputed schemas converge back
/// to the base's.
///
/// Soundness: an unaffected node's entire ancestry is unaffected (the region
/// is successor-closed), so its base schema is still exact; affected nodes
/// are recomputed in topological order over inputs that are either base
/// schemas or freshly recomputed ones. The early stop is sound because a
/// structurally untouched node whose inputs all equal the base's recomputes
/// to exactly its base schema (propagation is a pure function of the
/// operation and its input schemas) — its base entry, validated when the
/// base table was built, is reused verbatim. A recomputed schema that is
/// structurally equal to the base entry is canonicalised to the base's
/// `Arc`, so downstream sharing (and the stop condition) keeps working.
pub fn propagate_schemas_delta(
    flow: &EtlFlow,
    base_table: &[Option<Arc<Schema>>],
    delta: &CowDelta,
) -> Result<SchemaTable, SchemaError> {
    let order = affected_topo(&flow.graph, &delta.touched_nodes).ok_or(SchemaError::NotADag)?;
    let bound = flow.graph.node_bound();
    let mut out: SchemaTable = vec![None; bound];
    for n in flow.graph.node_ids() {
        if let Some(s) = base_table.get(n.index()).and_then(|s| s.as_ref()) {
            out[n.index()] = Some(Arc::clone(s));
        }
    }
    let mut touched = vec![false; bound];
    for n in &delta.touched_nodes {
        touched[n.index()] = true;
    }
    // `changed[i]` = node i's table entry semantically differs from the base.
    let mut changed = vec![false; bound];
    for n in order {
        let must_recompute = touched[n.index()]
            || out[n.index()].is_none()
            || flow.graph.predecessors(n).any(|p| changed[p.index()]);
        if !must_recompute {
            continue;
        }
        let fresh = propagate_node(flow, n, &out)?;
        match base_table.get(n.index()).and_then(|s| s.as_ref()) {
            Some(b) if Arc::ptr_eq(&fresh, b) => out[n.index()] = Some(fresh),
            Some(b) if **b == *fresh => out[n.index()] = Some(Arc::clone(b)),
            _ => {
                changed[n.index()] = true;
                out[n.index()] = Some(fresh);
            }
        }
    }
    Ok(out)
}

/// Repairs a schema table **in place** after one structural patch, seeded
/// from the patch's added nodes — the `O(patch)` alternative to
/// [`propagate_schemas_delta`] when the caller applies patterns one at a
/// time and carries the table across steps.
///
/// Computes the added nodes' entries, then ripples through successors only
/// while recomputed schemas actually differ from the carried entries; a
/// schema-passthrough patch (checkpoint, dedup, parallelise, …) converges
/// after the added nodes plus one confirming recompute per boundary
/// successor. Entries of removed ids are cleared, matching what a fresh
/// propagation would produce.
///
/// Returns `Ok(true)` when the table is exact, `Ok(false)` when the walk
/// gave up (work cap hit — e.g. a patch-created cycle, or seeds that don't
/// cover every added node); the caller must then rebuild the table from
/// scratch. `Err` carries a genuine schema error, exactly the one a full
/// propagation over the patched region would report.
pub fn repair_table(
    flow: &EtlFlow,
    table: &mut SchemaTable,
    seeds: &[NodeId],
) -> Result<bool, SchemaError> {
    let bound = flow.graph.node_bound();
    if table.len() < bound {
        table.resize(bound, None);
    }
    let mut live = vec![false; bound];
    for n in flow.graph.node_ids() {
        live[n.index()] = true;
    }
    for (i, slot) in table.iter_mut().enumerate() {
        if !live.get(i).copied().unwrap_or(false) {
            *slot = None;
        }
    }
    let mut queue: VecDeque<NodeId> = seeds.iter().copied().filter(|n| live[n.index()]).collect();
    // In a DAG each node settles after its predecessors do, so total work is
    // bounded by the patched region's edges; the cap catches patch-created
    // cycles and incomplete seed sets without looping.
    let mut budget = 2 * flow.graph.edge_count() + flow.graph.node_count() + 8;
    while let Some(n) = queue.pop_front() {
        if budget == 0 {
            return Ok(false);
        }
        budget -= 1;
        if flow
            .graph
            .predecessors(n)
            .any(|p| table[p.index()].is_none())
        {
            // an added predecessor not yet computed — retry after it
            queue.push_back(n);
            continue;
        }
        let fresh = propagate_node(flow, n, table)?;
        let same = table[n.index()]
            .as_ref()
            .is_some_and(|old| Arc::ptr_eq(old, &fresh) || **old == *fresh);
        if !same {
            table[n.index()] = Some(fresh);
            queue.extend(flow.graph.successors(n));
        }
    }
    Ok(true)
}

/// One node's output schema against a partially-filled table (predecessor
/// entries must be present). Shares the input `Arc` for passthrough kinds.
fn propagate_node(
    flow: &EtlFlow,
    n: NodeId,
    table: &[Option<Arc<Schema>>],
) -> Result<Arc<Schema>, SchemaError> {
    let op = flow.op(n).expect("live node");
    let input_arcs: Vec<&Arc<Schema>> = flow
        .graph
        .predecessors(n)
        .map(|p| {
            table[p.index()]
                .as_ref()
                .expect("topological order guarantees predecessor schemas")
        })
        .collect();
    let inputs: Vec<&Schema> = input_arcs.iter().map(|a| a.as_ref()).collect();
    Ok(match propagate_one(&op.name, &op.kind, &inputs)? {
        Propagated::Share(i) => Arc::clone(input_arcs[i]),
        Propagated::Fresh(s) => Arc::new(s),
    })
}

/// Output schema of one operation given its input schemas (in predecessor
/// order). Exposed for pattern configuration, which must compute the schema
/// at an application point before instantiating an FCP there.
pub fn output_schema(name: &str, kind: &OpKind, inputs: &[&Schema]) -> Result<Schema, SchemaError> {
    Ok(match propagate_one(name, kind, inputs)? {
        Propagated::Share(i) => inputs[i].clone(),
        Propagated::Fresh(s) => s,
    })
}

/// How an operation's output schema relates to its inputs: shared verbatim
/// (passthrough operators) or freshly constructed.
enum Propagated {
    /// Output equals input `i` — callers can share its allocation.
    Share(usize),
    /// A newly constructed schema.
    Fresh(Schema),
}

/// Validates an operation against its input schemas and classifies its
/// output schema. The single place operation → schema semantics live.
fn propagate_one(name: &str, kind: &OpKind, inputs: &[&Schema]) -> Result<Propagated, SchemaError> {
    use Propagated::{Fresh, Share};
    let first = |op: &str| -> Result<&Schema, SchemaError> {
        inputs
            .first()
            .copied()
            .ok_or_else(|| SchemaError::MissingAttr {
                op: op.to_string(),
                column: "<input>".to_string(),
            })
    };
    Ok(match kind {
        OpKind::Extract { schema, .. } => Fresh(schema.clone()),
        OpKind::Load { .. } => {
            first(name)?;
            Share(0)
        }
        OpKind::Filter { predicate } => {
            let s = first(name)?;
            predicate.bind(s).map_err(|e| bind_err(name, e))?;
            Share(0)
        }
        OpKind::Project { keep } => {
            let s = first(name)?;
            Fresh(s.project(keep).map_err(|c| SchemaError::MissingAttr {
                op: name.to_string(),
                column: c,
            })?)
        }
        OpKind::Derive { outputs } => {
            let mut s = first(name)?.clone();
            for (new_name, expr) in outputs {
                let dtype = expr.result_type(&s).map_err(|e| bind_err(name, e))?;
                expr.bind(&s).map_err(|e| bind_err(name, e))?;
                s = s
                    .extend_with(crate::types::Attribute::new(new_name.clone(), dtype))
                    .map_err(|c| SchemaError::DuplicateAttr {
                        op: name.to_string(),
                        column: c,
                    })?;
            }
            Fresh(s)
        }
        OpKind::Convert { column, to } => {
            let s = first(name)?;
            if !s.contains(column) {
                return Err(SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: column.clone(),
                });
            }
            Fresh(Schema::new(
                s.attrs()
                    .iter()
                    .map(|a| {
                        let mut a = a.clone();
                        if &a.name == column {
                            a.dtype = *to;
                        }
                        a
                    })
                    .collect(),
            ))
        }
        OpKind::Join {
            left_key,
            right_key,
        } => {
            if inputs.len() < 2 {
                return Err(SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: "<second input>".to_string(),
                });
            }
            let (l, r) = (inputs[0], inputs[1]);
            if !l.contains(left_key) {
                return Err(SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: left_key.clone(),
                });
            }
            if !r.contains(right_key) {
                return Err(SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: right_key.clone(),
                });
            }
            Fresh(l.join_concat(r, "r"))
        }
        OpKind::Aggregate { group_by, aggs } => {
            let s = first(name)?;
            let mut attrs = Vec::new();
            for g in group_by {
                attrs.push(
                    s.attr(g)
                        .ok_or_else(|| SchemaError::MissingAttr {
                            op: name.to_string(),
                            column: g.clone(),
                        })?
                        .clone(),
                );
            }
            for (out_name, func, input_attr) in aggs {
                let input = s.attr(input_attr).ok_or_else(|| SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: input_attr.clone(),
                })?;
                attrs.push(crate::types::Attribute::new(
                    out_name.clone(),
                    func.result_type(input.dtype),
                ));
            }
            Fresh(Schema::new(attrs))
        }
        OpKind::Sort { by } => {
            let s = first(name)?;
            for b in by {
                if !s.contains(b) {
                    return Err(SchemaError::MissingAttr {
                        op: name.to_string(),
                        column: b.clone(),
                    });
                }
            }
            Share(0)
        }
        OpKind::Router { predicate } => {
            let s = first(name)?;
            predicate.bind(s).map_err(|e| bind_err(name, e))?;
            Share(0)
        }
        OpKind::Merge => {
            let s = first(name)?;
            for other in &inputs[1..] {
                if !same_shape(s, other) {
                    return Err(SchemaError::MergeMismatch {
                        op: name.to_string(),
                    });
                }
            }
            Share(0)
        }
        OpKind::Dedup { keys } => {
            let s = first(name)?;
            for k in keys {
                if !s.contains(k) {
                    return Err(SchemaError::MissingAttr {
                        op: name.to_string(),
                        column: k.clone(),
                    });
                }
            }
            Share(0)
        }
        OpKind::FilterNulls { columns } => {
            let s = first(name)?;
            for c in columns {
                if !s.contains(c) {
                    return Err(SchemaError::MissingAttr {
                        op: name.to_string(),
                        column: c.clone(),
                    });
                }
            }
            // Downstream, the filtered columns are guaranteed non-null.
            if columns.is_empty() {
                let all: Vec<String> = s.attrs().iter().map(|a| a.name.clone()).collect();
                Fresh(s.with_non_nullable(&all))
            } else {
                Fresh(s.with_non_nullable(columns))
            }
        }
        OpKind::Crosscheck { key, .. } => {
            let s = first(name)?;
            if !s.contains(key) {
                return Err(SchemaError::MissingAttr {
                    op: name.to_string(),
                    column: key.clone(),
                });
            }
            Share(0)
        }
        OpKind::Split | OpKind::Partition | OpKind::Checkpoint { .. } | OpKind::Encrypt => {
            first(name)?;
            Share(0)
        }
    })
}

/// Merge compatibility: same attribute names and types, position-wise
/// (nullability may differ — a cleaned branch unions with an uncleaned one).
fn same_shape(a: &Schema, b: &Schema) -> bool {
    a.len() == b.len()
        && a.attrs()
            .iter()
            .zip(b.attrs())
            .all(|(x, y)| x.name == y.name && x.dtype == y.dtype)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{AggFunc, Operation};
    use crate::types::{Attribute, DataType};

    fn base_schema() -> Schema {
        Schema::new(vec![
            Attribute::required("id", DataType::Int),
            Attribute::new("qty", DataType::Int),
            Attribute::new("price", DataType::Float),
        ])
    }

    fn flow_one(op: Operation) -> EtlFlow {
        let mut f = EtlFlow::new("t");
        let e = f.add_op(Operation::extract("s", base_schema()));
        let m = f.add_op(op);
        let l = f.add_op(Operation::load("dw"));
        f.connect(e, m).unwrap();
        f.connect(m, l).unwrap();
        f
    }

    fn schema_of(f: &EtlFlow, idx: usize) -> Schema {
        let schemas = propagate_schemas(f).unwrap();
        schemas[idx].as_deref().unwrap().clone()
    }

    #[test]
    fn extract_passes_source_schema() {
        let f = flow_one(Operation::filter("f", Expr::col("qty").gt(Expr::lit_i(0))));
        assert_eq!(schema_of(&f, 0), base_schema());
        assert_eq!(schema_of(&f, 2), base_schema()); // load passthrough
    }

    #[test]
    fn derive_extends_schema() {
        let f = flow_one(Operation::derive(
            "d",
            vec![("total".into(), Expr::col("qty").mul(Expr::col("price")))],
        ));
        let s = schema_of(&f, 1);
        assert_eq!(s.len(), 4);
        assert_eq!(s.attr("total").unwrap().dtype, DataType::Float);
    }

    #[test]
    fn derive_duplicate_rejected() {
        let f = flow_one(Operation::derive("d", vec![("qty".into(), Expr::lit_i(0))]));
        assert!(matches!(
            propagate_schemas(&f),
            Err(SchemaError::DuplicateAttr { .. })
        ));
    }

    #[test]
    fn filter_binds_predicate() {
        let f = flow_one(Operation::filter(
            "f",
            Expr::col("ghost").gt(Expr::lit_i(0)),
        ));
        match propagate_schemas(&f) {
            Err(SchemaError::Bind { op, column }) => {
                assert_eq!(op, "f");
                assert_eq!(column, "ghost");
            }
            other => panic!("expected bind error, got {other:?}"),
        }
    }

    #[test]
    fn project_subsets() {
        let f = flow_one(Operation::project("p", vec!["id".into()]));
        assert_eq!(schema_of(&f, 1).len(), 1);
    }

    #[test]
    fn project_missing_attr() {
        let f = flow_one(Operation::project("p", vec!["nope".into()]));
        assert!(matches!(
            propagate_schemas(&f),
            Err(SchemaError::MissingAttr { .. })
        ));
    }

    #[test]
    fn aggregate_schema() {
        let f = flow_one(Operation::new(
            "agg",
            OpKind::Aggregate {
                group_by: vec!["id".into()],
                aggs: vec![
                    ("n".into(), AggFunc::Count, "qty".into()),
                    ("total".into(), AggFunc::Sum, "price".into()),
                ],
            },
        ));
        let s = schema_of(&f, 1);
        assert_eq!(s.len(), 3);
        assert_eq!(s.attr("n").unwrap().dtype, DataType::Int);
        assert_eq!(s.attr("total").unwrap().dtype, DataType::Float);
    }

    #[test]
    fn join_concatenates() {
        let mut f = EtlFlow::new("j");
        let e1 = f.add_op(Operation::extract("a", base_schema()));
        let e2 = f.add_op(Operation::extract(
            "b",
            Schema::new(vec![
                Attribute::required("id", DataType::Int),
                Attribute::new("city", DataType::Str),
            ]),
        ));
        let j = f.add_op(Operation::new(
            "join",
            OpKind::Join {
                left_key: "id".into(),
                right_key: "id".into(),
            },
        ));
        let l = f.add_op(Operation::load("dw"));
        f.connect(e1, j).unwrap();
        f.connect(e2, j).unwrap();
        f.connect(j, l).unwrap();
        let s = schema_of(&f, j.index());
        assert_eq!(s.len(), 5);
        assert!(s.contains("r_id"));
        assert!(s.contains("city"));
    }

    #[test]
    fn merge_requires_same_shape() {
        let mut f = EtlFlow::new("m");
        let e1 = f.add_op(Operation::extract("a", base_schema()));
        let e2 = f.add_op(Operation::extract(
            "b",
            Schema::new(vec![Attribute::new("other", DataType::Str)]),
        ));
        let m = f.add_op(Operation::new("merge", OpKind::Merge));
        let l = f.add_op(Operation::load("dw"));
        f.connect(e1, m).unwrap();
        f.connect(e2, m).unwrap();
        f.connect(m, l).unwrap();
        assert!(matches!(
            propagate_schemas(&f),
            Err(SchemaError::MergeMismatch { .. })
        ));
    }

    #[test]
    fn merge_tolerates_nullability_difference() {
        let mut f = EtlFlow::new("m");
        let relaxed = Schema::new(vec![Attribute::new("id", DataType::Int)]);
        let strict = Schema::new(vec![Attribute::required("id", DataType::Int)]);
        let e1 = f.add_op(Operation::extract("a", relaxed));
        let e2 = f.add_op(Operation::extract("b", strict));
        let m = f.add_op(Operation::new("merge", OpKind::Merge));
        let l = f.add_op(Operation::load("dw"));
        f.connect(e1, m).unwrap();
        f.connect(e2, m).unwrap();
        f.connect(m, l).unwrap();
        assert!(propagate_schemas(&f).is_ok());
    }

    #[test]
    fn filter_nulls_tightens_nullability() {
        let f = flow_one(Operation::new(
            "fn",
            OpKind::FilterNulls {
                columns: vec!["qty".into()],
            },
        ));
        let s = schema_of(&f, 1);
        assert!(!s.attr("qty").unwrap().nullable);
        assert!(s.attr("price").unwrap().nullable);
    }

    #[test]
    fn filter_nulls_empty_means_all() {
        let f = flow_one(Operation::new(
            "fn",
            OpKind::FilterNulls { columns: vec![] },
        ));
        let s = schema_of(&f, 1);
        assert!(s.attrs().iter().all(|a| !a.nullable));
    }

    #[test]
    fn passthrough_shares_schema_allocation() {
        let f = flow_one(Operation::filter("f", Expr::col("qty").gt(Expr::lit_i(0))));
        let schemas = propagate_schemas(&f).unwrap();
        let (e, fi, l) = (&schemas[0], &schemas[1], &schemas[2]);
        // extract → filter → load: both passthroughs reuse the extract's Arc.
        assert!(Arc::ptr_eq(e.as_ref().unwrap(), fi.as_ref().unwrap()));
        assert!(Arc::ptr_eq(e.as_ref().unwrap(), l.as_ref().unwrap()));
    }

    #[test]
    fn delta_propagation_equals_full_recompute() {
        let base = flow_one(Operation::filter("f", Expr::col("qty").gt(Expr::lit_i(0))));
        let base_table = propagate_schemas(&base).unwrap();
        // Fork and interpose a derive on the filter → load edge.
        let mut fork = base.fork("alt");
        let filter = fork.ops_of_kind("filter")[0];
        let edge = fork.graph.out_edges(filter).next().unwrap();
        fork.graph
            .interpose_on_edge(
                edge,
                Operation::derive(
                    "d",
                    vec![("total".into(), Expr::col("qty").mul(Expr::col("price")))],
                ),
                crate::flow::Channel::default(),
                crate::flow::Channel::default(),
            )
            .unwrap();
        let delta = fork.delta_since(&base);
        assert!(!delta.is_empty());
        let fast = propagate_schemas_delta(&fork, &base_table, &delta).unwrap();
        let full = propagate_schemas(&fork).unwrap();
        assert_eq!(fast.len(), full.len());
        for (a, b) in fast.iter().zip(full.iter()) {
            assert_eq!(a.as_deref(), b.as_deref());
        }
        // Unaffected prefix reuses the base table's allocations verbatim.
        let extract = fork.ops_of_kind("extract")[0];
        assert!(Arc::ptr_eq(
            fast[extract.index()].as_ref().unwrap(),
            base_table[extract.index()].as_ref().unwrap()
        ));
    }

    #[test]
    fn convert_changes_type() {
        let f = flow_one(Operation::new(
            "cv",
            OpKind::Convert {
                column: "qty".into(),
                to: DataType::Float,
            },
        ));
        assert_eq!(schema_of(&f, 1).attr("qty").unwrap().dtype, DataType::Float);
    }
}
