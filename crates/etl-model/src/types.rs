//! Attribute schemata: the data-model side of the ETL flow graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar data types supported by the model.
///
/// The set deliberately mirrors what the TPC-H / TPC-DS derived demo flows
/// need; `Timestamp` carries seconds since epoch and backs the data-quality
/// freshness measures (request time − time of last update).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (also used for decimals).
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Date as days since epoch.
    Date,
    /// Timestamp as seconds since epoch.
    Timestamp,
}

impl DataType {
    /// True for `Int`, `Float`, `Date` and `Timestamp` — the types the
    /// paper's example prerequisite ("numeric fields in the output schema of
    /// the preceding operator") accepts.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::Float | DataType::Date | DataType::Timestamp
        )
    }

    /// Canonical lowercase name, used by the xLM serialisation.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
            DataType::Date => "date",
            DataType::Timestamp => "timestamp",
        }
    }

    /// Parses a type name as produced by [`DataType::name`].
    pub fn parse(s: &str) -> Option<DataType> {
        Some(match s {
            "int" => DataType::Int,
            "float" => DataType::Float,
            "str" | "string" | "varchar" => DataType::Str,
            "bool" | "boolean" => DataType::Bool,
            "date" => DataType::Date,
            "timestamp" => DataType::Timestamp,
            _ => return None,
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One named, typed attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within its schema.
    pub name: String,
    /// Scalar type.
    pub dtype: DataType,
    /// Whether null values are admissible. Cleaning patterns
    /// (`FilterNullValues`) tighten this to `false` downstream.
    pub nullable: bool,
    /// Whether the attribute carries sensitive data at its source.
    /// Only meaningful on extract schemata: the taint analysis follows
    /// lineage from there, so derived/propagated attributes never need
    /// the flag themselves.
    pub sensitive: bool,
}

impl Attribute {
    /// New nullable attribute.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Attribute {
            name: name.into(),
            dtype,
            nullable: true,
            sensitive: false,
        }
    }

    /// New non-nullable attribute.
    pub fn required(name: impl Into<String>, dtype: DataType) -> Self {
        Attribute {
            name: name.into(),
            dtype,
            nullable: false,
            sensitive: false,
        }
    }

    /// Marks the attribute as carrying sensitive data (builder-style).
    pub fn mark_sensitive(mut self) -> Self {
        self.sensitive = true;
        self
    }
}

/// An ordered list of attributes with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema; panics on duplicate attribute names (programmer
    /// error in flow construction, caught early on purpose).
    pub fn new(attrs: Vec<Attribute>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for a in &attrs {
            assert!(
                seen.insert(a.name.clone()),
                "duplicate attribute name `{}` in schema",
                a.name
            );
        }
        Schema { attrs }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema { attrs: Vec::new() }
    }

    /// Attribute list in order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Borrow the attribute named `name`.
    pub fn attr(&self, name: &str) -> Option<&Attribute> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// True when an attribute of this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// True when at least one attribute has a numeric type — the example
    /// applicability prerequisite from the paper.
    pub fn has_numeric(&self) -> bool {
        self.attrs.iter().any(|a| a.dtype.is_numeric())
    }

    /// True when at least one attribute is nullable (a cleaning pattern has
    /// something to do).
    pub fn has_nullable(&self) -> bool {
        self.attrs.iter().any(|a| a.nullable)
    }

    /// Projection onto the named attributes, in the given order.
    /// Fails with the name of the first missing attribute.
    pub fn project(&self, keep: &[String]) -> Result<Schema, String> {
        let mut out = Vec::with_capacity(keep.len());
        for k in keep {
            match self.attr(k) {
                Some(a) => out.push(a.clone()),
                None => return Err(k.clone()),
            }
        }
        Ok(Schema::new(out))
    }

    /// Appends an attribute, failing on a duplicate name.
    pub fn extend_with(&self, attr: Attribute) -> Result<Schema, String> {
        if self.contains(&attr.name) {
            return Err(attr.name);
        }
        let mut attrs = self.attrs.clone();
        attrs.push(attr);
        Ok(Schema { attrs })
    }

    /// Concatenation for joins: right-side attributes that clash with a left
    /// name get a `prefix_` prepended.
    pub fn join_concat(&self, right: &Schema, prefix: &str) -> Schema {
        let mut attrs = self.attrs.clone();
        for a in &right.attrs {
            let mut a = a.clone();
            if self.contains(&a.name) {
                a.name = format!("{prefix}_{}", a.name);
            }
            // A join of dirty sources can still clash after prefixing; keep
            // appending underscores until unique (bounded by attr count).
            while attrs.iter().any(|x| x.name == a.name) {
                a.name.push('_');
            }
            attrs.push(a);
        }
        Schema { attrs }
    }

    /// Marks the named attributes non-nullable (the downstream effect of a
    /// `FilterNullValues` application). Unknown names are ignored.
    pub fn with_non_nullable(&self, names: &[String]) -> Schema {
        let attrs = self
            .attrs
            .iter()
            .map(|a| {
                let mut a = a.clone();
                if names.iter().any(|n| n == &a.name) {
                    a.nullable = false;
                }
                a
            })
            .collect();
        Schema { attrs }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}:{}{}",
                a.name,
                a.dtype,
                if a.nullable { "?" } else { "" }
            )?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Schema {
        Schema::new(vec![
            Attribute::required("id", DataType::Int),
            Attribute::new("name", DataType::Str),
            Attribute::new("amount", DataType::Float),
        ])
    }

    #[test]
    fn lookup_and_contains() {
        let s = s();
        assert_eq!(s.index_of("name"), Some(1));
        assert!(s.contains("amount"));
        assert!(!s.contains("ghost"));
        assert_eq!(s.attr("id").unwrap().dtype, DataType::Int);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_panic() {
        Schema::new(vec![
            Attribute::new("x", DataType::Int),
            Attribute::new("x", DataType::Str),
        ]);
    }

    #[test]
    fn numeric_detection() {
        assert!(s().has_numeric());
        let text_only = Schema::new(vec![Attribute::new("t", DataType::Str)]);
        assert!(!text_only.has_numeric());
        assert!(DataType::Timestamp.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn project_keeps_order_and_reports_missing() {
        let s = s();
        let p = s.project(&["amount".into(), "id".into()]).unwrap();
        assert_eq!(p.attrs()[0].name, "amount");
        assert_eq!(p.attrs()[1].name, "id");
        assert_eq!(s.project(&["nope".into()]).unwrap_err(), "nope");
    }

    #[test]
    fn extend_rejects_duplicates() {
        let s = s();
        assert!(s
            .extend_with(Attribute::new("extra", DataType::Bool))
            .is_ok());
        assert_eq!(
            s.extend_with(Attribute::new("id", DataType::Bool))
                .unwrap_err(),
            "id"
        );
    }

    #[test]
    fn join_concat_prefixes_clashes() {
        let left = s();
        let right = Schema::new(vec![
            Attribute::new("id", DataType::Int),
            Attribute::new("city", DataType::Str),
        ]);
        let j = left.join_concat(&right, "r");
        assert_eq!(j.len(), 5);
        assert!(j.contains("r_id"));
        assert!(j.contains("city"));
    }

    #[test]
    fn non_nullable_marking() {
        let s = s().with_non_nullable(&["name".into(), "ghost".into()]);
        assert!(!s.attr("name").unwrap().nullable);
        assert!(s.attr("amount").unwrap().nullable);
    }

    #[test]
    fn datatype_roundtrip() {
        for dt in [
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Bool,
            DataType::Date,
            DataType::Timestamp,
        ] {
            assert_eq!(DataType::parse(dt.name()), Some(dt));
        }
        assert_eq!(DataType::parse("varchar"), Some(DataType::Str));
        assert_eq!(DataType::parse("blob"), None);
    }

    #[test]
    fn display_format() {
        let txt = s().to_string();
        assert_eq!(txt, "(id:int, name:str?, amount:float?)");
    }
}
