//! `etl-model` — the ETL process model underneath POIESIS.
//!
//! The paper (§2.2, §3) models an ETL process as a directed acyclic graph
//! whose nodes are *ETL flow operations* and whose edges are transitions
//! between consecutive operations. This crate provides:
//!
//! * a typed **operator taxonomy** ([`OpKind`]) covering the operations the
//!   paper's figures use (EXTRACT, FILTER, SPLIT, DERIVE VALUES, HORIZONTAL
//!   PARTITION, MERGE, PERSIST/savepoint, …) plus the usual ETL staples
//!   (join, aggregate, sort, dedup, crosscheck) following the taxonomy of
//!   Vassiliadis et al. the paper builds on;
//! * **schemata** ([`Schema`], [`Attribute`], [`DataType`]) with per-operator
//!   propagation rules, so applying a Flow Component Pattern can *ensure the
//!   consistency between data schemata* (§3) of the reconfigured flow;
//! * a small **expression language** ([`expr::Expr`]) used by predicates and
//!   derived columns — the simulator evaluates these against real tuples;
//! * the [`EtlFlow`] type: a validated flow graph with process-wide
//!   configuration (the *entire graph* application point of §2.2), and a
//!   builder API for constructing flows programmatically.
//!
//! # Example
//!
//! ```
//! use etl_model::{EtlFlow, Operation, Schema, Attribute, DataType};
//! use etl_model::expr::Expr;
//!
//! let schema = Schema::new(vec![
//!     Attribute::new("id", DataType::Int),
//!     Attribute::new("amount", DataType::Float),
//! ]);
//! let mut flow = EtlFlow::new("quickstart");
//! let ext = flow.add_op(Operation::extract("src_orders", schema));
//! let fil = flow.add_op(Operation::filter(
//!     "only_positive",
//!     Expr::col("amount").gt(Expr::lit_f(0.0)),
//! ));
//! let load = flow.add_op(Operation::load("dw_orders"));
//! flow.connect(ext, fil).unwrap();
//! flow.connect(fil, load).unwrap();
//! flow.validate().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod expr;
mod flow;
mod op;
mod propagate;
mod types;
mod value;

pub use flow::{Channel, EtlFlow, FlowConfig, FlowError, ResourceClass};
pub use op::{AggFunc, CostParams, OpKind, Operation};
pub use propagate::{
    output_schema, propagate_schemas, propagate_schemas_delta, repair_table, SchemaError,
    SchemaTable,
};
pub use types::{Attribute, DataType, Schema};
pub use value::{Tuple, Value};

/// Convenient re-exports of the graph handles used throughout the stack.
pub use flowgraph::{CowDelta, EdgeId, NodeId};
