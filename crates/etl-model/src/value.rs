//! Runtime values and tuples. The simulator executes flows over real data so
//! the data-quality measures (completeness, uniqueness, freshness) are
//! computed from actual tuple contents rather than guessed.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A scalar runtime value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL-style null.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Days since epoch.
    Date(i64),
    /// Seconds since epoch.
    Timestamp(i64),
}

impl Value {
    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type, or `None` for null.
    pub fn dtype(&self) -> Option<DataType> {
        Some(match self {
            Value::Null => return None,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Bool(_) => DataType::Bool,
            Value::Date(_) => DataType::Date,
            Value::Timestamp(_) => DataType::Timestamp,
        })
    }

    /// Numeric view (ints, floats, dates and timestamps coerce to f64).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Date(v) | Value::Timestamp(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Boolean view; non-booleans are `None` (three-valued logic handled by
    /// the expression evaluator).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL-style comparison: null compares as unknown (`None`); numeric
    /// types compare by value; strings lexicographically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Stable key for grouping/dedup: nulls group together, floats by bit
    /// pattern.
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "∅".to_string(),
            Value::Int(v) => format!("i{v}"),
            Value::Float(v) => format!("f{:x}", v.to_bits()),
            Value::Str(v) => format!("s{v}"),
            Value::Bool(v) => format!("b{v}"),
            Value::Date(v) => format!("d{v}"),
            Value::Timestamp(v) => format!("t{v}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "date({v})"),
            Value::Timestamp(v) => write!(f, "ts({v})"),
        }
    }
}

/// One row of data flowing through the pipeline.
pub type Tuple = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_detection_and_dtype() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.dtype(), None);
        assert_eq!(Value::Int(1).dtype(), Some(DataType::Int));
        assert_eq!(Value::Timestamp(0).dtype(), Some(DataType::Timestamp));
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Date(10).as_f64(), Some(10.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn sql_cmp_semantics() {
        use Ordering::*;
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Less));
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Equal));
        assert_eq!(
            Value::Str("a".into()).sql_cmp(&Value::Str("b".into())),
            Some(Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn group_keys_distinguish_types() {
        assert_ne!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
        assert_ne!(
            Value::Str("1".into()).group_key(),
            Value::Int(1).group_key()
        );
    }
}
