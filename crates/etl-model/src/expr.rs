//! A small expression language for predicates and derived columns.
//!
//! Expressions are written against attribute *names* and bound against a
//! [`Schema`] before evaluation, yielding a [`BoundExpr`] whose column
//! references are positional — binding happens once per operator, evaluation
//! once per tuple.
//!
//! Null semantics follow SQL three-valued logic: comparisons with null yield
//! unknown, which [`BoundExpr::eval_predicate`] treats as *false* (a filter
//! drops the tuple), and arithmetic with null yields null.

use crate::types::{DataType, Schema};
use crate::value::{Tuple, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition (numeric).
    Add,
    /// Subtraction (numeric).
    Sub,
    /// Multiplication (numeric).
    Mul,
    /// Division (numeric; division by zero yields null).
    Div,
    /// Equality (SQL semantics: null = anything is unknown).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and (three-valued).
    And,
    /// Logical or (three-valued).
    Or,
}

/// An unbound expression over attribute names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference by attribute name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation (three-valued).
    Not(Box<Expr>),
    /// `IS NULL` test (never unknown).
    IsNull(Box<Expr>),
    /// First non-null argument.
    Coalesce(Vec<Expr>),
}

// The builder methods mirror SQL operator names (`add`, `mul`, `not`, …)
// on purpose: they construct AST nodes rather than compute values, and the
// consuming-`self` chaining style would not survive a move to the std ops
// traits (which the whole in-tree expression corpus is written against).
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Integer literal.
    pub fn lit_i(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// Float literal.
    pub fn lit_f(v: f64) -> Expr {
        Expr::Lit(Value::Float(v))
    }

    /// String literal.
    pub fn lit_s(v: impl Into<String>) -> Expr {
        Expr::Lit(Value::Str(v.into()))
    }

    /// Boolean literal.
    pub fn lit_b(v: bool) -> Expr {
        Expr::Lit(Value::Bool(v))
    }

    /// Null literal.
    pub fn null() -> Expr {
        Expr::Lit(Value::Null)
    }

    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(rhs))
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }
    /// `self = rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }
    /// `self <> rhs`
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }
    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }
    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
    /// `NOT self`
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    /// `self IS NOT NULL`
    pub fn is_not_null(self) -> Expr {
        Expr::IsNull(Box::new(self)).not()
    }

    /// Attribute names referenced anywhere in the expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(c) => out.push(c),
            Expr::Lit(_) => {}
            Expr::Bin(_, a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) => a.collect_columns(out),
            Expr::Coalesce(xs) => xs.iter().for_each(|x| x.collect_columns(out)),
        }
    }

    /// Binds attribute names to positions in `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr, BindError> {
        Ok(match self {
            Expr::Col(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| BindError::UnknownColumn(name.clone()))?;
                BoundExpr::Col(idx)
            }
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Bin(op, a, b) => {
                BoundExpr::Bin(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::Not(a) => BoundExpr::Not(Box::new(a.bind(schema)?)),
            Expr::IsNull(a) => BoundExpr::IsNull(Box::new(a.bind(schema)?)),
            Expr::Coalesce(xs) => BoundExpr::Coalesce(
                xs.iter()
                    .map(|x| x.bind(schema))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }

    /// Static result type against a schema, for schema propagation of
    /// derived columns. Comparisons and logic yield `Bool`; arithmetic
    /// yields `Float` unless both sides are `Int`.
    pub fn result_type(&self, schema: &Schema) -> Result<DataType, BindError> {
        Ok(match self {
            Expr::Col(name) => {
                schema
                    .attr(name)
                    .ok_or_else(|| BindError::UnknownColumn(name.clone()))?
                    .dtype
            }
            Expr::Lit(v) => v.dtype().unwrap_or(DataType::Str),
            Expr::Bin(op, a, b) => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    let ta = a.result_type(schema)?;
                    let tb = b.result_type(schema)?;
                    if ta == DataType::Int && tb == DataType::Int && *op != BinOp::Div {
                        DataType::Int
                    } else {
                        DataType::Float
                    }
                }
                _ => DataType::Bool,
            },
            Expr::Not(_) | Expr::IsNull(_) => DataType::Bool,
            Expr::Coalesce(xs) => xs
                .first()
                .map(|x| x.result_type(schema))
                .transpose()?
                .unwrap_or(DataType::Str),
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Bin(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Eq => "=",
                    BinOp::Ne => "<>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::Not(a) => write!(f, "NOT {a}"),
            Expr::IsNull(a) => write!(f, "{a} IS NULL"),
            Expr::Coalesce(xs) => {
                write!(f, "COALESCE(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Binding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// The expression references an attribute absent from the schema.
    UnknownColumn(String),
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
        }
    }
}

impl std::error::Error for BindError {}

/// An expression with positional column references, ready to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Column by tuple position.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<BoundExpr>, Box<BoundExpr>),
    /// Negation.
    Not(Box<BoundExpr>),
    /// Null test.
    IsNull(Box<BoundExpr>),
    /// First non-null.
    Coalesce(Vec<BoundExpr>),
}

impl BoundExpr {
    /// Evaluates against one tuple. Tuples shorter than a referenced index
    /// yield null (defensive; validated flows never hit this).
    pub fn eval(&self, t: &Tuple) -> Value {
        match self {
            BoundExpr::Col(i) => t.get(*i).cloned().unwrap_or(Value::Null),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Bin(op, a, b) => eval_bin(*op, a.eval(t), b.eval(t)),
            BoundExpr::Not(a) => match a.eval(t) {
                Value::Bool(b) => Value::Bool(!b),
                _ => Value::Null,
            },
            BoundExpr::IsNull(a) => Value::Bool(a.eval(t).is_null()),
            BoundExpr::Coalesce(xs) => xs
                .iter()
                .map(|x| x.eval(t))
                .find(|v| !v.is_null())
                .unwrap_or(Value::Null),
        }
    }

    /// Predicate view: SQL `WHERE` semantics, unknown → false.
    pub fn eval_predicate(&self, t: &Tuple) -> bool {
        matches!(self.eval(t), Value::Bool(true))
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    match op {
        And => match (a.as_bool(), b.as_bool()) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        Or => match (a.as_bool(), b.as_bool()) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        Eq | Ne | Lt | Le | Gt | Ge => match a.sql_cmp(&b) {
            None => Value::Null,
            Some(ord) => {
                let r = match op {
                    Eq => ord.is_eq(),
                    Ne => !ord.is_eq(),
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    Ge => ord.is_ge(),
                    _ => unreachable!(),
                };
                Value::Bool(r)
            }
        },
        Add | Sub | Mul | Div => {
            // Integer-preserving arithmetic when both sides are ints.
            if let (Value::Int(x), Value::Int(y)) = (&a, &b) {
                return match op {
                    Add => Value::Int(x.wrapping_add(*y)),
                    Sub => Value::Int(x.wrapping_sub(*y)),
                    Mul => Value::Int(x.wrapping_mul(*y)),
                    Div => {
                        if *y == 0 {
                            Value::Null
                        } else {
                            Value::Float(*x as f64 / *y as f64)
                        }
                    }
                    _ => unreachable!(),
                };
            }
            match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => match op {
                    Add => Value::Float(x + y),
                    Sub => Value::Float(x - y),
                    Mul => Value::Float(x * y),
                    Div => {
                        if y == 0.0 {
                            Value::Null
                        } else {
                            Value::Float(x / y)
                        }
                    }
                    _ => unreachable!(),
                },
                _ => Value::Null,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("a", DataType::Int),
            Attribute::new("b", DataType::Float),
            Attribute::new("s", DataType::Str),
        ])
    }

    fn tup(a: i64, b: f64, s: &str) -> Tuple {
        vec![Value::Int(a), Value::Float(b), Value::Str(s.into())]
    }

    #[test]
    fn bind_resolves_columns() {
        let e = Expr::col("a").add(Expr::col("b")).bind(&schema()).unwrap();
        assert_eq!(e.eval(&tup(2, 0.5, "x")), Value::Float(2.5));
    }

    #[test]
    fn bind_unknown_column_fails() {
        let err = Expr::col("zz").bind(&schema()).unwrap_err();
        assert_eq!(err, BindError::UnknownColumn("zz".into()));
    }

    #[test]
    fn int_arithmetic_stays_int() {
        let e = Expr::col("a").mul(Expr::lit_i(3)).bind(&schema()).unwrap();
        assert_eq!(e.eval(&tup(4, 0.0, "")), Value::Int(12));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::col("a").div(Expr::lit_i(0)).bind(&schema()).unwrap();
        assert_eq!(e.eval(&tup(4, 0.0, "")), Value::Null);
        let e = Expr::col("b")
            .div(Expr::lit_f(0.0))
            .bind(&schema())
            .unwrap();
        assert_eq!(e.eval(&tup(0, 4.0, "")), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let s = schema();
        // null AND false = false; null AND true = null; null OR true = true
        let null = Expr::null();
        let and_false = null.clone().and(Expr::lit_b(false)).bind(&s).unwrap();
        assert_eq!(and_false.eval(&tup(0, 0.0, "")), Value::Bool(false));
        let and_true = null.clone().and(Expr::lit_b(true)).bind(&s).unwrap();
        assert_eq!(and_true.eval(&tup(0, 0.0, "")), Value::Null);
        let or_true = null.clone().or(Expr::lit_b(true)).bind(&s).unwrap();
        assert_eq!(or_true.eval(&tup(0, 0.0, "")), Value::Bool(true));
        let not_null = null.not().bind(&s).unwrap();
        assert_eq!(not_null.eval(&tup(0, 0.0, "")), Value::Null);
    }

    #[test]
    fn predicate_unknown_is_false() {
        let e = Expr::null().gt(Expr::lit_i(0)).bind(&schema()).unwrap();
        assert!(!e.eval_predicate(&tup(1, 1.0, "")));
    }

    #[test]
    fn null_tests() {
        let s = schema();
        let isn = Expr::col("a").is_null().bind(&s).unwrap();
        assert_eq!(
            isn.eval(&vec![Value::Null, Value::Null, Value::Null]),
            Value::Bool(true)
        );
        assert_eq!(isn.eval(&tup(1, 0.0, "")), Value::Bool(false));
        let notn = Expr::col("a").is_not_null().bind(&s).unwrap();
        assert!(notn.eval_predicate(&tup(1, 0.0, "")));
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        let s = schema();
        let e = Expr::Coalesce(vec![Expr::col("a"), Expr::lit_i(-1)])
            .bind(&s)
            .unwrap();
        assert_eq!(
            e.eval(&vec![Value::Null, Value::Null, Value::Null]),
            Value::Int(-1)
        );
        assert_eq!(e.eval(&tup(7, 0.0, "")), Value::Int(7));
    }

    #[test]
    fn string_comparison() {
        let e = Expr::col("s")
            .eq(Expr::lit_s("hit"))
            .bind(&schema())
            .unwrap();
        assert!(e.eval_predicate(&tup(0, 0.0, "hit")));
        assert!(!e.eval_predicate(&tup(0, 0.0, "miss")));
    }

    #[test]
    fn columns_collects_unique_sorted() {
        let e = Expr::col("b").add(Expr::col("a")).mul(Expr::col("b"));
        assert_eq!(e.columns(), vec!["a", "b"]);
    }

    #[test]
    fn result_types() {
        let s = schema();
        assert_eq!(
            Expr::col("a").add(Expr::lit_i(1)).result_type(&s).unwrap(),
            DataType::Int
        );
        assert_eq!(
            Expr::col("a").add(Expr::col("b")).result_type(&s).unwrap(),
            DataType::Float
        );
        assert_eq!(
            Expr::col("a").div(Expr::lit_i(2)).result_type(&s).unwrap(),
            DataType::Float
        );
        assert_eq!(
            Expr::col("a").gt(Expr::lit_i(0)).result_type(&s).unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::col("s").is_null().result_type(&s).unwrap(),
            DataType::Bool
        );
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = Expr::col("a")
            .gt(Expr::lit_i(0))
            .and(Expr::col("s").is_null());
        assert_eq!(e.to_string(), "((a > 0) AND s IS NULL)");
    }
}
