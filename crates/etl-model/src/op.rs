//! The ETL operator taxonomy and per-operator cost parameters.

use crate::expr::Expr;
use crate::types::{DataType, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate functions for [`OpKind::Aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// Row count (counts all rows in the group).
    Count,
    /// Numeric sum (nulls skipped).
    Sum,
    /// Minimum (nulls skipped).
    Min,
    /// Maximum (nulls skipped).
    Max,
    /// Mean (nulls skipped).
    Avg,
}

impl AggFunc {
    /// Result type given the input attribute type.
    pub fn result_type(self, input: DataType) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Sum => {
                if input == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                }
            }
            AggFunc::Avg => DataType::Float,
            AggFunc::Min | AggFunc::Max => input,
        }
    }

    /// Canonical name for serialisation.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Parse a name produced by [`AggFunc::name`].
    pub fn parse(s: &str) -> Option<AggFunc> {
        Some(match s {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// The kind (and kind-specific configuration) of an ETL flow operation.
///
/// Input/output arity constraints (enforced by flow validation):
///
/// | kind | inputs | outputs |
/// |------|--------|---------|
/// | `Extract` | 0 | ≥1 |
/// | `Load` | 1 | 0 |
/// | `Merge`, `Join` | ≥2 | ≥1 |
/// | `Split`, `Partition`, `Router` | 1 | ≥1 (Router: exactly 2) |
/// | everything else | 1 | ≥1 |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Reads tuples from a named source; carries the source schema.
    Extract {
        /// Source identifier (table / file / stream name).
        source: String,
        /// Schema of the extracted tuples.
        schema: Schema,
    },
    /// Writes tuples to a named warehouse target.
    Load {
        /// Target identifier.
        target: String,
    },
    /// Keeps tuples satisfying the predicate.
    Filter {
        /// Boolean predicate over the input schema.
        predicate: Expr,
    },
    /// Keeps only the named attributes, in order. The paper's Fig. 2 "SPLIT
    /// required attributes" is a projection in this taxonomy.
    Project {
        /// Attribute names to keep.
        keep: Vec<String>,
    },
    /// Adds derived columns (the paper's "DERIVE VALUES").
    Derive {
        /// `(new_attribute, expression)` pairs evaluated per tuple.
        outputs: Vec<(String, Expr)>,
    },
    /// Converts an attribute to another type.
    Convert {
        /// Attribute to convert.
        column: String,
        /// Target type.
        to: DataType,
    },
    /// Inner equi-join of two inputs on `left_key = right_key`.
    Join {
        /// Key attribute on the first (left) input.
        left_key: String,
        /// Key attribute on the second (right) input.
        right_key: String,
    },
    /// Groups by `group_by` and computes aggregates.
    Aggregate {
        /// Grouping attributes.
        group_by: Vec<String>,
        /// `(output_name, function, input_attribute)` triples.
        aggs: Vec<(String, AggFunc, String)>,
    },
    /// Sorts by the named attributes ascending.
    Sort {
        /// Sort key attributes.
        by: Vec<String>,
    },
    /// Replicates the input to every successor (broadcast split).
    Split,
    /// Routes each tuple by predicate: true → first successor, false →
    /// second (the paper's Fig. 2 Group_A / Group_B split).
    Router {
        /// Routing predicate.
        predicate: Expr,
    },
    /// Horizontal partition: hash-distributes tuples over successors (the
    /// `ParallelizeTask` FCP inserts this).
    Partition,
    /// Merges (unions) same-schema inputs.
    Merge,
    /// Removes duplicate tuples by the named key attributes (the
    /// `RemoveDuplicateEntries` FCP; empty keys = whole tuple).
    Dedup {
        /// Key attributes (empty → all attributes).
        keys: Vec<String>,
    },
    /// Drops tuples with nulls in the named attributes (the
    /// `FilterNullValues` FCP; empty = all attributes).
    FilterNulls {
        /// Attributes that must be non-null (empty → all).
        columns: Vec<String>,
    },
    /// Crosschecks values against an alternative source, correcting
    /// mismatches (the `CrosscheckSources` FCP).
    Crosscheck {
        /// Alternative source identifier.
        alt_source: String,
        /// Key attribute used for matching.
        key: String,
    },
    /// Persists intermediary data as a recovery savepoint (the
    /// `AddCheckpoint` FCP; Fig. 2's "PERSIST intermediary data").
    Checkpoint {
        /// Savepoint tag.
        tag: String,
    },
    /// Encrypts the channel contents (graph-level security configuration).
    Encrypt,
}

impl OpKind {
    /// Short lowercase kind name used in serialisation and reports.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Extract { .. } => "extract",
            OpKind::Load { .. } => "load",
            OpKind::Filter { .. } => "filter",
            OpKind::Project { .. } => "project",
            OpKind::Derive { .. } => "derive",
            OpKind::Convert { .. } => "convert",
            OpKind::Join { .. } => "join",
            OpKind::Aggregate { .. } => "aggregate",
            OpKind::Sort { .. } => "sort",
            OpKind::Split => "split",
            OpKind::Router { .. } => "router",
            OpKind::Partition => "partition",
            OpKind::Merge => "merge",
            OpKind::Dedup { .. } => "dedup",
            OpKind::FilterNulls { .. } => "filter_nulls",
            OpKind::Crosscheck { .. } => "crosscheck",
            OpKind::Checkpoint { .. } => "checkpoint",
            OpKind::Encrypt => "encrypt",
        }
    }

    /// `(min_inputs, max_inputs)` arity; `usize::MAX` = unbounded.
    pub fn input_arity(&self) -> (usize, usize) {
        match self {
            OpKind::Extract { .. } => (0, 0),
            OpKind::Join { .. } => (2, 2),
            OpKind::Merge => (2, usize::MAX),
            _ => (1, 1),
        }
    }

    /// `(min_outputs, max_outputs)` arity; `usize::MAX` = unbounded.
    pub fn output_arity(&self) -> (usize, usize) {
        match self {
            OpKind::Load { .. } => (0, 0),
            OpKind::Router { .. } => (2, 2),
            OpKind::Split | OpKind::Partition => (1, usize::MAX),
            _ => (1, 1),
        }
    }

    /// Whether this kind is a data-cleaning operation (used by the
    /// "cleaning close to sources" heuristic).
    pub fn is_cleaning(&self) -> bool {
        matches!(
            self,
            OpKind::Dedup { .. } | OpKind::FilterNulls { .. } | OpKind::Crosscheck { .. }
        )
    }

    /// Default selectivity estimate (output rows per input row) used by the
    /// analytic estimator when no override is configured.
    pub fn default_selectivity(&self) -> f64 {
        match self {
            OpKind::Filter { .. } => 0.5,
            OpKind::FilterNulls { .. } => 0.95,
            OpKind::Dedup { .. } => 0.9,
            OpKind::Aggregate { .. } => 0.1,
            OpKind::Join { .. } => 1.0,
            _ => 1.0,
        }
    }

    /// Default per-tuple processing cost in milliseconds, reflecting the
    /// relative expense of each operator class.
    pub fn default_cost_per_tuple(&self) -> f64 {
        match self {
            OpKind::Extract { .. } => 0.002,
            OpKind::Load { .. } => 0.004,
            OpKind::Filter { .. } | OpKind::FilterNulls { .. } => 0.001,
            OpKind::Project { .. } | OpKind::Convert { .. } => 0.001,
            OpKind::Derive { .. } => 0.010,
            OpKind::Join { .. } => 0.008,
            OpKind::Aggregate { .. } => 0.006,
            OpKind::Sort { .. } => 0.006,
            OpKind::Split | OpKind::Partition | OpKind::Router { .. } | OpKind::Merge => 0.0005,
            OpKind::Dedup { .. } => 0.003,
            OpKind::Crosscheck { .. } => 0.012,
            OpKind::Checkpoint { .. } => 0.005,
            OpKind::Encrypt => 0.002,
        }
    }
}

/// Cost/behaviour parameters attached to every operation. Estimators read
/// these; the simulator uses them to advance virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Per-tuple processing cost in milliseconds.
    pub cost_per_tuple_ms: f64,
    /// Fixed startup cost in milliseconds.
    pub startup_ms: f64,
    /// Optional selectivity override (output rows / input rows).
    pub selectivity: Option<f64>,
    /// Probability the operation fails while processing one batch
    /// (exercised by the reliability simulation).
    pub failure_rate: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cost_per_tuple_ms: f64::NAN, // resolved from kind at attach time
            startup_ms: 1.0,
            selectivity: None,
            failure_rate: 0.0,
        }
    }
}

/// An ETL flow operation: a named node of the flow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// Human-readable unique-ish name (e.g. `FILTER purchases`).
    pub name: String,
    /// Operator kind and configuration.
    pub kind: OpKind,
    /// Cost parameters.
    pub cost: CostParams,
    /// Degree of intra-operator parallelism (≥1); `ParallelizeTask`
    /// raises this on replicas.
    pub parallelism: u32,
    /// True when this operation was inserted by a Flow Component Pattern
    /// (used to avoid stacking the same pattern twice at one point).
    pub from_pattern: Option<String>,
}

impl Operation {
    /// New operation with kind-derived default costs.
    pub fn new(name: impl Into<String>, kind: OpKind) -> Self {
        let cost = CostParams {
            cost_per_tuple_ms: kind.default_cost_per_tuple(),
            ..CostParams::default()
        };
        Operation {
            name: name.into(),
            kind,
            cost,
            parallelism: 1,
            from_pattern: None,
        }
    }

    /// Extract operation from `source` with the given schema.
    pub fn extract(source: impl Into<String> + Clone, schema: Schema) -> Self {
        let s = source.clone().into();
        Operation::new(
            format!("EXTRACT {s}"),
            OpKind::Extract {
                source: source.into(),
                schema,
            },
        )
    }

    /// Load operation into `target`.
    pub fn load(target: impl Into<String>) -> Self {
        let t = target.into();
        Operation::new(format!("LOAD {t}"), OpKind::Load { target: t })
    }

    /// Filter with a named predicate.
    pub fn filter(name: impl Into<String>, predicate: Expr) -> Self {
        Operation::new(name, OpKind::Filter { predicate })
    }

    /// Derive-values operation.
    pub fn derive(name: impl Into<String>, outputs: Vec<(String, Expr)>) -> Self {
        Operation::new(name, OpKind::Derive { outputs })
    }

    /// Projection keeping the listed attributes.
    pub fn project(name: impl Into<String>, keep: Vec<String>) -> Self {
        Operation::new(name, OpKind::Project { keep })
    }

    /// Builder-style cost override.
    pub fn with_cost(mut self, cost_per_tuple_ms: f64) -> Self {
        self.cost.cost_per_tuple_ms = cost_per_tuple_ms;
        self
    }

    /// Builder-style selectivity override.
    pub fn with_selectivity(mut self, s: f64) -> Self {
        self.cost.selectivity = Some(s);
        self
    }

    /// Builder-style failure-rate override.
    pub fn with_failure_rate(mut self, p: f64) -> Self {
        self.cost.failure_rate = p;
        self
    }

    /// Effective selectivity: the override if set, else the kind default.
    pub fn selectivity(&self) -> f64 {
        self.cost
            .selectivity
            .unwrap_or_else(|| self.kind.default_selectivity())
    }

    /// Marks the operation as pattern-inserted.
    pub fn tag_pattern(mut self, pattern: impl Into<String>) -> Self {
        self.from_pattern = Some(pattern.into());
        self
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.kind.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Attribute;

    #[test]
    fn arity_tables() {
        let extract = OpKind::Extract {
            source: "s".into(),
            schema: Schema::empty(),
        };
        assert_eq!(extract.input_arity(), (0, 0));
        assert_eq!(OpKind::Merge.input_arity(), (2, usize::MAX));
        assert_eq!(
            OpKind::Join {
                left_key: "a".into(),
                right_key: "b".into()
            }
            .input_arity(),
            (2, 2)
        );
        assert_eq!(OpKind::Load { target: "t".into() }.output_arity(), (0, 0));
        assert_eq!(OpKind::Split.output_arity(), (1, usize::MAX));
        assert_eq!(
            OpKind::Router {
                predicate: Expr::lit_b(true)
            }
            .output_arity(),
            (2, 2)
        );
    }

    #[test]
    fn cleaning_classification() {
        assert!(OpKind::Dedup { keys: vec![] }.is_cleaning());
        assert!(OpKind::FilterNulls { columns: vec![] }.is_cleaning());
        assert!(!OpKind::Sort { by: vec![] }.is_cleaning());
    }

    #[test]
    fn defaults_applied_on_new() {
        let op = Operation::new("d", OpKind::Derive { outputs: vec![] });
        assert_eq!(op.cost.cost_per_tuple_ms, 0.010);
        assert_eq!(op.parallelism, 1);
        assert!(op.from_pattern.is_none());
    }

    #[test]
    fn selectivity_override() {
        let op = Operation::filter("f", Expr::lit_b(true));
        assert_eq!(op.selectivity(), 0.5);
        let op = op.with_selectivity(0.8);
        assert_eq!(op.selectivity(), 0.8);
    }

    #[test]
    fn constructors_produce_expected_kinds() {
        let schema = Schema::new(vec![Attribute::new("x", DataType::Int)]);
        assert_eq!(Operation::extract("src", schema).kind.name(), "extract");
        assert_eq!(Operation::load("t").kind.name(), "load");
        assert_eq!(
            Operation::filter("f", Expr::lit_b(true)).kind.name(),
            "filter"
        );
        assert_eq!(Operation::project("p", vec![]).kind.name(), "project");
    }

    #[test]
    fn agg_result_types() {
        assert_eq!(AggFunc::Count.result_type(DataType::Str), DataType::Int);
        assert_eq!(AggFunc::Sum.result_type(DataType::Int), DataType::Int);
        assert_eq!(AggFunc::Sum.result_type(DataType::Float), DataType::Float);
        assert_eq!(AggFunc::Avg.result_type(DataType::Int), DataType::Float);
        assert_eq!(AggFunc::Min.result_type(DataType::Date), DataType::Date);
    }

    #[test]
    fn agg_parse_roundtrip() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            assert_eq!(AggFunc::parse(f.name()), Some(f));
        }
        assert_eq!(AggFunc::parse("median"), None);
    }
}
