//! The [`EtlFlow`] type: a validated ETL process graph plus process-wide
//! configuration (the *entire graph* application point of the paper).

use crate::op::{OpKind, Operation};
use crate::propagate::{propagate_schemas, SchemaError};
use flowgraph::{is_dag, DiGraph, EdgeId, GraphError, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Hardware/software resource class of the execution environment — the
/// graph-level knob the paper lists under "management of the quality of
/// Hw/Sw resources". Scales simulated processing speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceClass {
    /// 1× baseline throughput.
    Small,
    /// 2× baseline throughput.
    Medium,
    /// 4× baseline throughput.
    Large,
}

impl ResourceClass {
    /// Relative speed factor vs. `Small`.
    pub fn speed_factor(self) -> f64 {
        match self {
            ResourceClass::Small => 1.0,
            ResourceClass::Medium => 2.0,
            ResourceClass::Large => 4.0,
        }
    }

    /// Relative cost factor vs. `Small` (renting bigger boxes costs more).
    pub fn cost_factor(self) -> f64 {
        match self {
            ResourceClass::Small => 1.0,
            ResourceClass::Medium => 2.2,
            ResourceClass::Large => 5.0,
        }
    }
}

/// Process-wide configuration: the target of graph-level FCPs (§2.2 —
/// security configurations, resource quality, recurrence frequency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// All channels encrypted (security pattern).
    pub encrypted: bool,
    /// Role-based access control enabled (security pattern).
    pub role_based_access: bool,
    /// Execution resource class.
    pub resources: ResourceClass,
    /// Process recurrence period in minutes (drives the freshness measure
    /// `1 / (1 - age * frequency_of_updates)` from Fig. 1).
    pub recurrence_minutes: f64,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            encrypted: false,
            role_based_access: false,
            resources: ResourceClass::Small,
            recurrence_minutes: 24.0 * 60.0,
        }
    }
}

/// Edge weight: the transition/channel between two consecutive operations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Optional label (e.g. the Router's "yes"/"no" branches).
    pub label: String,
}

impl Channel {
    /// Labelled channel.
    pub fn labelled(label: impl Into<String>) -> Self {
        Channel {
            label: label.into(),
        }
    }
}

/// Errors from flow construction or validation.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Underlying graph edit failed.
    Graph(GraphError),
    /// The flow graph has a cycle.
    Cyclic,
    /// The flow has no operations.
    Empty,
    /// An operation violates its input arity. `(name, actual, min, max)`.
    InputArity(String, usize, usize, usize),
    /// An operation violates its output arity. `(name, actual, min, max)`.
    OutputArity(String, usize, usize, usize),
    /// A source node (in-degree 0) is not an Extract.
    NonExtractSource(String),
    /// A sink node (out-degree 0) is not a Load.
    NonLoadSink(String),
    /// Schema propagation failed.
    Schema(SchemaError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Graph(e) => write!(f, "graph error: {e}"),
            FlowError::Cyclic => write!(f, "ETL flow must be acyclic"),
            FlowError::Empty => write!(f, "ETL flow has no operations"),
            FlowError::InputArity(n, a, lo, hi) => {
                write!(f, "operation `{n}` has {a} inputs, expected {lo}..={hi}")
            }
            FlowError::OutputArity(n, a, lo, hi) => {
                write!(f, "operation `{n}` has {a} outputs, expected {lo}..={hi}")
            }
            FlowError::NonExtractSource(n) => {
                write!(f, "source operation `{n}` must be an extract")
            }
            FlowError::NonLoadSink(n) => write!(f, "sink operation `{n}` must be a load"),
            FlowError::Schema(e) => write!(f, "schema error: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<GraphError> for FlowError {
    fn from(e: GraphError) -> Self {
        FlowError::Graph(e)
    }
}

impl From<SchemaError> for FlowError {
    fn from(e: SchemaError) -> Self {
        FlowError::Schema(e)
    }
}

/// An ETL process flow: named operation graph + process-wide config.
#[derive(Debug, Clone)]
pub struct EtlFlow {
    /// Flow name (shown in reports and serialised models).
    pub name: String,
    /// The operation graph.
    pub graph: DiGraph<Operation, Channel>,
    /// Graph-level configuration.
    pub config: FlowConfig,
}

impl EtlFlow {
    /// New empty flow.
    pub fn new(name: impl Into<String>) -> Self {
        EtlFlow {
            name: name.into(),
            graph: DiGraph::new(),
            config: FlowConfig::default(),
        }
    }

    /// Adds an operation node.
    pub fn add_op(&mut self, op: Operation) -> NodeId {
        self.graph.add_node(op)
    }

    /// Connects two operations with an unlabelled channel.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> Result<EdgeId, FlowError> {
        Ok(self.graph.add_edge(from, to, Channel::default())?)
    }

    /// Connects two operations with a labelled channel.
    pub fn connect_labelled(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: impl Into<String>,
    ) -> Result<EdgeId, FlowError> {
        Ok(self.graph.add_edge(from, to, Channel::labelled(label))?)
    }

    /// Borrow an operation.
    pub fn op(&self, n: NodeId) -> Option<&Operation> {
        self.graph.node(n)
    }

    /// Mutably borrow an operation.
    pub fn op_mut(&mut self, n: NodeId) -> Option<&mut Operation> {
        self.graph.node_mut(n)
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of transitions.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Ids of operations of a given kind name.
    pub fn ops_of_kind(&self, kind_name: &str) -> Vec<NodeId> {
        self.graph
            .nodes()
            .filter(|(_, op)| op.kind.name() == kind_name)
            .map(|(id, _)| id)
            .collect()
    }

    /// Counts operations matching a predicate (e.g. merge elements for the
    /// manageability measure).
    pub fn count_ops(&self, pred: impl Fn(&Operation) -> bool) -> usize {
        self.graph.nodes().filter(|(_, op)| pred(op)).count()
    }

    /// Full structural validation: non-empty, acyclic, arity-correct,
    /// extract-sources / load-sinks, and schema-consistent.
    pub fn validate(&self) -> Result<(), FlowError> {
        self.validate_structure()?;
        propagate_schemas(self)?;
        Ok(())
    }

    /// The graph-shape half of [`validate`](Self::validate) — everything
    /// except schema propagation. Callers that already carry a valid
    /// [`propagate_schemas`] table (the planner's incremental path) use this
    /// to avoid re-deriving it.
    pub fn validate_structure(&self) -> Result<(), FlowError> {
        if self.graph.node_count() == 0 {
            return Err(FlowError::Empty);
        }
        if !is_dag(&self.graph) {
            return Err(FlowError::Cyclic);
        }
        for (id, op) in self.graph.nodes() {
            let ins = self.graph.in_degree(id);
            let outs = self.graph.out_degree(id);
            if ins == 0 && !matches!(op.kind, OpKind::Extract { .. }) {
                return Err(FlowError::NonExtractSource(op.name.clone()));
            }
            if outs == 0 && !matches!(op.kind, OpKind::Load { .. }) {
                return Err(FlowError::NonLoadSink(op.name.clone()));
            }
            let (ilo, ihi) = op.kind.input_arity();
            if ins < ilo || ins > ihi {
                return Err(FlowError::InputArity(op.name.clone(), ins, ilo, ihi));
            }
            let (olo, ohi) = op.kind.output_arity();
            if outs < olo || outs > ohi {
                return Err(FlowError::OutputArity(op.name.clone(), outs, olo, ohi));
            }
        }
        Ok(())
    }

    /// Operations in topological order; requires an acyclic flow.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, FlowError> {
        flowgraph::topo_sort(&self.graph).map_err(|_| FlowError::Cyclic)
    }

    /// Copy-on-write clone under a new name — the planner materialises
    /// alternative designs this way. `O(n)` refcount bumps: every operator and
    /// channel slot is shared with `self` until the fork mutates it, and
    /// mutations copy only the touched slots (the base never observes them).
    pub fn fork(&self, name: impl Into<String>) -> EtlFlow {
        let mut f = self.clone();
        f.name = name.into();
        f
    }

    /// Which nodes this flow (a fork) has diverged on since `base`, recovered
    /// from copy-on-write slot sharing. See [`flowgraph::DiGraph::cow_delta`].
    pub fn delta_since(&self, base: &EtlFlow) -> flowgraph::CowDelta {
        self.graph.cow_delta(&base.graph)
    }

    /// Distance (in edges) from the nearest extract, per node; used by the
    /// "cleaning close to the sources" heuristic. `usize::MAX` = unreachable
    /// (cannot happen in validated flows).
    pub fn distance_from_sources(&self) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.graph.node_bound()];
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return dist,
        };
        for n in &order {
            if self.graph.in_degree(*n) == 0 {
                dist[n.index()] = 0;
            }
        }
        for n in order {
            let d = dist[n.index()];
            if d == usize::MAX {
                continue;
            }
            for s in self.graph.successors(n) {
                if dist[s.index()] > d + 1 {
                    dist[s.index()] = d + 1;
                }
            }
        }
        dist
    }

    /// Graphviz DOT rendering of the flow.
    pub fn to_dot(&self) -> String {
        flowgraph::to_dot(
            &self.graph,
            &self.name,
            |op| op.name.clone(),
            |ch| ch.label.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::types::{Attribute, DataType, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::required("id", DataType::Int),
            Attribute::new("v", DataType::Float),
        ])
    }

    fn linear_flow() -> (EtlFlow, [NodeId; 3]) {
        let mut f = EtlFlow::new("t");
        let e = f.add_op(Operation::extract("s", schema()));
        let fi = f.add_op(Operation::filter("f", Expr::col("v").gt(Expr::lit_f(0.0))));
        let l = f.add_op(Operation::load("t"));
        f.connect(e, fi).unwrap();
        f.connect(fi, l).unwrap();
        (f, [e, fi, l])
    }

    #[test]
    fn valid_linear_flow() {
        let (f, _) = linear_flow();
        f.validate().unwrap();
        assert_eq!(f.op_count(), 3);
    }

    #[test]
    fn empty_flow_rejected() {
        assert_eq!(EtlFlow::new("e").validate(), Err(FlowError::Empty));
    }

    #[test]
    fn cyclic_flow_rejected() {
        let (mut f, ids) = linear_flow();
        // force a cycle filter -> extract is prevented by arity anyway; use graph directly
        f.graph
            .add_edge(ids[2], ids[0], Channel::default())
            .unwrap();
        assert_eq!(f.validate(), Err(FlowError::Cyclic));
    }

    #[test]
    fn arity_violations_detected() {
        let mut f = EtlFlow::new("bad");
        let e = f.add_op(Operation::extract("s", schema()));
        let j = f.add_op(Operation::new(
            "j",
            OpKind::Join {
                left_key: "id".into(),
                right_key: "id".into(),
            },
        ));
        let l = f.add_op(Operation::load("t"));
        f.connect(e, j).unwrap();
        f.connect(j, l).unwrap();
        match f.validate() {
            Err(FlowError::InputArity(name, 1, 2, 2)) => assert_eq!(name, "j"),
            other => panic!("expected join arity error, got {other:?}"),
        }
    }

    #[test]
    fn source_must_be_extract() {
        let mut f = EtlFlow::new("bad");
        let fi = f.add_op(Operation::filter("f", Expr::lit_b(true)));
        let l = f.add_op(Operation::load("t"));
        f.connect(fi, l).unwrap();
        assert!(matches!(f.validate(), Err(FlowError::NonExtractSource(_))));
    }

    #[test]
    fn sink_must_be_load() {
        let mut f = EtlFlow::new("bad");
        let e = f.add_op(Operation::extract("s", schema()));
        let fi = f.add_op(Operation::filter("f", Expr::col("id").gt(Expr::lit_i(0))));
        f.connect(e, fi).unwrap();
        assert!(matches!(f.validate(), Err(FlowError::NonLoadSink(_))));
    }

    #[test]
    fn ops_of_kind_and_count() {
        let (f, _) = linear_flow();
        assert_eq!(f.ops_of_kind("filter").len(), 1);
        assert_eq!(f.ops_of_kind("merge").len(), 0);
        assert_eq!(f.count_ops(|op| op.kind.name() == "extract"), 1);
    }

    #[test]
    fn distance_from_sources_layers() {
        let (f, ids) = linear_flow();
        let d = f.distance_from_sources();
        assert_eq!(d[ids[0].index()], 0);
        assert_eq!(d[ids[1].index()], 1);
        assert_eq!(d[ids[2].index()], 2);
    }

    #[test]
    fn fork_is_independent() {
        let (f, ids) = linear_flow();
        let mut g = f.fork("copy");
        g.op_mut(ids[1]).unwrap().name = "renamed".into();
        assert_eq!(f.op(ids[1]).unwrap().name, "f");
        assert_eq!(g.name, "copy");
    }

    #[test]
    fn resource_class_factors_are_monotonic() {
        assert!(ResourceClass::Small.speed_factor() < ResourceClass::Medium.speed_factor());
        assert!(ResourceClass::Medium.speed_factor() < ResourceClass::Large.speed_factor());
        assert!(ResourceClass::Small.cost_factor() < ResourceClass::Large.cost_factor());
    }

    #[test]
    fn dot_contains_op_names() {
        let (f, _) = linear_flow();
        let dot = f.to_dot();
        assert!(dot.contains("EXTRACT s"));
        assert!(dot.contains("LOAD t"));
    }
}
