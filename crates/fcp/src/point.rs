//! Application points: where an FCP can be deployed.

use etl_model::{EdgeId, EtlFlow, NodeId};
use std::fmt;

/// A place where a Flow Component Pattern can be applied (§2.2: "either a
/// node (i.e., an ETL flow operation), or an edge or the entire ETL flow
/// graph").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ApplicationPoint {
    /// A node point: the pattern replaces/augments one operation.
    Node(NodeId),
    /// An edge point: the pattern is interposed between two consecutive
    /// operations.
    Edge(EdgeId),
    /// The entire graph: process-wide configuration.
    Graph,
}

impl ApplicationPoint {
    /// True when the point still exists in the flow (combination
    /// application can invalidate node points).
    pub fn is_live(&self, flow: &EtlFlow) -> bool {
        match self {
            ApplicationPoint::Node(n) => flow.graph.contains_node(*n),
            ApplicationPoint::Edge(e) => flow.graph.contains_edge(*e),
            ApplicationPoint::Graph => true,
        }
    }

    /// Human-readable description against a flow.
    pub fn describe(&self, flow: &EtlFlow) -> String {
        match self {
            ApplicationPoint::Node(n) => match flow.op(*n) {
                Some(op) => format!("node {n} ({})", op.name),
                None => format!("node {n} (removed)"),
            },
            ApplicationPoint::Edge(e) => match flow.graph.endpoints(*e) {
                Some((s, d)) => {
                    let sn = flow.op(s).map(|o| o.name.as_str()).unwrap_or("?");
                    let dn = flow.op(d).map(|o| o.name.as_str()).unwrap_or("?");
                    format!("edge {e} ({sn} → {dn})")
                }
                None => format!("edge {e} (removed)"),
            },
            ApplicationPoint::Graph => "entire graph".to_string(),
        }
    }
}

impl fmt::Display for ApplicationPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplicationPoint::Node(n) => write!(f, "@{n}"),
            ApplicationPoint::Edge(e) => write!(f, "@{e}"),
            ApplicationPoint::Graph => write!(f, "@graph"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etl_model::expr::Expr;
    use etl_model::{Attribute, DataType, Operation, Schema};

    fn flow() -> (EtlFlow, NodeId, EdgeId) {
        let mut f = EtlFlow::new("t");
        let schema = Schema::new(vec![Attribute::required("id", DataType::Int)]);
        let a = f.add_op(Operation::extract("s", schema));
        let b = f.add_op(Operation::filter("f", Expr::col("id").gt(Expr::lit_i(0))));
        let c = f.add_op(Operation::load("t"));
        let e = f.connect(a, b).unwrap();
        f.connect(b, c).unwrap();
        (f, b, e)
    }

    #[test]
    fn liveness() {
        let (mut f, n, e) = flow();
        assert!(ApplicationPoint::Node(n).is_live(&f));
        assert!(ApplicationPoint::Edge(e).is_live(&f));
        assert!(ApplicationPoint::Graph.is_live(&f));
        f.graph.remove_node(n);
        assert!(!ApplicationPoint::Node(n).is_live(&f));
        assert!(!ApplicationPoint::Edge(e).is_live(&f));
    }

    #[test]
    fn descriptions() {
        let (f, n, e) = flow();
        assert!(ApplicationPoint::Node(n).describe(&f).contains("f"));
        let d = ApplicationPoint::Edge(e).describe(&f);
        assert!(d.contains("EXTRACT s") && d.contains('→'));
        assert_eq!(ApplicationPoint::Graph.describe(&f), "entire graph");
    }
}
