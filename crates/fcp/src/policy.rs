//! Deployment policies: how aggressively patterns are deployed (demo part
//! P2 — "which policy will be followed for their deployment", configured
//! "according to the user-defined prioritization of goals, as well as the
//! set of constraints based on estimated measures").

use quality::{Characteristic, MeasureId, MeasureVector};

/// A constraint on an estimated measure that every presented alternative
/// must satisfy (e.g. "cycle time at most 2× the baseline").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureConstraint {
    /// The constrained measure.
    pub measure: MeasureId,
    /// Maximum allowed ratio versus the baseline value (for lower-is-better
    /// measures) or minimum allowed ratio (for higher-is-better measures).
    pub ratio_vs_baseline: f64,
}

impl MeasureConstraint {
    /// True when `alt` satisfies the constraint against `baseline`.
    pub fn satisfied(&self, baseline: &MeasureVector, alt: &MeasureVector) -> bool {
        let (Some(b), Some(v)) = (baseline.get(self.measure), alt.get(self.measure)) else {
            return true; // unmeasured ⇒ unconstrained
        };
        let eps = 1e-9;
        if self.measure.higher_is_better() {
            v + eps >= b * self.ratio_vs_baseline
        } else {
            v <= b * self.ratio_vs_baseline + eps
        }
    }
}

/// Deployment policy: which patterns are considered, how many of them per
/// alternative, placement-quality thresholds, and constraints on the
/// resulting measures.
#[derive(Debug, Clone)]
pub struct DeploymentPolicy {
    /// Human-readable policy name.
    pub name: String,
    /// Only patterns improving these characteristics are considered
    /// (empty = all).
    pub priorities: Vec<Characteristic>,
    /// Maximum number of pattern applications combined into one
    /// alternative flow (the combination depth of §2.2).
    pub max_patterns_per_flow: usize,
    /// Maximum applications of any single pattern within one alternative.
    pub max_per_pattern: usize,
    /// Candidates with fitness below this are discarded ("deployment of
    /// patterns based on custom policies based on different heuristics").
    pub min_fitness: f64,
    /// Per-pattern cap on candidate points kept after fitness ranking
    /// (bounds the factorial explosion; `usize::MAX` = keep all).
    pub top_k_points_per_pattern: usize,
    /// Constraints every surviving alternative must satisfy.
    pub constraints: Vec<MeasureConstraint>,
}

impl DeploymentPolicy {
    /// Balanced default: all characteristics, up to 2 combined patterns,
    /// heuristically sensible placements only.
    pub fn balanced() -> Self {
        DeploymentPolicy {
            name: "balanced".into(),
            priorities: vec![],
            max_patterns_per_flow: 2,
            max_per_pattern: 1,
            min_fitness: 0.15,
            top_k_points_per_pattern: 6,
            constraints: vec![],
        }
    }

    /// Performance-first: only performance patterns, allow doubling cost.
    pub fn performance_first() -> Self {
        DeploymentPolicy {
            name: "performance-first".into(),
            priorities: vec![Characteristic::Performance],
            max_patterns_per_flow: 3,
            max_per_pattern: 2,
            min_fitness: 0.3,
            top_k_points_per_pattern: 6,
            constraints: vec![MeasureConstraint {
                measure: MeasureId::MonetaryCost,
                ratio_vs_baseline: 3.0,
            }],
        }
    }

    /// Reliability-first: checkpoints everywhere sensible, but cycle time
    /// may not blow past 1.5× the baseline.
    pub fn reliability_first() -> Self {
        DeploymentPolicy {
            name: "reliability-first".into(),
            priorities: vec![Characteristic::Reliability],
            max_patterns_per_flow: 3,
            max_per_pattern: 3,
            min_fitness: 0.3,
            top_k_points_per_pattern: 8,
            constraints: vec![MeasureConstraint {
                measure: MeasureId::CycleTimeMs,
                ratio_vs_baseline: 1.5,
            }],
        }
    }

    /// Data-quality-first: cleaning near sources.
    pub fn data_quality_first() -> Self {
        DeploymentPolicy {
            name: "data-quality-first".into(),
            priorities: vec![Characteristic::DataQuality],
            max_patterns_per_flow: 3,
            max_per_pattern: 1,
            min_fitness: 0.3,
            top_k_points_per_pattern: 6,
            constraints: vec![MeasureConstraint {
                measure: MeasureId::CycleTimeMs,
                ratio_vs_baseline: 2.0,
            }],
        }
    }

    /// Exhaustive: everything, everywhere, all at once — for the
    /// complexity experiments. Use with small flows.
    pub fn exhaustive(depth: usize) -> Self {
        DeploymentPolicy {
            name: format!("exhaustive-{depth}"),
            priorities: vec![],
            max_patterns_per_flow: depth,
            max_per_pattern: depth,
            min_fitness: 0.0,
            top_k_points_per_pattern: usize::MAX,
            constraints: vec![],
        }
    }

    /// True when `alt` passes every constraint against `baseline`.
    pub fn admits(&self, baseline: &MeasureVector, alt: &MeasureVector) -> bool {
        self.constraints.iter().all(|c| c.satisfied(baseline, alt))
    }

    /// Effective combination depth over `n_candidates` candidates: the
    /// policy's per-flow pattern cap, clamped to the candidate count. Every
    /// walker of the combination space (lazy enumeration, beam, greedy)
    /// derives its depth from this single place.
    pub fn combination_depth(&self, n_candidates: usize) -> usize {
        self.max_patterns_per_flow.min(n_candidates)
    }
}

impl Default for DeploymentPolicy {
    fn default() -> Self {
        DeploymentPolicy::balanced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_lower_better() {
        let c = MeasureConstraint {
            measure: MeasureId::CycleTimeMs,
            ratio_vs_baseline: 1.5,
        };
        let mut base = MeasureVector::new();
        base.set(MeasureId::CycleTimeMs, 100.0);
        let mut ok = MeasureVector::new();
        ok.set(MeasureId::CycleTimeMs, 140.0);
        let mut bad = MeasureVector::new();
        bad.set(MeasureId::CycleTimeMs, 160.0);
        assert!(c.satisfied(&base, &ok));
        assert!(!c.satisfied(&base, &bad));
    }

    #[test]
    fn constraint_higher_better() {
        let c = MeasureConstraint {
            measure: MeasureId::Completeness,
            ratio_vs_baseline: 1.0, // must not regress
        };
        let mut base = MeasureVector::new();
        base.set(MeasureId::Completeness, 0.9);
        let mut ok = MeasureVector::new();
        ok.set(MeasureId::Completeness, 0.95);
        let mut bad = MeasureVector::new();
        bad.set(MeasureId::Completeness, 0.5);
        assert!(c.satisfied(&base, &ok));
        assert!(!c.satisfied(&base, &bad));
    }

    #[test]
    fn unmeasured_is_unconstrained() {
        let c = MeasureConstraint {
            measure: MeasureId::DeadlineSuccess,
            ratio_vs_baseline: 1.0,
        };
        assert!(c.satisfied(&MeasureVector::new(), &MeasureVector::new()));
    }

    #[test]
    fn presets_are_sane() {
        for p in [
            DeploymentPolicy::balanced(),
            DeploymentPolicy::performance_first(),
            DeploymentPolicy::reliability_first(),
            DeploymentPolicy::data_quality_first(),
            DeploymentPolicy::exhaustive(3),
        ] {
            assert!(p.max_patterns_per_flow >= 1);
            assert!(p.max_per_pattern >= 1);
            assert!((0.0..=1.0).contains(&p.min_fitness));
        }
    }

    #[test]
    fn combination_depth_clamps_to_candidates() {
        let p = DeploymentPolicy::exhaustive(4);
        assert_eq!(p.combination_depth(10), 4);
        assert_eq!(p.combination_depth(3), 3);
        assert_eq!(p.combination_depth(0), 0);
    }

    #[test]
    fn admits_uses_all_constraints() {
        let p = DeploymentPolicy::reliability_first();
        let mut base = MeasureVector::new();
        base.set(MeasureId::CycleTimeMs, 100.0);
        let mut slow = MeasureVector::new();
        slow.set(MeasureId::CycleTimeMs, 200.0);
        assert!(!p.admits(&base, &slow));
        let mut fine = MeasureVector::new();
        fine.set(MeasureId::CycleTimeMs, 120.0);
        assert!(p.admits(&base, &fine));
    }
}
