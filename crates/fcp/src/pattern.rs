//! The [`Pattern`] trait and its evaluation context.

use crate::point::ApplicationPoint;
use crate::prereq::Prerequisite;
use etl_model::{propagate_schemas, EtlFlow, NodeId, Schema, SchemaTable};
use quality::{Characteristic, GainProfile};
use std::fmt;

/// Errors during pattern application.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternError {
    /// The point does not satisfy the pattern's prerequisites (any more).
    NotApplicable {
        /// Pattern name.
        pattern: String,
        /// Point description.
        point: String,
    },
    /// The structural edit failed.
    Graph(String),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::NotApplicable { pattern, point } => {
                write!(f, "pattern `{pattern}` not applicable at {point}")
            }
            PatternError::Graph(e) => write!(f, "graph edit failed: {e}"),
        }
    }
}

impl std::error::Error for PatternError {}

/// Record of one successful pattern application.
#[derive(Debug, Clone)]
pub struct AppliedPattern {
    /// Pattern name.
    pub pattern: String,
    /// Where it was applied.
    pub point: ApplicationPoint,
    /// Nodes the application added to the flow.
    pub added_nodes: Vec<NodeId>,
}

/// Cost/topology landmarks used only by fitness heuristics — computed
/// lazily because the planner's incremental apply path checks applicability
/// (schemas + prerequisites) without ever ranking placements.
struct Landmarks {
    /// Distance (edges) from the nearest extract, per node index.
    distances: Vec<usize>,
    /// The maximum per-tuple cost over all operations (for normalising
    /// cost-based fitness).
    max_cost_per_tuple: f64,
    /// Cumulative upstream cost per node: the per-tuple cost of the most
    /// expensive source→node chain (the "how much work would a failure here
    /// lose" landmark behind checkpoint placement).
    upstream_cost: Vec<f64>,
}

/// Pre-computed per-flow context shared by applicability checks and fitness
/// heuristics: output schemas, source distances and cost landmarks. Built
/// once per flow, reused across every (pattern, point) probe.
pub struct PatternContext<'a> {
    /// The flow under analysis.
    pub flow: &'a EtlFlow,
    /// Output schema per node (dense by node index), `None` for dead ids.
    /// `Arc`-shared: passthrough operators alias their input's allocation.
    pub schemas: SchemaTable,
    landmarks: std::sync::OnceLock<Landmarks>,
}

impl<'a> PatternContext<'a> {
    /// Builds the context; the flow must be schema-consistent.
    pub fn new(flow: &'a EtlFlow) -> Result<Self, PatternError> {
        let schemas = propagate_schemas(flow).map_err(|e| PatternError::Graph(e.to_string()))?;
        Ok(Self::with_schemas(flow, schemas))
    }

    /// Builds the context around an already-computed schema table — the
    /// cheap constructor behind incremental combination application: the
    /// caller carries the table across successive pattern applications
    /// (via `propagate_schemas_delta`) instead of re-propagating the whole
    /// flow. Cost landmarks are computed lazily, only if a fitness
    /// heuristic asks for them. `schemas` must be `flow`'s own table, dense
    /// by node index.
    pub fn with_schemas(flow: &'a EtlFlow, schemas: SchemaTable) -> Self {
        PatternContext {
            flow,
            schemas,
            landmarks: std::sync::OnceLock::new(),
        }
    }

    fn landmarks(&self) -> &Landmarks {
        self.landmarks.get_or_init(|| {
            let flow = self.flow;
            let distances = flow.distance_from_sources();
            let max_cost_per_tuple = flow
                .graph
                .nodes()
                .map(|(_, op)| op.cost.cost_per_tuple_ms)
                .fold(0.0f64, f64::max);
            let mut upstream_cost = vec![0.0f64; flow.graph.node_bound()];
            if let Ok(order) = flow.topo_order() {
                for n in order {
                    let op = flow.op(n).expect("live node");
                    let up = flow
                        .graph
                        .predecessors(n)
                        .map(|p| upstream_cost[p.index()])
                        .fold(0.0f64, f64::max);
                    upstream_cost[n.index()] = up + op.cost.cost_per_tuple_ms;
                }
            }
            Landmarks {
                distances,
                max_cost_per_tuple,
                upstream_cost,
            }
        })
    }

    /// Distance (edges) from the nearest extract, per node index.
    pub fn distances(&self) -> &[usize] {
        &self.landmarks().distances
    }

    /// The maximum per-tuple cost over all operations (for normalising
    /// cost-based fitness).
    pub fn max_cost_per_tuple(&self) -> f64 {
        self.landmarks().max_cost_per_tuple
    }

    /// Cumulative upstream cost per node: the per-tuple cost of the most
    /// expensive source→node chain.
    pub fn upstream_cost(&self) -> &[f64] {
        &self.landmarks().upstream_cost
    }

    /// Consumes the context, returning its schema table.
    pub fn into_schemas(self) -> SchemaTable {
        self.schemas
    }

    /// Schema flowing over an edge (= output schema of its source node).
    pub fn edge_schema(&self, e: etl_model::EdgeId) -> Option<&Schema> {
        let (src, _) = self.flow.graph.endpoints(e)?;
        self.schemas[src.index()].as_deref()
    }

    /// Schema at a point: edge schema, node *input* schema (first
    /// predecessor's output), or `None` for graph points.
    pub fn point_schema(&self, p: ApplicationPoint) -> Option<&Schema> {
        match p {
            ApplicationPoint::Edge(e) => self.edge_schema(e),
            ApplicationPoint::Node(n) => {
                let pred = self.flow.graph.predecessors(n).next()?;
                self.schemas[pred.index()].as_deref()
            }
            ApplicationPoint::Graph => None,
        }
    }

    /// Distance of a point from the sources (edge: its source node's
    /// distance; node: the node's own; graph: 0).
    pub fn point_distance(&self, p: ApplicationPoint) -> usize {
        match p {
            ApplicationPoint::Edge(e) => self
                .flow
                .graph
                .endpoints(e)
                .map(|(s, _)| self.distances()[s.index()])
                .unwrap_or(usize::MAX),
            ApplicationPoint::Node(n) => self
                .distances()
                .get(n.index())
                .copied()
                .unwrap_or(usize::MAX),
            ApplicationPoint::Graph => 0,
        }
    }
}

/// A Flow Component Pattern.
///
/// Implementations must keep [`Pattern::apply`] *functionality-preserving*:
/// the loaded data may only improve (cleaning) or stay equivalent
/// (parallelism, savepoints, configuration) — never change semantics. The
/// integration tests assert this per built-in.
pub trait Pattern: Send + Sync {
    /// Unique pattern name (the palette key).
    fn name(&self) -> &str;

    /// The quality characteristic this pattern is intended to improve
    /// (Fig. 6's "related quality attribute" column).
    fn improves(&self) -> Characteristic;

    /// A sound optimistic cap on how much one application can improve each
    /// characteristic score — the static metadata behind the planner's
    /// bound-based dominance pruning. The default is
    /// [`GainProfile::unbounded`]: sound for any pattern, useless for
    /// pruning. Built-ins tighten the axes they provably never improve
    /// (e.g. `EncryptChannels` caps everything but security at `1.0`).
    /// Implementations must stay *optimistic*: claiming `1.0` on an axis a
    /// pattern can actually improve would make pruning unsound.
    fn gain_profile(&self) -> GainProfile {
        GainProfile::unbounded()
    }

    /// The conjunctive applicability prerequisites.
    fn prerequisites(&self) -> Vec<Prerequisite>;

    /// True when every prerequisite holds at `point`.
    fn applicable(&self, ctx: &PatternContext<'_>, point: ApplicationPoint) -> bool {
        point.is_live(ctx.flow)
            && self
                .prerequisites()
                .iter()
                .all(|p| p.satisfied(ctx, point, self.name()))
    }

    /// Enumerates every valid application point on the flow. The paper's
    /// §3 guarantee — "all of the potential application points on the ETL
    /// flow are checked for each FCP" — is this default implementation.
    fn candidate_points(&self, ctx: &PatternContext<'_>) -> Vec<ApplicationPoint> {
        let mut out = Vec::new();
        if self.applicable(ctx, ApplicationPoint::Graph) {
            out.push(ApplicationPoint::Graph);
        }
        for n in ctx.flow.graph.node_ids() {
            let p = ApplicationPoint::Node(n);
            if self.applicable(ctx, p) {
                out.push(p);
            }
        }
        for e in ctx.flow.graph.edge_ids() {
            let p = ApplicationPoint::Edge(e);
            if self.applicable(ctx, p) {
                out.push(p);
            }
        }
        out
    }

    /// Placement fitness in `[0, 1]` (higher = heuristically better spot).
    /// Defaults to indifference.
    fn fitness(&self, _ctx: &PatternContext<'_>, _point: ApplicationPoint) -> f64 {
        0.5
    }

    /// Applies the pattern at `point`, mutating `flow`.
    ///
    /// Implementations re-check applicability (the flow may have changed
    /// since enumeration) and configure the inserted operations from the
    /// schema at the exact application point (§3: "configured according to
    /// the properties … of the initial ETL flow as well as the exact
    /// application point").
    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError>;

    /// Applies the pattern at `point` *without* re-validating
    /// applicability. The caller must have just checked
    /// [`applicable`](Self::applicable) against this exact flow state;
    /// `schemas` is that check's schema table (dense by node index), so
    /// implementations can configure inserted operations from the point
    /// schema without re-propagating the flow. The default conservatively
    /// delegates to [`apply`](Self::apply) (which re-checks from scratch);
    /// built-ins override it to skip the O(flow) context rebuild — the hot
    /// path of the planner's incremental evaluation.
    fn apply_unchecked(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        schemas: &SchemaTable,
    ) -> Result<AppliedPattern, PatternError> {
        let _ = schemas;
        self.apply(flow, point)
    }

    /// True when this pattern's structural edit is confined to the nodes it
    /// reports in [`AppliedPattern::added_nodes`] (plus adjacency rewiring
    /// and graph-level configuration) — i.e. it never edits an existing
    /// operation's definition in place. Incremental appliers then repair
    /// their carried schema table from just those nodes instead of
    /// re-deriving the fork's full copy-on-write delta. The conservative
    /// default is `false`; every built-in opts in.
    fn patch_confined_to_added_nodes(&self) -> bool {
        false
    }
}

/// Schema at a point against an externally-carried schema table — the
/// context-free counterpart of [`PatternContext::point_schema`], used by
/// [`Pattern::apply_unchecked`] implementations.
pub fn point_schema_in<'s>(
    flow: &EtlFlow,
    schemas: &'s SchemaTable,
    p: ApplicationPoint,
) -> Option<&'s Schema> {
    match p {
        ApplicationPoint::Edge(e) => {
            let (src, _) = flow.graph.endpoints(e)?;
            schemas.get(src.index())?.as_deref()
        }
        ApplicationPoint::Node(n) => {
            let pred = flow.graph.predecessors(n).next()?;
            schemas.get(pred.index())?.as_deref()
        }
        ApplicationPoint::Graph => None,
    }
}

/// Helper shared by edge-interposing patterns: re-validates applicability,
/// splices `op` onto the edge and returns the application record.
pub(crate) fn interpose_applying(
    pattern: &dyn Pattern,
    flow: &mut EtlFlow,
    point: ApplicationPoint,
    op: etl_model::Operation,
) -> Result<AppliedPattern, PatternError> {
    let ctx = PatternContext::new(flow)?;
    if !pattern.applicable(&ctx, point) {
        return Err(PatternError::NotApplicable {
            pattern: pattern.name().to_string(),
            point: point.describe(flow),
        });
    }
    let ApplicationPoint::Edge(e) = point else {
        return Err(PatternError::NotApplicable {
            pattern: pattern.name().to_string(),
            point: point.describe(flow),
        });
    };
    let splice = flow
        .graph
        .interpose_on_edge(e, op, Default::default(), Default::default())
        .map_err(|err| PatternError::Graph(err.to_string()))?;
    Ok(AppliedPattern {
        pattern: pattern.name().to_string(),
        point,
        added_nodes: vec![splice.node],
    })
}

/// The unchecked counterpart of [`interpose_applying`]: splices `op` onto
/// the edge with no context rebuild. Callers must have verified
/// applicability on this exact flow state.
pub(crate) fn interpose_unchecked(
    pattern: &dyn Pattern,
    flow: &mut EtlFlow,
    point: ApplicationPoint,
    op: etl_model::Operation,
) -> Result<AppliedPattern, PatternError> {
    let ApplicationPoint::Edge(e) = point else {
        return Err(PatternError::NotApplicable {
            pattern: pattern.name().to_string(),
            point: point.describe(flow),
        });
    };
    let splice = flow
        .graph
        .interpose_on_edge(e, op, Default::default(), Default::default())
        .map_err(|err| PatternError::Graph(err.to_string()))?;
    Ok(AppliedPattern {
        pattern: pattern.name().to_string(),
        point,
        added_nodes: vec![splice.node],
    })
}
