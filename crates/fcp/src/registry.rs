//! The pattern registry: the palette of available FCPs, extendable with
//! custom patterns (demo part P3: "saving custom processing preferences,
//! adding them to the palette of available patterns for future execution").

use crate::builtin::{
    AddCheckpoint, CrosscheckSources, EnableAccessControl, EncryptChannels, FilterNullValues,
    IncreaseRecurrence, ParallelizeTask, RemoveDuplicateEntries, UpgradeResources,
};
use crate::pattern::Pattern;
use quality::Characteristic;
use std::sync::Arc;

/// An extendable palette of Flow Component Patterns.
#[derive(Clone, Default)]
pub struct PatternRegistry {
    patterns: Vec<Arc<dyn Pattern>>,
}

impl PatternRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        PatternRegistry::default()
    }

    /// The paper's Fig. 6 palette: the five classic FCPs.
    /// `crosscheck_specs` are the `(key attribute, alternative source)`
    /// pairs available to `CrosscheckSources`.
    pub fn fig6_palette(crosscheck_specs: Vec<(String, String)>) -> Self {
        let mut r = PatternRegistry::new();
        r.register(RemoveDuplicateEntries);
        r.register(FilterNullValues);
        r.register(CrosscheckSources::new(crosscheck_specs));
        r.register(ParallelizeTask::default());
        r.register(AddCheckpoint);
        r
    }

    /// Full standard palette: Fig. 6 plus the graph-level configuration
    /// patterns of §2.2.
    pub fn standard(crosscheck_specs: Vec<(String, String)>) -> Self {
        let mut r = Self::fig6_palette(crosscheck_specs);
        r.register(EncryptChannels);
        r.register(EnableAccessControl);
        r.register(UpgradeResources);
        r.register(IncreaseRecurrence);
        r
    }

    /// Standard palette with crosscheck specs derived from a catalog.
    pub fn standard_for_catalog(catalog: &datagen::Catalog) -> Self {
        let specs = CrosscheckSources::from_catalog(catalog);
        let mut r = PatternRegistry::new();
        r.register(RemoveDuplicateEntries);
        r.register(FilterNullValues);
        r.register(specs);
        r.register(ParallelizeTask::default());
        r.register(AddCheckpoint);
        r.register(EncryptChannels);
        r.register(EnableAccessControl);
        r.register(UpgradeResources);
        r.register(IncreaseRecurrence);
        r
    }

    /// Adds a pattern to the palette.
    pub fn register(&mut self, pattern: impl Pattern + 'static) {
        self.patterns.push(Arc::new(pattern));
    }

    /// Adds an already-shared pattern.
    pub fn register_arc(&mut self, pattern: Arc<dyn Pattern>) {
        self.patterns.push(pattern);
    }

    /// Number of registered patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when the palette is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Iterates over the palette.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Pattern>> {
        self.patterns.iter()
    }

    /// Looks a pattern up by name.
    pub fn by_name(&self, name: &str) -> Option<&Arc<dyn Pattern>> {
        self.patterns.iter().find(|p| p.name() == name)
    }

    /// Restricts the palette to patterns improving the given
    /// characteristics (empty filter = everything) — the P2 interaction
    /// ("users will be allowed to choose which of the available Flow
    /// Component Patterns will be used").
    pub fn filtered(&self, improve: &[Characteristic]) -> PatternRegistry {
        if improve.is_empty() {
            return self.clone();
        }
        PatternRegistry {
            patterns: self
                .patterns
                .iter()
                .filter(|p| improve.contains(&p.improves()))
                .cloned()
                .collect(),
        }
    }

    /// Restricts the palette to the named patterns.
    pub fn subset(&self, names: &[&str]) -> PatternRegistry {
        PatternRegistry {
            patterns: self
                .patterns
                .iter()
                .filter(|p| names.contains(&p.name()))
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_palette_matches_paper() {
        let r = PatternRegistry::fig6_palette(vec![]);
        assert_eq!(r.len(), 5);
        for name in [
            "RemoveDuplicateEntries",
            "FilterNullValues",
            "CrosscheckSources",
            "ParallelizeTask",
            "AddCheckpoint",
        ] {
            assert!(r.by_name(name).is_some(), "missing {name}");
        }
        // related quality attributes as in Fig. 6
        assert_eq!(
            r.by_name("RemoveDuplicateEntries").unwrap().improves(),
            Characteristic::DataQuality
        );
        assert_eq!(
            r.by_name("ParallelizeTask").unwrap().improves(),
            Characteristic::Performance
        );
        assert_eq!(
            r.by_name("AddCheckpoint").unwrap().improves(),
            Characteristic::Reliability
        );
    }

    #[test]
    fn standard_adds_graph_patterns() {
        let r = PatternRegistry::standard(vec![]);
        assert_eq!(r.len(), 9);
        assert!(r.by_name("EncryptChannels").is_some());
    }

    #[test]
    fn gain_profiles_admit_the_improved_characteristic() {
        // Soundness floor for the bound pruner: every builtin must at least
        // allow gains on the axis it claims to improve, and no cap may ever
        // fall below 1.0 (a profile bounds gains, never claims regressions).
        let r = PatternRegistry::standard(vec![("pu_id".into(), "ref_purchases".into())]);
        for p in r.iter() {
            let g = p.gain_profile();
            assert!(
                g.cap(p.improves()) > 1.0,
                "{} caps its own improved axis at 1.0",
                p.name()
            );
            for c in Characteristic::ALL {
                assert!(g.cap(c) >= 1.0, "{} cap below 1.0 on {c}", p.name());
            }
        }
        // The security-only patterns are the sharp ones: nothing else moves.
        for name in ["EncryptChannels", "EnableAccessControl"] {
            let g = r.by_name(name).unwrap().gain_profile();
            for c in Characteristic::ALL {
                if c != Characteristic::Security {
                    assert_eq!(g.cap(c), 1.0, "{name} should not claim gains on {c}");
                }
            }
        }
        // In-flow patterns can never move the config-derived security score.
        for name in [
            "FilterNullValues",
            "RemoveDuplicateEntries",
            "CrosscheckSources",
            "ParallelizeTask",
            "AddCheckpoint",
        ] {
            let g = r.by_name(name).unwrap().gain_profile();
            assert_eq!(g.cap(Characteristic::Security), 1.0, "{name}");
        }
    }

    #[test]
    fn filter_by_characteristic() {
        let r = PatternRegistry::standard(vec![]);
        let dq = r.filtered(&[Characteristic::DataQuality]);
        assert_eq!(dq.len(), 4); // 3 cleaning + IncreaseRecurrence
        let all = r.filtered(&[]);
        assert_eq!(all.len(), r.len());
    }

    #[test]
    fn subset_by_name() {
        let r = PatternRegistry::standard(vec![]);
        let s = r.subset(&["AddCheckpoint", "ParallelizeTask"]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn custom_registration_extends_palette() {
        use crate::custom::{CustomPattern, FitnessPreset};
        let mut r = PatternRegistry::fig6_palette(vec![]);
        r.register(CustomPattern::new(
            "MyPattern",
            Characteristic::Performance,
            vec![],
            FitnessPreset::Uniform,
            |_| etl_model::Operation::new("noop", etl_model::OpKind::Split),
        ));
        assert_eq!(r.len(), 6);
        assert!(r.by_name("MyPattern").is_some());
    }
}
