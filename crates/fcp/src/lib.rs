//! `fcp` — Flow Component Patterns: the paper's §2.2 mechanism.
//!
//! An FCP is a "predefined construct that improves certain quality
//! characteristics, but does not alter [the flow's] main functionality". Its
//! internal representation is *itself an ETL flow* deployed at a valid
//! **application point** — a node, an edge, or the entire graph
//! (`P = P_E ∪ P_V ∪ P_G`). Whether a point is valid is decided by a
//! conjunctive set of **applicability prerequisites** (e.g. "numeric fields
//! in the output schema of the preceding operator"); among valid points,
//! **heuristics** rank fitness (e.g. "checkpoints after the most complex
//! operations", "cleaning as close as possible to the sources").
//!
//! The crate provides:
//!
//! * the [`Pattern`] trait and [`ApplicationPoint`] / [`PatternContext`]
//!   machinery;
//! * the paper's Fig. 6 palette as built-ins: [`builtin::RemoveDuplicateEntries`],
//!   [`builtin::FilterNullValues`], [`builtin::CrosscheckSources`]
//!   (data quality), [`builtin::ParallelizeTask`] (performance),
//!   [`builtin::AddCheckpoint`] (reliability);
//! * the graph-level configuration patterns §2.2 sketches:
//!   [`builtin::EncryptChannels`], [`builtin::EnableAccessControl`]
//!   (security), [`builtin::UpgradeResources`] (performance),
//!   [`builtin::IncreaseRecurrence`] (data freshness);
//! * [`CustomPattern`] — user-defined patterns assembled from prerequisites
//!   plus an operation template (the P3 part of the demo walkthrough);
//! * [`PatternRegistry`] — the palette, extendable at run time;
//! * [`DeploymentPolicy`] — which patterns are enabled and how aggressively
//!   they are deployed.
//!
//! # Example
//!
//! ```
//! use datagen::fig2::{purchases_catalog, purchases_flow};
//! use datagen::DirtProfile;
//! use fcp::PatternRegistry;
//!
//! let catalog = purchases_catalog(60, &DirtProfile::demo(), 1);
//! let registry = PatternRegistry::standard_for_catalog(&catalog);
//! assert!(registry.len() >= 5); // the Fig. 6 palette and the graph patterns
//! for pattern in registry.iter() {
//!     println!("{} improves {:?}", pattern.name(), pattern.improves());
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builtin;
pub mod custom;
mod pattern;
mod point;
mod policy;
mod prereq;
mod registry;

pub use custom::CustomPattern;
pub use pattern::{point_schema_in, AppliedPattern, Pattern, PatternContext, PatternError};
pub use point::ApplicationPoint;
pub use policy::{DeploymentPolicy, MeasureConstraint};
pub use prereq::Prerequisite;
pub use registry::PatternRegistry;
