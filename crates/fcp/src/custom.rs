//! User-defined patterns: the P3 part of the demo walkthrough — "users will
//! be guided through defining their own Flow Component Patterns … by
//! extending and pre-configuring the existing ones", saved "to the palette
//! of available patterns for future execution".

use crate::pattern::{interpose_applying, AppliedPattern, Pattern, PatternContext, PatternError};
use crate::point::ApplicationPoint;
use crate::prereq::Prerequisite;
use etl_model::{EtlFlow, Operation, Schema};
use quality::Characteristic;

/// Heuristic presets a custom pattern can choose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitnessPreset {
    /// Prefer points near the sources (cleaning-style).
    NearSources,
    /// Prefer points after expensive segments (checkpoint-style).
    AfterExpensive,
    /// Indifferent.
    Uniform,
}

/// A user-defined, edge-applied pattern assembled from configuration: a
/// name, the characteristic it targets, a conjunctive prerequisite list, a
/// fitness preset and an operation template instantiated against the schema
/// at the exact application point.
pub struct CustomPattern {
    name: String,
    improves: Characteristic,
    prereqs: Vec<Prerequisite>,
    fitness: FitnessPreset,
    template: Box<dyn Fn(&Schema) -> Operation + Send + Sync>,
}

impl CustomPattern {
    /// Builds a custom pattern. The template receives the schema flowing
    /// over the chosen edge and returns the operation to interpose; the
    /// returned operation is automatically tagged with the pattern name.
    pub fn new(
        name: impl Into<String>,
        improves: Characteristic,
        mut prereqs: Vec<Prerequisite>,
        fitness: FitnessPreset,
        template: impl Fn(&Schema) -> Operation + Send + Sync + 'static,
    ) -> Self {
        // Edge application and self-stacking protection are implied.
        if !prereqs.contains(&Prerequisite::IsEdge) {
            prereqs.insert(0, Prerequisite::IsEdge);
        }
        let guard = Prerequisite::NotAdjacentToPattern("self".into());
        if !prereqs.contains(&guard) {
            prereqs.push(guard);
        }
        CustomPattern {
            name: name.into(),
            improves,
            prereqs,
            fitness,
            template: Box::new(template),
        }
    }
}

impl Pattern for CustomPattern {
    fn name(&self) -> &str {
        &self.name
    }
    fn patch_confined_to_added_nodes(&self) -> bool {
        true
    }

    fn improves(&self) -> Characteristic {
        self.improves
    }

    fn prerequisites(&self) -> Vec<Prerequisite> {
        self.prereqs.clone()
    }

    fn fitness(&self, ctx: &PatternContext<'_>, point: ApplicationPoint) -> f64 {
        match self.fitness {
            FitnessPreset::Uniform => 0.5,
            FitnessPreset::NearSources => {
                let d = ctx.point_distance(point);
                if d == usize::MAX {
                    0.0
                } else {
                    1.0 / (1.0 + d as f64)
                }
            }
            FitnessPreset::AfterExpensive => {
                let ApplicationPoint::Edge(e) = point else {
                    return 0.0;
                };
                let Some((src, _)) = ctx.flow.graph.endpoints(e) else {
                    return 0.0;
                };
                let upstream = ctx.upstream_cost();
                let max = upstream.iter().fold(0.0f64, |a, &b| a.max(b));
                if max <= 0.0 {
                    0.0
                } else {
                    (upstream[src.index()] / max).clamp(0.0, 1.0)
                }
            }
        }
    }

    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError> {
        let ctx = PatternContext::new(flow)?;
        let schema =
            ctx.point_schema(point)
                .cloned()
                .ok_or_else(|| PatternError::NotApplicable {
                    pattern: self.name.clone(),
                    point: point.describe(flow),
                })?;
        drop(ctx);
        let op = (self.template)(&schema).tag_pattern(self.name.clone());
        interpose_applying(self, flow, point, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::purchases_flow;
    use etl_model::OpKind;

    fn sort_early_pattern() -> CustomPattern {
        CustomPattern::new(
            "SortEarly",
            Characteristic::Manageability,
            vec![Prerequisite::SchemaHasKeyCandidate],
            FitnessPreset::NearSources,
            |schema| {
                let key = schema
                    .attrs()
                    .iter()
                    .find(|a| !a.nullable)
                    .map(|a| a.name.clone())
                    .expect("prerequisite guarantees a key candidate");
                Operation::new("SORT early", OpKind::Sort { by: vec![key] })
            },
        )
    }

    #[test]
    fn custom_pattern_enumerates_and_applies() {
        let (f, _) = purchases_flow();
        let p = sort_early_pattern();
        let ctx = PatternContext::new(&f).unwrap();
        let pts = p.candidate_points(&ctx);
        assert!(!pts.is_empty());
        assert!(pts.iter().all(|pt| matches!(pt, ApplicationPoint::Edge(_))));
        let best = *pts
            .iter()
            .max_by(|a, b| p.fitness(&ctx, **a).total_cmp(&p.fitness(&ctx, **b)))
            .unwrap();
        drop(ctx);
        let mut g = f.fork("custom");
        let applied = p.apply(&mut g, best).unwrap();
        assert_eq!(applied.pattern, "SortEarly");
        g.validate().unwrap();
        // inserted op is configured from the point schema
        let op = g.op(applied.added_nodes[0]).unwrap();
        assert!(matches!(&op.kind, OpKind::Sort { by } if by == &vec!["pu_id".to_string()]));
        assert_eq!(op.from_pattern.as_deref(), Some("SortEarly"));
    }

    #[test]
    fn implied_prereqs_are_injected() {
        let p = CustomPattern::new(
            "X",
            Characteristic::Performance,
            vec![],
            FitnessPreset::Uniform,
            |_| Operation::new("noop", OpKind::Split),
        );
        let ps = p.prerequisites();
        assert!(ps.contains(&Prerequisite::IsEdge));
        assert!(ps.contains(&Prerequisite::NotAdjacentToPattern("self".into())));
    }

    #[test]
    fn self_stacking_prevented_for_custom_patterns() {
        let (f, _) = purchases_flow();
        let p = sort_early_pattern();
        let mut g = f.fork("c");
        let ctx = PatternContext::new(&g).unwrap();
        let best = p.candidate_points(&ctx)[0];
        drop(ctx);
        p.apply(&mut g, best).unwrap();
        let ctx = PatternContext::new(&g).unwrap();
        assert!(!p.applicable(&ctx, best));
    }
}
