//! Applicability prerequisites — the conjunctive conditions that determine
//! valid application points (§3: "each FCP is related to a particular set of
//! prerequisites that have to be satisfied conjunctively").

use crate::pattern::PatternContext;
use crate::point::ApplicationPoint;

/// One applicability condition. A pattern's prerequisites must *all* hold.
#[derive(Debug, Clone, PartialEq)]
pub enum Prerequisite {
    /// Point must be an edge.
    IsEdge,
    /// Point must be a node.
    IsNode,
    /// Point must be the entire graph.
    IsGraph,
    /// The schema at the point must contain at least one attribute.
    SchemaNonEmpty,
    /// The schema at the point must contain a nullable attribute
    /// (a null-filter has work to do).
    SchemaHasNullable,
    /// The schema at the point must contain a numeric attribute — the
    /// paper's worked example ("numeric fields in the output schema of the
    /// preceding operator").
    SchemaHasNumeric,
    /// The schema must contain a non-nullable attribute usable as a match
    /// key (dedup/crosscheck).
    SchemaHasKeyCandidate,
    /// The schema must contain the named attribute.
    SchemaHasAttr(String),
    /// Node point: the operation's kind must be one of these.
    NodeKindIn(Vec<&'static str>),
    /// Node point: the operation must have exactly one input and output
    /// (replaceable by a partition/replica/merge block).
    NodeSingleInOut,
    /// Node point: per-tuple cost at least this many ms (parallelising a
    /// trivial op is pointless).
    NodeCostAtLeast(f64),
    /// Neither endpoint of the edge (nor the node itself) was inserted by
    /// the named pattern — prevents mindless stacking of the same FCP at
    /// the same spot. The string `"self"` resolves to the probing pattern.
    NotAdjacentToPattern(String),
    /// Graph point: channel encryption not already enabled.
    NotEncrypted,
    /// Graph point: role-based access control not already enabled.
    NoAccessControl,
    /// Graph point: resource class can still be upgraded.
    ResourcesUpgradable,
}

impl Prerequisite {
    /// Evaluates the condition at a point. `pattern_name` resolves the
    /// `"self"` placeholder of [`Prerequisite::NotAdjacentToPattern`].
    pub fn satisfied(
        &self,
        ctx: &PatternContext<'_>,
        point: ApplicationPoint,
        pattern_name: &str,
    ) -> bool {
        use ApplicationPoint as P;
        match self {
            Prerequisite::IsEdge => matches!(point, P::Edge(_)),
            Prerequisite::IsNode => matches!(point, P::Node(_)),
            Prerequisite::IsGraph => matches!(point, P::Graph),
            Prerequisite::SchemaNonEmpty => ctx.point_schema(point).is_some_and(|s| !s.is_empty()),
            Prerequisite::SchemaHasNullable => {
                ctx.point_schema(point).is_some_and(|s| s.has_nullable())
            }
            Prerequisite::SchemaHasNumeric => {
                ctx.point_schema(point).is_some_and(|s| s.has_numeric())
            }
            Prerequisite::SchemaHasKeyCandidate => ctx
                .point_schema(point)
                .is_some_and(|s| s.attrs().iter().any(|a| !a.nullable)),
            Prerequisite::SchemaHasAttr(name) => {
                ctx.point_schema(point).is_some_and(|s| s.contains(name))
            }
            Prerequisite::NodeKindIn(kinds) => match point {
                P::Node(n) => ctx
                    .flow
                    .op(n)
                    .is_some_and(|op| kinds.contains(&op.kind.name())),
                _ => false,
            },
            Prerequisite::NodeSingleInOut => match point {
                P::Node(n) => {
                    ctx.flow.graph.contains_node(n)
                        && ctx.flow.graph.in_degree(n) == 1
                        && ctx.flow.graph.out_degree(n) == 1
                }
                _ => false,
            },
            Prerequisite::NodeCostAtLeast(ms) => match point {
                P::Node(n) => ctx
                    .flow
                    .op(n)
                    .is_some_and(|op| op.cost.cost_per_tuple_ms >= *ms),
                _ => false,
            },
            Prerequisite::NotAdjacentToPattern(name) => {
                let target = if name == "self" { pattern_name } else { name };
                let from = |n: etl_model::NodeId| {
                    ctx.flow
                        .op(n)
                        .and_then(|op| op.from_pattern.as_deref())
                        .is_some_and(|p| p == target)
                };
                match point {
                    P::Edge(e) => match ctx.flow.graph.endpoints(e) {
                        Some((s, d)) => !from(s) && !from(d),
                        None => false,
                    },
                    P::Node(n) => !from(n),
                    P::Graph => true,
                }
            }
            Prerequisite::NotEncrypted => matches!(point, P::Graph) && !ctx.flow.config.encrypted,
            Prerequisite::NoAccessControl => {
                matches!(point, P::Graph) && !ctx.flow.config.role_based_access
            }
            Prerequisite::ResourcesUpgradable => {
                matches!(point, P::Graph)
                    && ctx.flow.config.resources != etl_model::ResourceClass::Large
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etl_model::expr::Expr;
    use etl_model::{Attribute, DataType, EtlFlow, Operation, Schema};

    fn flow() -> (EtlFlow, etl_model::NodeId, etl_model::EdgeId) {
        let mut f = EtlFlow::new("t");
        let schema = Schema::new(vec![
            Attribute::required("id", DataType::Int),
            Attribute::new("name", DataType::Str),
        ]);
        let a = f.add_op(Operation::extract("s", schema));
        let b = f.add_op(Operation::filter("f", Expr::col("id").gt(Expr::lit_i(0))));
        let c = f.add_op(Operation::load("t"));
        let e = f.connect(a, b).unwrap();
        f.connect(b, c).unwrap();
        (f, b, e)
    }

    #[test]
    fn point_type_prereqs() {
        let (f, n, e) = flow();
        let ctx = PatternContext::new(&f).unwrap();
        assert!(Prerequisite::IsEdge.satisfied(&ctx, ApplicationPoint::Edge(e), "p"));
        assert!(!Prerequisite::IsEdge.satisfied(&ctx, ApplicationPoint::Node(n), "p"));
        assert!(Prerequisite::IsNode.satisfied(&ctx, ApplicationPoint::Node(n), "p"));
        assert!(Prerequisite::IsGraph.satisfied(&ctx, ApplicationPoint::Graph, "p"));
    }

    #[test]
    fn schema_prereqs() {
        let (f, _, e) = flow();
        let ctx = PatternContext::new(&f).unwrap();
        let p = ApplicationPoint::Edge(e);
        assert!(Prerequisite::SchemaNonEmpty.satisfied(&ctx, p, "x"));
        assert!(Prerequisite::SchemaHasNullable.satisfied(&ctx, p, "x"));
        assert!(Prerequisite::SchemaHasNumeric.satisfied(&ctx, p, "x"));
        assert!(Prerequisite::SchemaHasKeyCandidate.satisfied(&ctx, p, "x"));
        assert!(Prerequisite::SchemaHasAttr("name".into()).satisfied(&ctx, p, "x"));
        assert!(!Prerequisite::SchemaHasAttr("ghost".into()).satisfied(&ctx, p, "x"));
        // graph point has no schema
        assert!(!Prerequisite::SchemaNonEmpty.satisfied(&ctx, ApplicationPoint::Graph, "x"));
    }

    #[test]
    fn node_prereqs() {
        let (f, n, _) = flow();
        let ctx = PatternContext::new(&f).unwrap();
        let p = ApplicationPoint::Node(n);
        assert!(Prerequisite::NodeKindIn(vec!["filter"]).satisfied(&ctx, p, "x"));
        assert!(!Prerequisite::NodeKindIn(vec!["derive"]).satisfied(&ctx, p, "x"));
        assert!(Prerequisite::NodeSingleInOut.satisfied(&ctx, p, "x"));
        assert!(Prerequisite::NodeCostAtLeast(0.0005).satisfied(&ctx, p, "x"));
        assert!(!Prerequisite::NodeCostAtLeast(10.0).satisfied(&ctx, p, "x"));
    }

    #[test]
    fn pattern_adjacency_prereq() {
        let (mut f, _, e) = flow();
        let ctx = PatternContext::new(&f).unwrap();
        let p = ApplicationPoint::Edge(e);
        assert!(Prerequisite::NotAdjacentToPattern("self".into()).satisfied(&ctx, p, "Clean"));
        drop(ctx);
        // interpose a node tagged as produced by "Clean"
        f.graph
            .interpose_on_edge(
                e,
                Operation::new("dd", etl_model::OpKind::Dedup { keys: vec![] })
                    .tag_pattern("Clean"),
                Default::default(),
                Default::default(),
            )
            .unwrap();
        let ctx = PatternContext::new(&f).unwrap();
        // e now ends at the pattern-inserted node
        assert!(!Prerequisite::NotAdjacentToPattern("self".into()).satisfied(&ctx, p, "Clean"));
        // a different pattern is unaffected
        assert!(Prerequisite::NotAdjacentToPattern("self".into()).satisfied(&ctx, p, "Other"));
    }

    #[test]
    fn graph_config_prereqs() {
        let (mut f, _, _) = flow();
        {
            let ctx = PatternContext::new(&f).unwrap();
            assert!(Prerequisite::NotEncrypted.satisfied(&ctx, ApplicationPoint::Graph, "x"));
            assert!(Prerequisite::ResourcesUpgradable.satisfied(
                &ctx,
                ApplicationPoint::Graph,
                "x"
            ));
        }
        f.config.encrypted = true;
        f.config.resources = etl_model::ResourceClass::Large;
        let ctx = PatternContext::new(&f).unwrap();
        assert!(!Prerequisite::NotEncrypted.satisfied(&ctx, ApplicationPoint::Graph, "x"));
        assert!(!Prerequisite::ResourcesUpgradable.satisfied(&ctx, ApplicationPoint::Graph, "x"));
    }
}
