//! `AddCheckpoint` — the reliability FCP of Fig. 6 and Fig. 2b: persists
//! intermediary data as a savepoint so a downstream failure re-extracts from
//! the savepoint instead of re-running the whole upstream segment.

use crate::pattern::{
    interpose_applying, interpose_unchecked, AppliedPattern, Pattern, PatternContext, PatternError,
};
use crate::point::ApplicationPoint;
use crate::prereq::Prerequisite;
use etl_model::{EtlFlow, OpKind, Operation};
use quality::{Characteristic, GainProfile, RATIO_CLAMP_MAX};

/// The `AddCheckpoint` pattern (edge application point).
#[derive(Debug, Default, Clone)]
pub struct AddCheckpoint;

impl Pattern for AddCheckpoint {
    fn name(&self) -> &str {
        "AddCheckpoint"
    }
    fn patch_confined_to_added_nodes(&self) -> bool {
        true
    }

    fn improves(&self) -> Characteristic {
        Characteristic::Reliability
    }

    /// A savepoint cuts expected redo cost (reliability) and, by splitting a
    /// long chain, can shift the structural manageability measures; it never
    /// touches data content, the security config, and only *adds* runtime
    /// and monetary cost.
    fn gain_profile(&self) -> GainProfile {
        GainProfile::neutral()
            .with_cap(Characteristic::Reliability, RATIO_CLAMP_MAX)
            .with_cap(Characteristic::Manageability, RATIO_CLAMP_MAX)
    }

    fn prerequisites(&self) -> Vec<Prerequisite> {
        vec![
            Prerequisite::IsEdge,
            Prerequisite::SchemaNonEmpty,
            Prerequisite::NotAdjacentToPattern("self".into()),
        ]
    }

    /// §3's heuristic verbatim: "the addition of a checkpoint is encouraged
    /// after the execution of the most complex operations of the ETL flow,
    /// in order to avoid the repetition of process-intensive tasks in case
    /// of a recovery". Fitness is the cost share of the operation the edge
    /// leaves — a savepoint directly after the expensive task caps what any
    /// downstream failure has to re-run. (Cumulative upstream cost would be
    /// maximal just before the loads, which protects nothing.)
    fn fitness(&self, ctx: &PatternContext<'_>, point: ApplicationPoint) -> f64 {
        let ApplicationPoint::Edge(e) = point else {
            return 0.0;
        };
        let Some((src, _)) = ctx.flow.graph.endpoints(e) else {
            return 0.0;
        };
        let Some(op) = ctx.flow.op(src) else {
            return 0.0;
        };
        if ctx.max_cost_per_tuple() <= 0.0 {
            return 0.0;
        }
        (op.cost.cost_per_tuple_ms / ctx.max_cost_per_tuple()).clamp(0.0, 1.0)
    }

    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError> {
        let tag = format!("sp_{}", flow.op_count());
        let op = Operation::new("PERSIST intermediary data", OpKind::Checkpoint { tag })
            .tag_pattern(self.name());
        interpose_applying(self, flow, point, op)
    }

    fn apply_unchecked(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        _schemas: &etl_model::SchemaTable,
    ) -> Result<AppliedPattern, PatternError> {
        let tag = format!("sp_{}", flow.op_count());
        let op = Operation::new("PERSIST intermediary data", OpKind::Checkpoint { tag })
            .tag_pattern(self.name());
        interpose_unchecked(self, flow, point, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use quality::MeasureId;
    use simulator::{simulate, SimConfig};

    #[test]
    fn fitness_prefers_post_expensive_edges() {
        let (f, ids) = purchases_flow();
        let ctx = PatternContext::new(&f).unwrap();
        let p = AddCheckpoint;
        // edge right after the expensive DERIVE VALUES
        let after_derive =
            ApplicationPoint::Edge(f.graph.out_edges(ids.derive_values).next().unwrap());
        // edge right after an extract
        let after_extract = ApplicationPoint::Edge(
            f.graph
                .out_edges(f.ops_of_kind("extract")[0])
                .next()
                .unwrap(),
        );
        assert!(p.fitness(&ctx, after_derive) > p.fitness(&ctx, after_extract));
    }

    #[test]
    fn apply_reproduces_fig2b_reliability_gain() {
        let (f, ids) = purchases_flow();
        // make the downstream group-derives fragile, as a failure scenario
        let mut fragile = f.fork("fragile");
        for n in fragile.ops_of_kind("derive") {
            if n != ids.derive_values {
                fragile.op_mut(n).unwrap().cost.failure_rate = 0.2;
            }
        }
        let cat = purchases_catalog(1_000, &DirtProfile::clean(), 3);
        let base_v = quality::evaluate(
            &fragile,
            &simulate(&fragile, &cat, &SimConfig::default()).unwrap(),
        );

        let p = AddCheckpoint;
        let mut g = fragile.fork("with_savepoint");
        // Fig. 2b places the savepoint right after the expensive DERIVE
        // VALUES, upstream of the fragile group-derives.
        let point = ApplicationPoint::Edge(g.graph.out_edges(ids.derive_values).next().unwrap());
        let ctx = PatternContext::new(&g).unwrap();
        assert!(p.applicable(&ctx, point));
        // and the heuristic agrees this is a high-fitness spot
        assert!(p.fitness(&ctx, point) > 0.8);
        drop(ctx);
        let applied = p.apply(&mut g, point).unwrap();
        assert_eq!(applied.added_nodes.len(), 1);
        g.validate().unwrap();

        let v = quality::evaluate(&g, &simulate(&g, &cat, &SimConfig::default()).unwrap());
        assert!(
            v.get(MeasureId::ExpectedRedoMs).unwrap()
                < base_v.get(MeasureId::ExpectedRedoMs).unwrap(),
            "savepoint must reduce expected recovery time"
        );
        assert!(
            v.get(MeasureId::Recoverability).unwrap()
                > base_v.get(MeasureId::Recoverability).unwrap()
        );
        // trade-off: the savepoint write costs cycle time
        assert!(
            v.get(MeasureId::CycleTimeMs).unwrap() > base_v.get(MeasureId::CycleTimeMs).unwrap()
        );
    }

    #[test]
    fn best_point_is_after_the_most_expensive_op() {
        let (f, ids) = purchases_flow();
        let p = AddCheckpoint;
        let ctx = PatternContext::new(&f).unwrap();
        let best = *p
            .candidate_points(&ctx)
            .iter()
            .max_by(|a, b| p.fitness(&ctx, **a).total_cmp(&p.fitness(&ctx, **b)))
            .unwrap();
        let ApplicationPoint::Edge(e) = best else {
            panic!("checkpoint points are edges")
        };
        let (src, _) = f.graph.endpoints(e).unwrap();
        // the best edge leaves the flow's most expensive operation — the
        // DERIVE VALUES node of Fig. 2
        assert_eq!(src, ids.derive_values);
        let _ = &ctx;
    }
}
