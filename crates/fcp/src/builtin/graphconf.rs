//! Graph-level configuration patterns — §2.2: "the entire ETL flow graph as
//! application point serves … process-wide configuration and management
//! operations": security configurations (encryption, role-based access),
//! management of the quality of Hw/Sw resources, and adjusting the frequency
//! of process recurrence.

use crate::pattern::{AppliedPattern, Pattern, PatternContext, PatternError};
use crate::point::ApplicationPoint;
use crate::prereq::Prerequisite;
use etl_model::{EtlFlow, ResourceClass};
use quality::{Characteristic, GainProfile, RATIO_CLAMP_MAX};

fn graph_apply(
    pattern: &dyn Pattern,
    flow: &mut EtlFlow,
    point: ApplicationPoint,
    mutate: impl FnOnce(&mut EtlFlow),
) -> Result<AppliedPattern, PatternError> {
    let ctx = PatternContext::new(flow)?;
    if !pattern.applicable(&ctx, point) {
        return Err(PatternError::NotApplicable {
            pattern: pattern.name().to_string(),
            point: point.describe(flow),
        });
    }
    drop(ctx);
    mutate(flow);
    Ok(AppliedPattern {
        pattern: pattern.name().to_string(),
        point,
        added_nodes: vec![],
    })
}

/// The unchecked counterpart of [`graph_apply`]: the caller has already
/// verified applicability on this exact flow state, so the mutation runs
/// with no context rebuild.
fn graph_apply_unchecked(
    pattern: &dyn Pattern,
    flow: &mut EtlFlow,
    point: ApplicationPoint,
    mutate: impl FnOnce(&mut EtlFlow),
) -> Result<AppliedPattern, PatternError> {
    mutate(flow);
    Ok(AppliedPattern {
        pattern: pattern.name().to_string(),
        point,
        added_nodes: vec![],
    })
}

/// Enables channel encryption process-wide (security ↑, performance tax).
#[derive(Debug, Default, Clone)]
pub struct EncryptChannels;

impl Pattern for EncryptChannels {
    fn name(&self) -> &str {
        "EncryptChannels"
    }
    fn patch_confined_to_added_nodes(&self) -> bool {
        true
    }
    fn improves(&self) -> Characteristic {
        Characteristic::Security
    }
    /// Encryption only flips `config.encrypted`: the security score rises,
    /// every other measure stays put or worsens (the performance tax).
    fn gain_profile(&self) -> GainProfile {
        GainProfile::neutral().with_cap(Characteristic::Security, RATIO_CLAMP_MAX)
    }
    fn prerequisites(&self) -> Vec<Prerequisite> {
        vec![Prerequisite::IsGraph, Prerequisite::NotEncrypted]
    }
    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError> {
        graph_apply(self, flow, point, |f| f.config.encrypted = true)
    }
    fn apply_unchecked(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        _schemas: &etl_model::SchemaTable,
    ) -> Result<AppliedPattern, PatternError> {
        graph_apply_unchecked(self, flow, point, |f| f.config.encrypted = true)
    }
}

/// Enables role-based access control (security ↑, negligible runtime cost).
#[derive(Debug, Default, Clone)]
pub struct EnableAccessControl;

impl Pattern for EnableAccessControl {
    fn name(&self) -> &str {
        "EnableAccessControl"
    }
    fn patch_confined_to_added_nodes(&self) -> bool {
        true
    }
    fn improves(&self) -> Characteristic {
        Characteristic::Security
    }
    /// Access control only flips `config.role_based_access`: no measure
    /// outside the security score can move upward.
    fn gain_profile(&self) -> GainProfile {
        GainProfile::neutral().with_cap(Characteristic::Security, RATIO_CLAMP_MAX)
    }
    fn prerequisites(&self) -> Vec<Prerequisite> {
        vec![Prerequisite::IsGraph, Prerequisite::NoAccessControl]
    }
    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError> {
        graph_apply(self, flow, point, |f| f.config.role_based_access = true)
    }
    fn apply_unchecked(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        _schemas: &etl_model::SchemaTable,
    ) -> Result<AppliedPattern, PatternError> {
        graph_apply_unchecked(self, flow, point, |f| f.config.role_based_access = true)
    }
}

/// Upgrades the Hw/Sw resource class one step (performance ↑, cost ↑).
#[derive(Debug, Default, Clone)]
pub struct UpgradeResources;

impl Pattern for UpgradeResources {
    fn name(&self) -> &str {
        "UpgradeResources"
    }
    fn patch_confined_to_added_nodes(&self) -> bool {
        true
    }
    fn improves(&self) -> Characteristic {
        Characteristic::Performance
    }
    fn prerequisites(&self) -> Vec<Prerequisite> {
        vec![Prerequisite::IsGraph, Prerequisite::ResourcesUpgradable]
    }
    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError> {
        graph_apply(self, flow, point, |f| {
            f.config.resources = match f.config.resources {
                ResourceClass::Small => ResourceClass::Medium,
                ResourceClass::Medium | ResourceClass::Large => ResourceClass::Large,
            }
        })
    }
    fn apply_unchecked(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        _schemas: &etl_model::SchemaTable,
    ) -> Result<AppliedPattern, PatternError> {
        graph_apply_unchecked(self, flow, point, |f| {
            f.config.resources = match f.config.resources {
                ResourceClass::Small => ResourceClass::Medium,
                ResourceClass::Medium | ResourceClass::Large => ResourceClass::Large,
            }
        })
    }
}

/// Halves the recurrence period — the process runs twice as often, so data
/// at request time is fresher (data quality ↑, monetary cost ↑).
#[derive(Debug, Default, Clone)]
pub struct IncreaseRecurrence;

impl Pattern for IncreaseRecurrence {
    fn name(&self) -> &str {
        "IncreaseRecurrence"
    }
    fn patch_confined_to_added_nodes(&self) -> bool {
        true
    }
    fn improves(&self) -> Characteristic {
        Characteristic::DataQuality
    }
    /// Halving the recurrence period improves freshness (data quality) and
    /// doubles monetary cost; structure, performance, reliability and
    /// security are untouched.
    fn gain_profile(&self) -> GainProfile {
        GainProfile::neutral().with_cap(Characteristic::DataQuality, RATIO_CLAMP_MAX)
    }
    fn prerequisites(&self) -> Vec<Prerequisite> {
        vec![Prerequisite::IsGraph]
    }
    fn applicable(&self, ctx: &PatternContext<'_>, point: ApplicationPoint) -> bool {
        matches!(point, ApplicationPoint::Graph) && ctx.flow.config.recurrence_minutes > 30.0
    }
    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError> {
        graph_apply(self, flow, point, |f| {
            f.config.recurrence_minutes = (f.config.recurrence_minutes / 2.0).max(30.0)
        })
    }
    fn apply_unchecked(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        _schemas: &etl_model::SchemaTable,
    ) -> Result<AppliedPattern, PatternError> {
        graph_apply_unchecked(self, flow, point, |f| {
            f.config.recurrence_minutes = (f.config.recurrence_minutes / 2.0).max(30.0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use quality::MeasureId;
    use simulator::{simulate, SimConfig};

    #[test]
    fn graph_patterns_only_offer_graph_point() {
        let (f, _) = purchases_flow();
        let ctx = PatternContext::new(&f).unwrap();
        for p in [
            &EncryptChannels as &dyn Pattern,
            &EnableAccessControl,
            &UpgradeResources,
            &IncreaseRecurrence,
        ] {
            assert_eq!(p.candidate_points(&ctx), vec![ApplicationPoint::Graph]);
        }
    }

    #[test]
    fn encrypt_raises_security_and_costs_performance() {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(300, &DirtProfile::clean(), 1);
        let base = quality::evaluate(&f, &simulate(&f, &cat, &SimConfig::default()).unwrap());
        let mut g = f.fork("enc");
        EncryptChannels
            .apply(&mut g, ApplicationPoint::Graph)
            .unwrap();
        let v = quality::evaluate(&g, &simulate(&g, &cat, &SimConfig::default()).unwrap());
        assert!(
            v.get(MeasureId::SecurityScore).unwrap() > base.get(MeasureId::SecurityScore).unwrap()
        );
        assert!(v.get(MeasureId::CycleTimeMs).unwrap() > base.get(MeasureId::CycleTimeMs).unwrap());
        // idempotence guard
        assert!(EncryptChannels
            .apply(&mut g, ApplicationPoint::Graph)
            .is_err());
    }

    #[test]
    fn upgrade_resources_trades_cost_for_speed() {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(300, &DirtProfile::clean(), 1);
        let base = quality::evaluate(&f, &simulate(&f, &cat, &SimConfig::default()).unwrap());
        let mut g = f.fork("big");
        UpgradeResources
            .apply(&mut g, ApplicationPoint::Graph)
            .unwrap();
        let v = quality::evaluate(&g, &simulate(&g, &cat, &SimConfig::default()).unwrap());
        assert!(v.get(MeasureId::CycleTimeMs).unwrap() < base.get(MeasureId::CycleTimeMs).unwrap());
        assert!(
            v.get(MeasureId::MonetaryCost).unwrap() > base.get(MeasureId::MonetaryCost).unwrap()
        );
        // two upgrades hit Large, then stop
        UpgradeResources
            .apply(&mut g, ApplicationPoint::Graph)
            .unwrap();
        assert!(UpgradeResources
            .apply(&mut g, ApplicationPoint::Graph)
            .is_err());
    }

    #[test]
    fn recurrence_improves_freshness_but_costs_money() {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(
            300,
            &DirtProfile {
                staleness_hours: 24.0,
                ..DirtProfile::clean()
            },
            1,
        );
        let base = quality::evaluate(&f, &simulate(&f, &cat, &SimConfig::default()).unwrap());
        let mut g = f.fork("often");
        IncreaseRecurrence
            .apply(&mut g, ApplicationPoint::Graph)
            .unwrap();
        assert_eq!(
            g.config.recurrence_minutes,
            f.config.recurrence_minutes / 2.0
        );
        let v = quality::evaluate(&g, &simulate(&g, &cat, &SimConfig::default()).unwrap());
        // fresher content at request time…
        assert!(
            v.get(MeasureId::FreshnessScore).unwrap()
                > base.get(MeasureId::FreshnessScore).unwrap()
        );
        assert!(
            v.get(MeasureId::FreshnessAgeS).unwrap() < base.get(MeasureId::FreshnessAgeS).unwrap()
        );
        // …at double the daily cost
        assert!(
            (v.get(MeasureId::MonetaryCost).unwrap() / base.get(MeasureId::MonetaryCost).unwrap()
                - 2.0)
                .abs()
                < 0.2
        );
    }
}
