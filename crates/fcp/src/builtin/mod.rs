//! The built-in pattern palette.
//!
//! The Fig. 6 palette of the paper plus the graph-level configuration
//! patterns §2.2 sketches:
//!
//! | FCP | related quality attribute | point |
//! |-----|---------------------------|-------|
//! | [`RemoveDuplicateEntries`] | data quality | edge |
//! | [`FilterNullValues`] | data quality | edge |
//! | [`CrosscheckSources`] | data quality | edge |
//! | [`ParallelizeTask`] | performance | node |
//! | [`AddCheckpoint`] | reliability | edge |
//! | [`EncryptChannels`] | security | graph |
//! | [`EnableAccessControl`] | security | graph |
//! | [`UpgradeResources`] | performance | graph |
//! | [`IncreaseRecurrence`] | data quality (freshness) | graph |

mod checkpoint;
mod cleaning;
mod graphconf;
mod parallelize;

pub use checkpoint::AddCheckpoint;
pub use cleaning::{CrosscheckSources, FilterNullValues, RemoveDuplicateEntries};
pub use graphconf::{EnableAccessControl, EncryptChannels, IncreaseRecurrence, UpgradeResources};
pub use parallelize::ParallelizeTask;
