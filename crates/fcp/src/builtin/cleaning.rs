//! Data-quality patterns: `FilterNullValues`, `RemoveDuplicateEntries`,
//! `CrosscheckSources` (the three DQ rows of Fig. 6).
//!
//! All three apply on edges and share the "cleaning as close as possible to
//! the operations for inputting data sources" placement heuristic from §3,
//! "to prevent cumulative side-effects of reduced data quality".

use crate::pattern::{
    interpose_applying, interpose_unchecked, point_schema_in, AppliedPattern, Pattern,
    PatternContext, PatternError,
};
use crate::point::ApplicationPoint;
use crate::prereq::Prerequisite;
use etl_model::{EtlFlow, OpKind, Operation};
use quality::{Characteristic, GainProfile};

/// Shared fitness: cleaning is encouraged near the sources.
fn source_proximity_fitness(ctx: &PatternContext<'_>, point: ApplicationPoint) -> f64 {
    let d = ctx.point_distance(point);
    if d == usize::MAX {
        return 0.0;
    }
    1.0 / (1.0 + d as f64)
}

/// `FilterNullValues` — "itself an ETL flow consisting of only one
/// operation: a filter that deletes entries with null values from its
/// input" (§3's worked example). Interposed on an edge, configured with the
/// nullable attributes of the schema at the exact application point.
///
/// Temporal attributes (`Date`/`Timestamp`) are excluded from the filter
/// configuration: in type-2 dimensions a null `record_end_date` *means*
/// "current record" (exactly the predicate in the paper's Fig. 2), so
/// dropping those rows would change flow semantics — which an FCP must
/// never do.
#[derive(Debug, Default, Clone)]
pub struct FilterNullValues;

impl FilterNullValues {
    /// The columns the interposed filter will guard at a given schema:
    /// nullable, non-temporal attributes.
    pub fn target_columns(schema: &etl_model::Schema) -> Vec<String> {
        schema
            .attrs()
            .iter()
            .filter(|a| {
                a.nullable
                    && !matches!(
                        a.dtype,
                        etl_model::DataType::Date | etl_model::DataType::Timestamp
                    )
            })
            .map(|a| a.name.clone())
            .collect()
    }
}

impl Pattern for FilterNullValues {
    fn name(&self) -> &str {
        "FilterNullValues"
    }
    fn patch_confined_to_added_nodes(&self) -> bool {
        true
    }

    fn improves(&self) -> Characteristic {
        Characteristic::DataQuality
    }

    /// Dropping null rows can improve everything downstream of the data
    /// (quality, speed, cost, redo time) — but never the security score,
    /// which depends only on the graph configuration and encrypt ops.
    fn gain_profile(&self) -> GainProfile {
        GainProfile::unbounded().with_cap(Characteristic::Security, 1.0)
    }

    fn prerequisites(&self) -> Vec<Prerequisite> {
        vec![
            Prerequisite::IsEdge,
            Prerequisite::SchemaNonEmpty,
            Prerequisite::SchemaHasNullable,
            Prerequisite::NotAdjacentToPattern("self".into()),
        ]
    }

    fn applicable(&self, ctx: &PatternContext<'_>, point: ApplicationPoint) -> bool {
        point.is_live(ctx.flow)
            && self
                .prerequisites()
                .iter()
                .all(|p| p.satisfied(ctx, point, self.name()))
            // the filter must have at least one non-temporal nullable target
            && ctx
                .point_schema(point)
                .is_some_and(|s| !Self::target_columns(s).is_empty())
    }

    fn fitness(&self, ctx: &PatternContext<'_>, point: ApplicationPoint) -> f64 {
        source_proximity_fitness(ctx, point)
    }

    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError> {
        // Configure against the schema at the exact application point:
        // filter exactly the currently-nullable (non-temporal) attributes.
        let ctx = PatternContext::new(flow)?;
        let columns = ctx
            .point_schema(point)
            .map(Self::target_columns)
            .unwrap_or_default();
        drop(ctx);
        let op = Operation::new("FILTER null values", OpKind::FilterNulls { columns })
            .tag_pattern(self.name());
        interpose_applying(self, flow, point, op)
    }

    fn apply_unchecked(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        schemas: &etl_model::SchemaTable,
    ) -> Result<AppliedPattern, PatternError> {
        let columns = point_schema_in(flow, schemas, point)
            .map(Self::target_columns)
            .unwrap_or_default();
        let op = Operation::new("FILTER null values", OpKind::FilterNulls { columns })
            .tag_pattern(self.name());
        interpose_unchecked(self, flow, point, op)
    }
}

/// `RemoveDuplicateEntries` — interposes a dedup keyed on the non-nullable
/// attributes of the schema at the application point (falling back to the
/// whole tuple when none exist).
#[derive(Debug, Default, Clone)]
pub struct RemoveDuplicateEntries;

impl Pattern for RemoveDuplicateEntries {
    fn name(&self) -> &str {
        "RemoveDuplicateEntries"
    }
    fn patch_confined_to_added_nodes(&self) -> bool {
        true
    }

    fn improves(&self) -> Characteristic {
        Characteristic::DataQuality
    }

    /// Deduplication shrinks the data, so any axis but security may gain.
    fn gain_profile(&self) -> GainProfile {
        GainProfile::unbounded().with_cap(Characteristic::Security, 1.0)
    }

    fn prerequisites(&self) -> Vec<Prerequisite> {
        vec![
            Prerequisite::IsEdge,
            Prerequisite::SchemaNonEmpty,
            Prerequisite::NotAdjacentToPattern("self".into()),
        ]
    }

    fn fitness(&self, ctx: &PatternContext<'_>, point: ApplicationPoint) -> f64 {
        source_proximity_fitness(ctx, point)
    }

    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError> {
        let op = Operation::new("REMOVE duplicate entries", OpKind::Dedup { keys: vec![] })
            .tag_pattern(self.name());
        interpose_applying(self, flow, point, op)
    }

    fn apply_unchecked(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        _schemas: &etl_model::SchemaTable,
    ) -> Result<AppliedPattern, PatternError> {
        let op = Operation::new("REMOVE duplicate entries", OpKind::Dedup { keys: vec![] })
            .tag_pattern(self.name());
        interpose_unchecked(self, flow, point, op)
    }
}

/// `CrosscheckSources` — repairs null/corrupted values by consulting an
/// alternative (reference) source, matched on a key attribute. The pattern
/// is configured with the `(key attribute, alternative source)` pairs known
/// to the deployment — "the access points and data models of additional
/// data sources" that §3 says elaborate FCPs pre-define.
#[derive(Debug, Clone)]
pub struct CrosscheckSources {
    /// `(key attribute, alternative source table)` pairs.
    specs: Vec<(String, String)>,
}

impl CrosscheckSources {
    /// Pattern with explicit alternative-source specs.
    pub fn new(specs: Vec<(String, String)>) -> Self {
        CrosscheckSources { specs }
    }

    /// Builds the specs from a catalog: every table with a `ref_` twin can
    /// be crosschecked on its key attribute.
    pub fn from_catalog(catalog: &datagen::Catalog) -> Self {
        let mut specs = Vec::new();
        for (name, table) in catalog.tables() {
            if name.starts_with("ref_") {
                continue;
            }
            let twin = format!("ref_{name}");
            if catalog.table(&twin).is_some() {
                specs.push((table.key.clone(), twin));
            }
        }
        specs.sort();
        CrosscheckSources { specs }
    }

    fn spec_for(&self, schema: &etl_model::Schema) -> Option<&(String, String)> {
        self.specs.iter().find(|(key, _)| schema.contains(key))
    }
}

impl Pattern for CrosscheckSources {
    fn name(&self) -> &str {
        "CrosscheckSources"
    }
    fn patch_confined_to_added_nodes(&self) -> bool {
        true
    }

    fn improves(&self) -> Characteristic {
        Characteristic::DataQuality
    }

    /// Repairing values from a reference source improves data quality; the
    /// inserted crosscheck can also shift the structural (manageability)
    /// and recovery measures. It never drops rows, so the performance/cost
    /// axes only pay, and the security config is untouched.
    fn gain_profile(&self) -> GainProfile {
        GainProfile::neutral()
            .with_cap(Characteristic::DataQuality, quality::RATIO_CLAMP_MAX)
            .with_cap(Characteristic::Reliability, quality::RATIO_CLAMP_MAX)
            .with_cap(Characteristic::Manageability, quality::RATIO_CLAMP_MAX)
    }

    fn prerequisites(&self) -> Vec<Prerequisite> {
        vec![
            Prerequisite::IsEdge,
            Prerequisite::SchemaNonEmpty,
            Prerequisite::NotAdjacentToPattern("self".into()),
        ]
    }

    fn applicable(&self, ctx: &PatternContext<'_>, point: ApplicationPoint) -> bool {
        point.is_live(ctx.flow)
            && self
                .prerequisites()
                .iter()
                .all(|p| p.satisfied(ctx, point, self.name()))
            // extra conjunctive condition: a known key must be in scope
            && ctx
                .point_schema(point)
                .is_some_and(|s| self.spec_for(s).is_some())
    }

    fn fitness(&self, ctx: &PatternContext<'_>, point: ApplicationPoint) -> f64 {
        source_proximity_fitness(ctx, point)
    }

    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError> {
        let ctx = PatternContext::new(flow)?;
        let spec = ctx
            .point_schema(point)
            .and_then(|s| self.spec_for(s))
            .cloned()
            .ok_or_else(|| PatternError::NotApplicable {
                pattern: self.name().to_string(),
                point: point.describe(flow),
            })?;
        drop(ctx);
        let (key, alt_source) = spec;
        let op = Operation::new(
            format!("CROSSCHECK against {alt_source}"),
            OpKind::Crosscheck { alt_source, key },
        )
        .tag_pattern(self.name());
        interpose_applying(self, flow, point, op)
    }

    fn apply_unchecked(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        schemas: &etl_model::SchemaTable,
    ) -> Result<AppliedPattern, PatternError> {
        let spec = point_schema_in(flow, schemas, point)
            .and_then(|s| self.spec_for(s))
            .cloned()
            .ok_or_else(|| PatternError::NotApplicable {
                pattern: self.name().to_string(),
                point: point.describe(flow),
            })?;
        let (key, alt_source) = spec;
        let op = Operation::new(
            format!("CROSSCHECK against {alt_source}"),
            OpKind::Crosscheck { alt_source, key },
        )
        .tag_pattern(self.name());
        interpose_unchecked(self, flow, point, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use simulator::{simulate, SimConfig};

    #[test]
    fn filter_nulls_candidates_exclude_empty_nullable() {
        let (f, _) = purchases_flow();
        let ctx = PatternContext::new(&f).unwrap();
        let pts = FilterNullValues.candidate_points(&ctx);
        assert!(!pts.is_empty());
        assert!(pts.iter().all(|p| matches!(p, ApplicationPoint::Edge(_))));
    }

    #[test]
    fn cleaning_fitness_prefers_source_proximity() {
        let (f, ids) = purchases_flow();
        let ctx = PatternContext::new(&f).unwrap();
        // edge out of an extract vs edge out of the late merge
        let early = ApplicationPoint::Edge(
            f.graph
                .out_edges(f.ops_of_kind("extract")[0])
                .next()
                .unwrap(),
        );
        let late = ApplicationPoint::Edge(f.graph.out_edges(ids.merge_groups).next().unwrap());
        let p = FilterNullValues;
        assert!(p.fitness(&ctx, early) > p.fitness(&ctx, late));
    }

    #[test]
    fn filter_nulls_apply_improves_loaded_completeness() {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(300, &DirtProfile::filthy(), 8);
        let base = simulate(&f, &cat, &SimConfig::default()).unwrap();
        let base_v = quality::evaluate(&f, &base);

        let mut g = f.fork("cleaned");
        let ctx = PatternContext::new(&g).unwrap();
        let mut pts = FilterNullValues.candidate_points(&ctx);
        pts.sort_by(|a, b| {
            FilterNullValues
                .fitness(&ctx, *b)
                .total_cmp(&FilterNullValues.fitness(&ctx, *a))
        });
        let best = pts[0];
        drop(ctx);
        let applied = FilterNullValues.apply(&mut g, best).unwrap();
        assert_eq!(applied.added_nodes.len(), 1);
        g.validate().unwrap();
        let t = simulate(&g, &cat, &SimConfig::default()).unwrap();
        let v = quality::evaluate(&g, &t);
        assert!(
            v.get(quality::MeasureId::Completeness).unwrap()
                > base_v.get(quality::MeasureId::Completeness).unwrap()
        );
    }

    #[test]
    fn dedup_apply_improves_uniqueness() {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(300, &DirtProfile::filthy(), 8);
        let base_v = quality::evaluate(&f, &simulate(&f, &cat, &SimConfig::default()).unwrap());
        let mut g = f.fork("dd");
        let ctx = PatternContext::new(&g).unwrap();
        let pts = RemoveDuplicateEntries.candidate_points(&ctx);
        // pick the most source-proximate point
        let best = *pts
            .iter()
            .max_by(|a, b| {
                RemoveDuplicateEntries
                    .fitness(&ctx, **a)
                    .total_cmp(&RemoveDuplicateEntries.fitness(&ctx, **b))
            })
            .unwrap();
        drop(ctx);
        RemoveDuplicateEntries.apply(&mut g, best).unwrap();
        g.validate().unwrap();
        let v = quality::evaluate(&g, &simulate(&g, &cat, &SimConfig::default()).unwrap());
        assert!(
            v.get(quality::MeasureId::Uniqueness).unwrap()
                >= base_v.get(quality::MeasureId::Uniqueness).unwrap()
        );
    }

    #[test]
    fn crosscheck_requires_key_in_scope() {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(100, &DirtProfile::demo(), 1);
        let p = CrosscheckSources::from_catalog(&cat);
        assert_eq!(p.specs.len(), 2);
        let ctx = PatternContext::new(&f).unwrap();
        let pts = p.candidate_points(&ctx);
        // pu_id survives the projection, so points exist both early and late
        assert!(!pts.is_empty());
        // a spec-less pattern has no candidates
        let none = CrosscheckSources::new(vec![]);
        assert!(none.candidate_points(&ctx).is_empty());
    }

    #[test]
    fn crosscheck_apply_repairs_nulls() {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(300, &DirtProfile::filthy(), 8);
        let base_v = quality::evaluate(&f, &simulate(&f, &cat, &SimConfig::default()).unwrap());
        let p = CrosscheckSources::from_catalog(&cat);
        let mut g = f.fork("cc");
        let ctx = PatternContext::new(&g).unwrap();
        let pts = p.candidate_points(&ctx);
        let best = *pts
            .iter()
            .max_by(|a, b| p.fitness(&ctx, **a).total_cmp(&p.fitness(&ctx, **b)))
            .unwrap();
        drop(ctx);
        p.apply(&mut g, best).unwrap();
        g.validate().unwrap();
        let v = quality::evaluate(&g, &simulate(&g, &cat, &SimConfig::default()).unwrap());
        assert!(
            v.get(quality::MeasureId::Completeness).unwrap()
                > base_v.get(quality::MeasureId::Completeness).unwrap()
        );
    }

    #[test]
    fn stacking_prevented_at_same_point() {
        let (f, _) = purchases_flow();
        let mut g = f.fork("x");
        let ctx = PatternContext::new(&g).unwrap();
        let pts = FilterNullValues.candidate_points(&ctx);
        let n_before = pts.len();
        let best = pts[0];
        drop(ctx);
        FilterNullValues.apply(&mut g, best).unwrap();
        // the same edge is no longer applicable (it now touches the pattern node)
        let ctx = PatternContext::new(&g).unwrap();
        assert!(!FilterNullValues.applicable(&ctx, best));
        // Downstream points also disappear: the filter marks its columns
        // non-nullable, so edges further down have nothing left to clean.
        assert!(FilterNullValues.candidate_points(&ctx).len() < n_before);
    }
}
