//! `ParallelizeTask` — the performance FCP of Fig. 6 and Fig. 2a: replaces a
//! computationally intensive operation with `HORIZONTAL PARTITION → k
//! replicas → MERGE`, so the replicas process disjoint row subsets in
//! parallel branches.

use crate::pattern::{AppliedPattern, Pattern, PatternContext, PatternError};
use crate::point::ApplicationPoint;
use crate::prereq::Prerequisite;
use etl_model::{Channel, EtlFlow, NodeId, OpKind, Operation};
use flowgraph::DiGraph;
use quality::{Characteristic, GainProfile};

/// Operator kinds that can be replaced by row-partitioned replicas without
/// changing semantics (stateless per-tuple operators, plus dedup/sort whose
/// global guarantees the trailing merge intentionally relaxes are excluded).
const PARALLELIZABLE: &[&str] = &["derive", "filter", "convert", "filter_nulls", "crosscheck"];

/// The `ParallelizeTask` pattern. `ways` is the replica count (Fig. 2a shows
/// two-way partitioning).
#[derive(Debug, Clone)]
pub struct ParallelizeTask {
    ways: usize,
    min_cost_ms: f64,
}

impl Default for ParallelizeTask {
    fn default() -> Self {
        ParallelizeTask {
            ways: 2,
            min_cost_ms: 0.005,
        }
    }
}

impl ParallelizeTask {
    /// Pattern with a custom fan-out.
    pub fn with_ways(ways: usize) -> Self {
        assert!(ways >= 2, "parallelism below 2 is a no-op");
        ParallelizeTask {
            ways,
            ..Default::default()
        }
    }

    /// Replica count.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The structural edit shared by [`Pattern::apply`] and
    /// [`Pattern::apply_unchecked`]: replace node `n` with the
    /// `partition → replicas → merge` donor subgraph (Fig. 2a).
    fn splice_replicas(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        n: NodeId,
    ) -> Result<AppliedPattern, PatternError> {
        let original = flow.op(n).expect("applicable point is live").clone();

        // The pattern's internal representation is itself a small ETL flow:
        // partition → replicas → merge (Fig. 2a).
        let mut donor: DiGraph<Operation, Channel> = DiGraph::new();
        let part = donor.add_node(
            Operation::new("HORIZONTAL PARTITION", OpKind::Partition).tag_pattern(self.name()),
        );
        let merge = donor.add_node(Operation::new("MERGE", OpKind::Merge).tag_pattern(self.name()));
        let mut replicas: Vec<NodeId> = Vec::with_capacity(self.ways);
        for i in 0..self.ways {
            let mut rep = original.clone();
            rep.name = format!("{} #{}", original.name, i + 1);
            rep.from_pattern = Some(self.name().to_string());
            let r = donor.add_node(rep);
            donor
                .add_edge(part, r, Channel::default())
                .expect("donor wiring");
            donor
                .add_edge(r, merge, Channel::default())
                .expect("donor wiring");
            replicas.push(r);
        }

        let (splice, _removed) = flow
            .graph
            .replace_node_with_subgraph(n, &donor)
            .map_err(|e| PatternError::Graph(e.to_string()))?;
        let added = donor
            .node_ids()
            .filter_map(|d| splice.mapped(d))
            .collect::<Vec<_>>();
        Ok(AppliedPattern {
            pattern: self.name().to_string(),
            point,
            added_nodes: added,
        })
    }
}

impl Pattern for ParallelizeTask {
    fn name(&self) -> &str {
        "ParallelizeTask"
    }
    fn patch_confined_to_added_nodes(&self) -> bool {
        true
    }

    fn improves(&self) -> Characteristic {
        Characteristic::Performance
    }

    /// Splitting a task across branches can speed up, restructure, and
    /// thereby improve most axes — but never the security score, which
    /// depends only on the graph configuration and encrypt ops.
    fn gain_profile(&self) -> GainProfile {
        GainProfile::unbounded().with_cap(Characteristic::Security, 1.0)
    }

    fn prerequisites(&self) -> Vec<Prerequisite> {
        vec![
            Prerequisite::IsNode,
            Prerequisite::NodeKindIn(PARALLELIZABLE.to_vec()),
            Prerequisite::NodeSingleInOut,
            Prerequisite::NodeCostAtLeast(self.min_cost_ms),
            Prerequisite::NotAdjacentToPattern("self".into()),
        ]
    }

    /// "Parallelise the most expensive task first": fitness is the node's
    /// per-tuple cost share of the flow's maximum.
    fn fitness(&self, ctx: &PatternContext<'_>, point: ApplicationPoint) -> f64 {
        let ApplicationPoint::Node(n) = point else {
            return 0.0;
        };
        match ctx.flow.op(n) {
            Some(op) if ctx.max_cost_per_tuple() > 0.0 => {
                (op.cost.cost_per_tuple_ms / ctx.max_cost_per_tuple()).clamp(0.0, 1.0)
            }
            _ => 0.0,
        }
    }

    fn apply(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
    ) -> Result<AppliedPattern, PatternError> {
        let ctx = PatternContext::new(flow)?;
        if !self.applicable(&ctx, point) {
            return Err(PatternError::NotApplicable {
                pattern: self.name().to_string(),
                point: point.describe(flow),
            });
        }
        drop(ctx);
        let ApplicationPoint::Node(n) = point else {
            unreachable!("prerequisites enforce a node point");
        };
        self.splice_replicas(flow, point, n)
    }

    fn apply_unchecked(
        &self,
        flow: &mut EtlFlow,
        point: ApplicationPoint,
        _schemas: &etl_model::SchemaTable,
    ) -> Result<AppliedPattern, PatternError> {
        let ApplicationPoint::Node(n) = point else {
            return Err(PatternError::NotApplicable {
                pattern: self.name().to_string(),
                point: point.describe(flow),
            });
        };
        self.splice_replicas(flow, point, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use quality::MeasureId;
    use simulator::{simulate, SimConfig};

    #[test]
    fn targets_only_expensive_single_in_out_nodes() {
        let (f, ids) = purchases_flow();
        let ctx = PatternContext::new(&f).unwrap();
        let p = ParallelizeTask::default();
        let pts = p.candidate_points(&ctx);
        assert!(pts.contains(&ApplicationPoint::Node(ids.derive_values)));
        // extracts, merges, router, load are not parallelizable targets
        for n in f.ops_of_kind("extract") {
            assert!(!pts.contains(&ApplicationPoint::Node(n)));
        }
        for n in f.ops_of_kind("merge") {
            assert!(!pts.contains(&ApplicationPoint::Node(n)));
        }
    }

    #[test]
    fn fitness_peaks_at_most_expensive_op() {
        let (f, ids) = purchases_flow();
        let ctx = PatternContext::new(&f).unwrap();
        let p = ParallelizeTask::default();
        let fit = p.fitness(&ctx, ApplicationPoint::Node(ids.derive_values));
        assert_eq!(fit, 1.0, "DERIVE VALUES is the costliest op");
    }

    #[test]
    fn apply_reproduces_fig2a_and_speeds_up() {
        let (f, ids) = purchases_flow();
        let cat = purchases_catalog(2_000, &DirtProfile::clean(), 3);
        let base = simulate(&f, &cat, &SimConfig::default()).unwrap();

        let mut g = f.fork("parallel");
        let p = ParallelizeTask::default();
        let applied = p
            .apply(&mut g, ApplicationPoint::Node(ids.derive_values))
            .unwrap();
        // partition + 2 replicas + merge
        assert_eq!(applied.added_nodes.len(), 4);
        g.validate().unwrap();
        assert_eq!(g.op_count(), f.op_count() + 3);

        let par = simulate(&g, &cat, &SimConfig::default()).unwrap();
        assert!(
            par.cycle_time_ms < base.cycle_time_ms,
            "parallelising the hot derive must cut cycle time ({} vs {})",
            par.cycle_time_ms,
            base.cycle_time_ms
        );
        // functionality preserved: same rows loaded
        assert_eq!(par.rows_loaded(), base.rows_loaded());

        // and manageability pays: more ops, longer path
        let vb = quality::evaluate_static(&f);
        let va = quality::evaluate_static(&g);
        assert!(va.get(MeasureId::OpCount).unwrap() > vb.get(MeasureId::OpCount).unwrap());
        assert!(va.get(MeasureId::MergeCount).unwrap() > vb.get(MeasureId::MergeCount).unwrap());
    }

    #[test]
    fn four_way_fanout() {
        let (f, ids) = purchases_flow();
        let mut g = f.fork("p4");
        let p = ParallelizeTask::with_ways(4);
        let applied = p
            .apply(&mut g, ApplicationPoint::Node(ids.derive_values))
            .unwrap();
        assert_eq!(applied.added_nodes.len(), 6);
        g.validate().unwrap();
    }

    #[test]
    fn replicas_are_not_reparallelizable() {
        let (f, ids) = purchases_flow();
        let mut g = f.fork("p");
        let p = ParallelizeTask::default();
        p.apply(&mut g, ApplicationPoint::Node(ids.derive_values))
            .unwrap();
        let ctx = PatternContext::new(&g).unwrap();
        let pts = p.candidate_points(&ctx);
        // no replica may be picked again
        for pt in &pts {
            if let ApplicationPoint::Node(n) = pt {
                assert!(g.op(*n).unwrap().from_pattern.is_none());
            }
        }
    }

    #[test]
    fn apply_on_dead_node_fails_cleanly() {
        let (f, ids) = purchases_flow();
        let mut g = f.fork("p");
        let p = ParallelizeTask::default();
        p.apply(&mut g, ApplicationPoint::Node(ids.derive_values))
            .unwrap();
        // the original node is gone; a second apply at the same point errors
        let err = p
            .apply(&mut g, ApplicationPoint::Node(ids.derive_values))
            .unwrap_err();
        assert!(matches!(err, PatternError::NotApplicable { .. }));
    }
}
