//! Trace structures: the "historical traces capturing the runtime behaviour
//! of ETL components" that runtime-derived quality measures are computed on.

use etl_model::{NodeId, Schema, Tuple};

/// Per-operator execution record.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// Node id within the flow.
    pub node: NodeId,
    /// Operation name.
    pub name: String,
    /// Operator kind name (`filter`, `join`, …).
    pub kind: String,
    /// Input row count (across all input edges).
    pub rows_in: usize,
    /// Output row count (across all output edges).
    pub rows_out: usize,
    /// Virtual start time (ms since flow start).
    pub start_ms: f64,
    /// Virtual end time (ms since flow start), including any redo.
    pub end_ms: f64,
    /// Whether a failure was injected at this operator.
    pub failed: bool,
    /// Recovery time spent re-running the segment from the nearest
    /// savepoint (0 when no failure).
    pub redo_ms: f64,
}

impl OpTrace {
    /// Service time of the operator (excluding waiting, including redo).
    pub fn service_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// The rows that arrived at one load target.
#[derive(Debug, Clone)]
pub struct LoadedData {
    /// The load target's name.
    pub target: String,
    /// Schema of the loaded rows.
    pub schema: Schema,
    /// Actual loaded rows.
    pub rows: Vec<Tuple>,
}

/// A full execution trace of one flow run.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Flow name.
    pub flow_name: String,
    /// Per-operator records, in topological execution order.
    pub ops: Vec<OpTrace>,
    /// Process cycle time (ms): completion of the last load.
    pub cycle_time_ms: f64,
    /// Average per-tuple end-to-end latency (ms) over load targets.
    pub avg_latency_ms: f64,
    /// Total time spent in failure recovery.
    pub total_redo_ms: f64,
    /// Number of injected failures.
    pub failures: usize,
    /// Loaded data per load operator.
    pub loads: Vec<LoadedData>,
    /// The request time (fixed epoch) for freshness measures.
    pub request_time: i64,
    /// `(source, last_update)` for every extracted source.
    pub source_updates: Vec<(String, i64)>,
}

impl Trace {
    /// Total rows loaded across targets.
    pub fn rows_loaded(&self) -> usize {
        self.loads.iter().map(|l| l.rows.len()).sum()
    }

    /// Looks up the trace record for a node.
    pub fn op(&self, node: NodeId) -> Option<&OpTrace> {
        self.ops.iter().find(|o| o.node == node)
    }

    /// Age (seconds) of the stalest source feeding this run.
    pub fn stalest_source_age(&self) -> Option<i64> {
        self.source_updates
            .iter()
            .map(|(_, lu)| self.request_time - lu)
            .max()
    }
}

/// Aggregate over repeated failure-injecting runs (Monte Carlo reliability).
#[derive(Debug, Clone)]
pub struct TrialSummary {
    /// Number of trials run.
    pub trials: usize,
    /// Mean cycle time including recoveries.
    pub mean_cycle_ms: f64,
    /// Cycle time without any failure (baseline).
    pub clean_cycle_ms: f64,
    /// Mean recovery overhead per run (ms).
    pub mean_redo_ms: f64,
    /// Fraction of runs that saw at least one failure.
    pub failure_run_fraction: f64,
    /// Fraction of runs completing within `deadline_factor ×` the clean
    /// cycle time (deadline_factor fixed at 1.5).
    pub within_deadline_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use etl_model::Value;

    #[test]
    fn service_time_is_end_minus_start() {
        let t = OpTrace {
            node: NodeId::from_raw(0),
            name: "x".into(),
            kind: "filter".into(),
            rows_in: 10,
            rows_out: 5,
            start_ms: 2.0,
            end_ms: 5.5,
            failed: false,
            redo_ms: 0.0,
        };
        assert!((t.service_ms() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn trace_aggregations() {
        let trace = Trace {
            flow_name: "f".into(),
            ops: vec![],
            cycle_time_ms: 10.0,
            avg_latency_ms: 1.0,
            total_redo_ms: 0.0,
            failures: 0,
            loads: vec![
                LoadedData {
                    target: "a".into(),
                    schema: Schema::empty(),
                    rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
                },
                LoadedData {
                    target: "b".into(),
                    schema: Schema::empty(),
                    rows: vec![vec![Value::Int(3)]],
                },
            ],
            request_time: 1_000,
            source_updates: vec![("s1".into(), 400), ("s2".into(), 900)],
        };
        assert_eq!(trace.rows_loaded(), 3);
        assert_eq!(trace.stalest_source_age(), Some(600));
    }
}
