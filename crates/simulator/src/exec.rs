//! Per-operator data semantics: how each [`OpKind`] transforms tuples.
//!
//! Multi-output operators (split, router, partition) produce one row vector
//! per outgoing edge; single-output operators produce one vector that the
//! engine clones onto each outgoing edge.

use datagen::{Catalog, CORRUPT_MARKER};
use etl_model::expr::BoundExpr;
use etl_model::{AggFunc, DataType, OpKind, Operation, Schema, Tuple, Value};
use std::collections::HashMap;
use std::fmt;

/// Execution failures (distinct from injected *reliability* failures: these
/// are genuine modelling errors, e.g. an Extract naming an unknown source).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Extract/crosscheck referenced a source missing from the catalog.
    UnknownSource(String),
    /// An expression failed to bind (validated flows never hit this).
    Bind(String),
    /// An operator was wired with the wrong number of inputs/outputs.
    Arity {
        /// Operation name.
        op: String,
        /// Diagnostic.
        detail: &'static str,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownSource(s) => write!(f, "unknown source `{s}`"),
            ExecError::Bind(m) => write!(f, "bind error: {m}"),
            ExecError::Arity { op, detail } => write!(f, "`{op}`: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

fn bind(expr: &etl_model::expr::Expr, schema: &Schema) -> Result<BoundExpr, ExecError> {
    expr.bind(schema)
        .map_err(|e| ExecError::Bind(e.to_string()))
}

/// Executes one operator.
///
/// * `inputs` — one row vector per incoming edge, in predecessor order
///   (matching schema propagation).
/// * `in_schemas` — schema per input.
/// * `n_outputs` — number of outgoing edges.
///
/// Returns one row vector per outgoing edge. For load operators (zero
/// outputs) returns a single vector holding the loaded rows.
pub fn execute_op(
    op: &Operation,
    inputs: &[Vec<Tuple>],
    in_schemas: &[&Schema],
    n_outputs: usize,
    catalog: &Catalog,
) -> Result<Vec<Vec<Tuple>>, ExecError> {
    let single = |rows: Vec<Tuple>| -> Vec<Vec<Tuple>> {
        if n_outputs <= 1 {
            vec![rows]
        } else {
            // broadcast: every successor sees the same rows
            (0..n_outputs).map(|_| rows.clone()).collect()
        }
    };
    let first_input = || -> Result<&Vec<Tuple>, ExecError> {
        inputs.first().ok_or(ExecError::Arity {
            op: op.name.clone(),
            detail: "expected at least one input",
        })
    };
    let first_schema = || -> Result<&Schema, ExecError> {
        in_schemas.first().copied().ok_or(ExecError::Arity {
            op: op.name.clone(),
            detail: "expected an input schema",
        })
    };

    Ok(match &op.kind {
        OpKind::Extract { source, .. } => {
            let table = catalog
                .table(source)
                .ok_or_else(|| ExecError::UnknownSource(source.clone()))?;
            single(table.rows.clone())
        }
        OpKind::Load { .. } => vec![first_input()?.clone()],
        OpKind::Filter { predicate } => {
            let bound = bind(predicate, first_schema()?)?;
            single(
                first_input()?
                    .iter()
                    .filter(|t| bound.eval_predicate(t))
                    .cloned()
                    .collect(),
            )
        }
        OpKind::Project { keep } => {
            let schema = first_schema()?;
            let idx: Vec<usize> = keep
                .iter()
                .map(|k| {
                    schema
                        .index_of(k)
                        .ok_or_else(|| ExecError::Bind(format!("unknown column `{k}`")))
                })
                .collect::<Result<_, _>>()?;
            single(
                first_input()?
                    .iter()
                    .map(|t| idx.iter().map(|&i| t[i].clone()).collect())
                    .collect(),
            )
        }
        OpKind::Derive { outputs } => {
            // Each derived column sees the schema extended by the previous
            // ones, mirroring schema propagation.
            let mut schema = first_schema()?.clone();
            let mut bounds = Vec::with_capacity(outputs.len());
            for (name, expr) in outputs {
                bounds.push(bind(expr, &schema)?);
                let dtype = expr
                    .result_type(&schema)
                    .map_err(|e| ExecError::Bind(e.to_string()))?;
                schema = schema
                    .extend_with(etl_model::Attribute::new(name.clone(), dtype))
                    .map_err(|c| ExecError::Bind(format!("duplicate column `{c}`")))?;
            }
            single(
                first_input()?
                    .iter()
                    .map(|t| {
                        let mut row = t.clone();
                        for b in &bounds {
                            let v = b.eval(&row);
                            row.push(v);
                        }
                        row
                    })
                    .collect(),
            )
        }
        OpKind::Convert { column, to } => {
            let idx = first_schema()?
                .index_of(column)
                .ok_or_else(|| ExecError::Bind(format!("unknown column `{column}`")))?;
            single(
                first_input()?
                    .iter()
                    .map(|t| {
                        let mut row = t.clone();
                        row[idx] = convert_value(&row[idx], *to);
                        row
                    })
                    .collect(),
            )
        }
        OpKind::Join {
            left_key,
            right_key,
        } => {
            if inputs.len() < 2 {
                return Err(ExecError::Arity {
                    op: op.name.clone(),
                    detail: "join needs two inputs",
                });
            }
            let li = in_schemas[0]
                .index_of(left_key)
                .ok_or_else(|| ExecError::Bind(format!("unknown column `{left_key}`")))?;
            let ri = in_schemas[1]
                .index_of(right_key)
                .ok_or_else(|| ExecError::Bind(format!("unknown column `{right_key}`")))?;
            let mut table: HashMap<String, Vec<&Tuple>> = HashMap::new();
            for r in &inputs[1] {
                if !r[ri].is_null() {
                    table.entry(r[ri].group_key()).or_default().push(r);
                }
            }
            let mut out = Vec::new();
            for l in &inputs[0] {
                if l[li].is_null() {
                    continue;
                }
                if let Some(matches) = table.get(&l[li].group_key()) {
                    for r in matches {
                        let mut row = l.clone();
                        row.extend((*r).clone());
                        out.push(row);
                    }
                }
            }
            single(out)
        }
        OpKind::Aggregate { group_by, aggs } => {
            let schema = first_schema()?;
            let gidx: Vec<usize> = group_by
                .iter()
                .map(|g| {
                    schema
                        .index_of(g)
                        .ok_or_else(|| ExecError::Bind(format!("unknown column `{g}`")))
                })
                .collect::<Result<_, _>>()?;
            let aidx: Vec<(AggFunc, usize)> = aggs
                .iter()
                .map(|(_, f, c)| {
                    schema
                        .index_of(c)
                        .map(|i| (*f, i))
                        .ok_or_else(|| ExecError::Bind(format!("unknown column `{c}`")))
                })
                .collect::<Result<_, _>>()?;
            let mut groups: HashMap<String, (Tuple, Vec<Accum>)> = HashMap::new();
            let mut order: Vec<String> = Vec::new();
            for t in first_input()? {
                let key: String = gidx
                    .iter()
                    .map(|&i| t[i].group_key())
                    .collect::<Vec<_>>()
                    .join("\u{1}");
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (
                        gidx.iter().map(|&i| t[i].clone()).collect(),
                        aidx.iter().map(|_| Accum::default()).collect(),
                    )
                });
                for ((func, ci), acc) in aidx.iter().zip(entry.1.iter_mut()) {
                    acc.update(*func, &t[*ci]);
                }
            }
            let mut out = Vec::with_capacity(groups.len());
            for key in order {
                let (mut row, accs) = groups.remove(&key).expect("group recorded");
                for ((func, _), acc) in aidx.iter().zip(accs) {
                    row.push(acc.finish(*func));
                }
                out.push(row);
            }
            single(out)
        }
        OpKind::Sort { by } => {
            let schema = first_schema()?;
            let idx: Vec<usize> = by
                .iter()
                .map(|b| {
                    schema
                        .index_of(b)
                        .ok_or_else(|| ExecError::Bind(format!("unknown column `{b}`")))
                })
                .collect::<Result<_, _>>()?;
            let mut rows = first_input()?.clone();
            rows.sort_by(|a, b| {
                for &i in &idx {
                    let ord = match (a[i].is_null(), b[i].is_null()) {
                        (true, true) => std::cmp::Ordering::Equal,
                        (true, false) => std::cmp::Ordering::Greater, // nulls last
                        (false, true) => std::cmp::Ordering::Less,
                        (false, false) => a[i].sql_cmp(&b[i]).unwrap_or(std::cmp::Ordering::Equal),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            single(rows)
        }
        OpKind::Split => single(first_input()?.clone()),
        OpKind::Router { predicate } => {
            if n_outputs != 2 {
                return Err(ExecError::Arity {
                    op: op.name.clone(),
                    detail: "router needs exactly two outputs",
                });
            }
            let bound = bind(predicate, first_schema()?)?;
            let mut yes = Vec::new();
            let mut no = Vec::new();
            for t in first_input()? {
                if bound.eval_predicate(t) {
                    yes.push(t.clone());
                } else {
                    no.push(t.clone());
                }
            }
            vec![yes, no]
        }
        OpKind::Partition => {
            let k = n_outputs.max(1);
            let mut parts: Vec<Vec<Tuple>> = (0..k).map(|_| Vec::new()).collect();
            for (i, t) in first_input()?.iter().enumerate() {
                parts[i % k].push(t.clone());
            }
            parts
        }
        OpKind::Merge => {
            let mut out = Vec::new();
            for part in inputs {
                out.extend(part.iter().cloned());
            }
            single(out)
        }
        OpKind::Dedup { keys } => {
            let schema = first_schema()?;
            let idx: Vec<usize> = if keys.is_empty() {
                (0..schema.len()).collect()
            } else {
                keys.iter()
                    .map(|k| {
                        schema
                            .index_of(k)
                            .ok_or_else(|| ExecError::Bind(format!("unknown column `{k}`")))
                    })
                    .collect::<Result<_, _>>()?
            };
            let mut seen = std::collections::HashSet::new();
            single(
                first_input()?
                    .iter()
                    .filter(|t| {
                        let key: String = idx
                            .iter()
                            .map(|&i| t[i].group_key())
                            .collect::<Vec<_>>()
                            .join("\u{1}");
                        seen.insert(key)
                    })
                    .cloned()
                    .collect(),
            )
        }
        OpKind::FilterNulls { columns } => {
            let schema = first_schema()?;
            let idx: Vec<usize> = if columns.is_empty() {
                (0..schema.len()).collect()
            } else {
                columns
                    .iter()
                    .map(|c| {
                        schema
                            .index_of(c)
                            .ok_or_else(|| ExecError::Bind(format!("unknown column `{c}`")))
                    })
                    .collect::<Result<_, _>>()?
            };
            single(
                first_input()?
                    .iter()
                    .filter(|t| idx.iter().all(|&i| !t[i].is_null()))
                    .cloned()
                    .collect(),
            )
        }
        OpKind::Crosscheck { alt_source, key } => {
            let schema = first_schema()?;
            let table = catalog
                .table(alt_source)
                .ok_or_else(|| ExecError::UnknownSource(alt_source.clone()))?;
            let ki = schema
                .index_of(key)
                .ok_or_else(|| ExecError::Bind(format!("unknown column `{key}`")))?;
            let rki = table
                .schema
                .index_of(&table.key)
                .ok_or_else(|| ExecError::Bind(format!("reference key `{}` missing", table.key)))?;
            // Map current-schema columns onto reference columns by name.
            let col_map: Vec<Option<usize>> = schema
                .attrs()
                .iter()
                .map(|a| table.schema.index_of(&a.name))
                .collect();
            let mut reference: HashMap<String, &Tuple> = HashMap::new();
            for r in &table.rows {
                reference.entry(r[rki].group_key()).or_insert(r);
            }
            single(
                first_input()?
                    .iter()
                    .map(|t| {
                        let mut row = t.clone();
                        if let Some(refrow) = reference.get(&row[ki].group_key()) {
                            for (i, m) in col_map.iter().enumerate() {
                                let Some(ri) = m else { continue };
                                let broken = row[i].is_null()
                                    || matches!(&row[i], Value::Str(s) if s.ends_with(CORRUPT_MARKER));
                                if broken {
                                    row[i] = refrow[*ri].clone();
                                }
                            }
                        }
                        row
                    })
                    .collect(),
            )
        }
        OpKind::Checkpoint { .. } | OpKind::Encrypt => single(first_input()?.clone()),
    })
}

fn convert_value(v: &Value, to: DataType) -> Value {
    match (v, to) {
        (Value::Null, _) => Value::Null,
        (Value::Int(x), DataType::Float) => Value::Float(*x as f64),
        (Value::Float(x), DataType::Int) => Value::Int(*x as i64),
        (Value::Int(x), DataType::Str) => Value::Str(x.to_string()),
        (Value::Float(x), DataType::Str) => Value::Str(x.to_string()),
        (Value::Str(s), DataType::Int) => s.parse().map(Value::Int).unwrap_or(Value::Null),
        (Value::Str(s), DataType::Float) => s.parse().map(Value::Float).unwrap_or(Value::Null),
        (v, t) if v.dtype() == Some(t) => v.clone(),
        _ => Value::Null,
    }
}

#[derive(Default)]
struct Accum {
    count: i64,
    sum: f64,
    sum_is_int: bool,
    isum: i64,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accum {
    fn update(&mut self, func: AggFunc, v: &Value) {
        match func {
            AggFunc::Count => self.count += 1,
            _ => {
                if v.is_null() {
                    return;
                }
                self.count += 1;
                if let Some(x) = v.as_f64() {
                    self.sum += x;
                }
                if let Value::Int(i) = v {
                    self.sum_is_int = true;
                    self.isum += i;
                }
                if self
                    .min
                    .as_ref()
                    .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Less))
                {
                    self.min = Some(v.clone());
                }
                if self
                    .max
                    .as_ref()
                    .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
                {
                    self.max = Some(v.clone());
                }
            }
        }
    }

    fn finish(self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.sum_is_int {
                    Value::Int(self.isum)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.unwrap_or(Value::Null),
            AggFunc::Max => self.max.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etl_model::expr::Expr;
    use etl_model::Attribute;

    fn cat() -> Catalog {
        Catalog::new()
    }

    fn schema2() -> Schema {
        Schema::new(vec![
            Attribute::required("id", DataType::Int),
            Attribute::new("v", DataType::Float),
        ])
    }

    fn rows2() -> Vec<Tuple> {
        vec![
            vec![Value::Int(1), Value::Float(10.0)],
            vec![Value::Int(2), Value::Float(-3.0)],
            vec![Value::Int(3), Value::Null],
        ]
    }

    fn run(op: Operation, rows: Vec<Tuple>, schema: &Schema, outs: usize) -> Vec<Vec<Tuple>> {
        execute_op(&op, &[rows], &[schema], outs, &cat()).unwrap()
    }

    #[test]
    fn filter_drops_nonmatching_and_null() {
        let op = Operation::filter("f", Expr::col("v").gt(Expr::lit_f(0.0)));
        let out = run(op, rows2(), &schema2(), 1);
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[0][0][0], Value::Int(1));
    }

    #[test]
    fn project_reorders() {
        let op = Operation::project("p", vec!["v".into(), "id".into()]);
        let out = run(op, rows2(), &schema2(), 1);
        assert_eq!(out[0][0], vec![Value::Float(10.0), Value::Int(1)]);
    }

    #[test]
    fn derive_appends_and_chains() {
        let op = Operation::derive(
            "d",
            vec![
                ("double".to_string(), Expr::col("v").mul(Expr::lit_f(2.0))),
                (
                    "quad".to_string(),
                    Expr::col("double").mul(Expr::lit_f(2.0)),
                ),
            ],
        );
        let out = run(op, rows2(), &schema2(), 1);
        assert_eq!(out[0][0][2], Value::Float(20.0));
        assert_eq!(out[0][0][3], Value::Float(40.0));
        // null propagates
        assert_eq!(out[0][2][2], Value::Null);
    }

    #[test]
    fn convert_int_float_roundtrip() {
        assert_eq!(
            convert_value(&Value::Int(3), DataType::Float),
            Value::Float(3.0)
        );
        assert_eq!(
            convert_value(&Value::Float(3.7), DataType::Int),
            Value::Int(3)
        );
        assert_eq!(
            convert_value(&Value::Str("12".into()), DataType::Int),
            Value::Int(12)
        );
        assert_eq!(
            convert_value(&Value::Str("xx".into()), DataType::Int),
            Value::Null
        );
        assert_eq!(convert_value(&Value::Null, DataType::Int), Value::Null);
    }

    #[test]
    fn join_hash_matches() {
        let left_schema = schema2();
        let right_schema = Schema::new(vec![
            Attribute::required("rid", DataType::Int),
            Attribute::new("name", DataType::Str),
        ]);
        let left = rows2();
        let right = vec![
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Int(1), Value::Str("b".into())],
            vec![Value::Int(9), Value::Str("c".into())],
        ];
        let op = Operation::new(
            "j",
            OpKind::Join {
                left_key: "id".into(),
                right_key: "rid".into(),
            },
        );
        let out = execute_op(
            &op,
            &[left, right],
            &[&left_schema, &right_schema],
            1,
            &cat(),
        )
        .unwrap();
        // id=1 matches twice, others none
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[0][0].len(), 4);
    }

    #[test]
    fn join_skips_null_keys() {
        let s = schema2();
        let left = vec![vec![Value::Null, Value::Float(1.0)]];
        let right = vec![vec![Value::Null, Value::Float(2.0)]];
        let op = Operation::new(
            "j",
            OpKind::Join {
                left_key: "id".into(),
                right_key: "id".into(),
            },
        );
        let out = execute_op(&op, &[left, right], &[&s, &s], 1, &cat()).unwrap();
        assert!(out[0].is_empty());
    }

    #[test]
    fn aggregate_groups_and_skips_nulls() {
        let op = Operation::new(
            "agg",
            OpKind::Aggregate {
                group_by: vec![],
                aggs: vec![
                    ("n".into(), AggFunc::Count, "v".into()),
                    ("s".into(), AggFunc::Sum, "v".into()),
                    ("a".into(), AggFunc::Avg, "v".into()),
                    ("lo".into(), AggFunc::Min, "v".into()),
                    ("hi".into(), AggFunc::Max, "v".into()),
                ],
            },
        );
        let out = run(op, rows2(), &schema2(), 1);
        assert_eq!(out[0].len(), 1);
        let row = &out[0][0];
        assert_eq!(row[0], Value::Int(3)); // count counts all rows
        assert_eq!(row[1], Value::Float(7.0)); // sum skips null
        assert_eq!(row[2], Value::Float(3.5)); // avg over non-null
        assert_eq!(row[3], Value::Float(-3.0));
        assert_eq!(row[4], Value::Float(10.0));
    }

    #[test]
    fn aggregate_by_key_groups() {
        let schema = Schema::new(vec![
            Attribute::new("g", DataType::Str),
            Attribute::new("x", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Str("a".into()), Value::Int(1)],
            vec![Value::Str("b".into()), Value::Int(2)],
            vec![Value::Str("a".into()), Value::Int(3)],
        ];
        let op = Operation::new(
            "agg",
            OpKind::Aggregate {
                group_by: vec!["g".into()],
                aggs: vec![("total".into(), AggFunc::Sum, "x".into())],
            },
        );
        let out = run(op, rows, &schema, 1);
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[0][0], vec![Value::Str("a".into()), Value::Int(4)]);
        assert_eq!(out[0][1], vec![Value::Str("b".into()), Value::Int(2)]);
    }

    #[test]
    fn sort_nulls_last() {
        let op = Operation::new(
            "s",
            OpKind::Sort {
                by: vec!["v".into()],
            },
        );
        let out = run(op, rows2(), &schema2(), 1);
        assert_eq!(out[0][0][1], Value::Float(-3.0));
        assert_eq!(out[0][1][1], Value::Float(10.0));
        assert_eq!(out[0][2][1], Value::Null);
    }

    #[test]
    fn router_partitions_by_predicate() {
        let op = Operation::new(
            "r",
            OpKind::Router {
                predicate: Expr::col("v").gt(Expr::lit_f(0.0)),
            },
        );
        let out = run(op, rows2(), &schema2(), 2);
        assert_eq!(out[0].len(), 1); // v=10
        assert_eq!(out[1].len(), 2); // v=-3 and null (unknown routes to 'no')
    }

    #[test]
    fn split_broadcasts() {
        let op = Operation::new("sp", OpKind::Split);
        let out = run(op, rows2(), &schema2(), 3);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|o| o.len() == 3));
    }

    #[test]
    fn partition_round_robins() {
        let op = Operation::new("pt", OpKind::Partition);
        let out = run(op, rows2(), &schema2(), 2);
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[1].len(), 1);
    }

    #[test]
    fn merge_concatenates() {
        let op = Operation::new("m", OpKind::Merge);
        let s = schema2();
        let out = execute_op(&op, &[rows2(), rows2()], &[&s, &s], 1, &cat()).unwrap();
        assert_eq!(out[0].len(), 6);
    }

    #[test]
    fn dedup_whole_tuple_and_by_key() {
        let mut rows = rows2();
        rows.push(rows2()[0].clone());
        let op = Operation::new("dd", OpKind::Dedup { keys: vec![] });
        let out = run(op, rows.clone(), &schema2(), 1);
        assert_eq!(out[0].len(), 3);

        let op = Operation::new(
            "dd",
            OpKind::Dedup {
                keys: vec!["id".into()],
            },
        );
        let out = run(op, rows, &schema2(), 1);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn filter_nulls_all_columns() {
        let op = Operation::new("fnull", OpKind::FilterNulls { columns: vec![] });
        let out = run(op, rows2(), &schema2(), 1);
        assert_eq!(out[0].len(), 2);
    }

    #[test]
    fn crosscheck_repairs_from_reference() {
        use datagen::Table;
        let schema = Schema::new(vec![
            Attribute::required("id", DataType::Int),
            Attribute::new("name", DataType::Str),
            Attribute::new("v", DataType::Float),
        ]);
        let mut catalog = Catalog::new();
        catalog.add_table(
            "ref_t",
            Table {
                schema: schema.clone(),
                rows: vec![vec![
                    Value::Int(1),
                    Value::Str("good".into()),
                    Value::Float(5.0),
                ]],
                key: "id".into(),
                last_update: 0,
            },
        );
        let dirty = vec![
            vec![
                Value::Int(1),
                Value::Str(format!("bad{CORRUPT_MARKER}")),
                Value::Null,
            ],
            vec![Value::Int(2), Value::Str("keep".into()), Value::Float(1.0)],
        ];
        let op = Operation::new(
            "cc",
            OpKind::Crosscheck {
                alt_source: "ref_t".into(),
                key: "id".into(),
            },
        );
        let out = execute_op(&op, &[dirty], &[&schema], 1, &catalog).unwrap();
        assert_eq!(out[0][0][1], Value::Str("good".into()));
        assert_eq!(out[0][0][2], Value::Float(5.0));
        // unmatched row untouched
        assert_eq!(out[0][1][1], Value::Str("keep".into()));
    }

    #[test]
    fn unknown_source_errors() {
        let op = Operation::extract("ghost", schema2());
        let err = execute_op(&op, &[], &[], 1, &cat()).unwrap_err();
        assert_eq!(err, ExecError::UnknownSource("ghost".into()));
    }
}
