//! `simulator` — a deterministic runtime for ETL flows.
//!
//! POIESIS estimates quality measures of two kinds (Fig. 1 of the paper):
//! ones derived from the static structure of the process model, and ones
//! "obtained from analysis of historical traces capturing the runtime
//! behaviour of ETL components". The authors had a tool execution backend;
//! we substitute a simulator that
//!
//! * **really executes** every operator's data semantics (filters evaluate
//!   predicates, joins hash-match, dedup removes duplicates, crosscheck
//!   repairs values against the clean reference twin, …) over the synthetic
//!   [`datagen::Catalog`], so data-quality measures are computed from actual
//!   loaded tuples, not guessed;
//! * advances a **virtual clock** per operator (startup + per-tuple cost,
//!   scaled by intra-operator parallelism, resource class and encryption
//!   overhead) with pipeline-parallel branches, yielding process cycle time
//!   and per-tuple latency;
//! * optionally **injects failures** (per-operator failure rates) and models
//!   recovery: a failed operator re-runs the segment back to the nearest
//!   upstream savepoint ([`etl_model::OpKind::Checkpoint`]) or, absent one,
//!   back to the extracts — exactly the behaviour the `AddCheckpoint` FCP
//!   (Fig. 2b) improves.
//!
//! The output is a [`Trace`]: per-operator timing/row records plus the rows
//! that reached every load target, which the `quality` crate turns into the
//! paper's measures.
//!
//! # Example
//!
//! ```
//! use datagen::fig2::{purchases_catalog, purchases_flow};
//! use datagen::DirtProfile;
//! use simulator::{simulate, SimConfig};
//!
//! let (flow, _) = purchases_flow();
//! let catalog = purchases_catalog(60, &DirtProfile::demo(), 1);
//! let trace = simulate(&flow, &catalog, &SimConfig::default()).unwrap();
//! assert!(trace.rows_loaded() > 0);      // tuples really flowed
//! assert!(trace.cycle_time_ms > 0.0);    // and the virtual clock advanced
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod exec;
mod trace;

pub use engine::{simulate, simulate_trials, SimConfig, SimError};
pub use trace::{LoadedData, OpTrace, Trace, TrialSummary};
