//! The simulation engine: drives execution in topological order, advances
//! the virtual clock, injects failures and models savepoint recovery.

use crate::exec::{execute_op, ExecError};
use crate::trace::{LoadedData, OpTrace, Trace, TrialSummary};
use datagen::Catalog;
use etl_model::{propagate_schemas, EtlFlow, FlowError, OpKind, SchemaError, Tuple};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// RNG seed (failure sampling only; data is deterministic already).
    pub seed: u64,
    /// Whether per-operator failure rates are sampled.
    pub inject_failures: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xE71,
            inject_failures: false,
        }
    }
}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The flow failed validation.
    Flow(String),
    /// Schema propagation failed.
    Schema(String),
    /// Operator execution failed.
    Exec(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Flow(e) => write!(f, "flow error: {e}"),
            SimError::Schema(e) => write!(f, "schema error: {e}"),
            SimError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<FlowError> for SimError {
    fn from(e: FlowError) -> Self {
        SimError::Flow(e.to_string())
    }
}
impl From<SchemaError> for SimError {
    fn from(e: SchemaError) -> Self {
        SimError::Schema(e.to_string())
    }
}
impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e.to_string())
    }
}

/// Encryption slows every operator down by this factor when the flow-level
/// `encrypted` configuration is on (the security pattern's performance tax).
const ENCRYPTION_OVERHEAD: f64 = 1.08;

/// Runs one simulation of `flow` over `catalog`.
///
/// Determinism: identical `(flow, catalog, config)` triples produce
/// identical traces.
pub fn simulate(flow: &EtlFlow, catalog: &Catalog, config: &SimConfig) -> Result<Trace, SimError> {
    flow.validate()?;
    let schemas = propagate_schemas(flow)?;
    let order = flow.topo_order()?;
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let speed = flow.config.resources.speed_factor();
    let crypto_tax = if flow.config.encrypted {
        ENCRYPTION_OVERHEAD
    } else {
        1.0
    };

    let nbound = flow.graph.node_bound();
    // Rows buffered per edge.
    let mut edge_rows: Vec<Option<Vec<Tuple>>> = vec![None; flow.graph.edge_bound()];
    // Completion time, per-tuple latency and redo-span per node.
    let mut done = vec![0.0f64; nbound];
    let mut latency = vec![0.0f64; nbound];
    // redo_span: time to recompute this node's segment from the nearest
    // upstream savepoints (what a failure at this node costs to recover).
    let mut redo_span = vec![0.0f64; nbound];

    let mut ops = Vec::with_capacity(order.len());
    let mut loads = Vec::new();
    let mut source_updates = Vec::new();
    let mut total_redo = 0.0;
    let mut failures = 0usize;

    for &n in &order {
        let op = flow.op(n).expect("live node");
        let in_edges: Vec<_> = flow.graph.in_edges(n).collect();
        let preds: Vec<_> = flow.graph.predecessors(n).collect();
        let inputs: Vec<Vec<Tuple>> = in_edges
            .iter()
            .map(|e| {
                edge_rows[e.index()]
                    .clone()
                    .expect("topological order fills predecessor edges")
            })
            .collect();
        let in_schemas: Vec<&etl_model::Schema> = preds
            .iter()
            .map(|p| schemas[p.index()].as_deref().expect("propagated"))
            .collect();
        let out_edges: Vec<_> = flow.graph.out_edges(n).collect();

        let outputs = execute_op(op, &inputs, &in_schemas, out_edges.len(), catalog)?;
        let rows_in: usize = inputs.iter().map(|v| v.len()).sum();
        let rows_out: usize = outputs.iter().map(|v| v.len()).sum();

        // --- timing -----------------------------------------------------
        let ready = preds.iter().map(|p| done[p.index()]).fold(0.0f64, f64::max);
        let par = op.parallelism.max(1) as f64;
        let work_rows = match op.kind {
            OpKind::Extract { .. } => rows_out,
            _ => rows_in,
        };
        let service = (op.cost.startup_ms + work_rows as f64 * op.cost.cost_per_tuple_ms / par)
            * crypto_tax
            / speed;

        // Recovery span: recomputing this op plus everything back to the
        // nearest savepoint/extract frontier (max over parallel branches).
        let upstream_span = preds
            .iter()
            .map(|p| {
                let pop = flow.op(*p).expect("live node");
                if matches!(pop.kind, OpKind::Checkpoint { .. }) {
                    // restart from the savepoint: only pay a re-read,
                    // approximated by the checkpoint's startup cost
                    pop.cost.startup_ms
                } else {
                    redo_span[p.index()]
                }
            })
            .fold(0.0f64, f64::max);
        redo_span[n.index()] = service + upstream_span;

        let failed = config.inject_failures
            && op.cost.failure_rate > 0.0
            && rng.gen_bool(op.cost.failure_rate.clamp(0.0, 1.0));
        let redo = if failed { redo_span[n.index()] } else { 0.0 };
        if failed {
            failures += 1;
            total_redo += redo;
        }

        let start = ready;
        let end = ready + service + redo;
        done[n.index()] = end;

        let in_latency = preds
            .iter()
            .map(|p| latency[p.index()])
            .fold(0.0f64, f64::max);
        latency[n.index()] = in_latency + op.cost.cost_per_tuple_ms * crypto_tax / (par * speed);

        // --- bookkeeping --------------------------------------------------
        if let OpKind::Extract { source, .. } = &op.kind {
            if let Some(t) = catalog.table(source) {
                source_updates.push((source.clone(), t.last_update));
            }
        }
        if let OpKind::Load { target } = &op.kind {
            loads.push(LoadedData {
                target: target.clone(),
                schema: schemas[n.index()].as_deref().expect("propagated").clone(),
                rows: outputs.first().cloned().unwrap_or_default(),
            });
        }

        for (e, rows) in out_edges.iter().zip(outputs) {
            edge_rows[e.index()] = Some(rows);
        }

        ops.push(OpTrace {
            node: n,
            name: op.name.clone(),
            kind: op.kind.name().to_string(),
            rows_in,
            rows_out,
            start_ms: start,
            end_ms: end,
            failed,
            redo_ms: redo,
        });
    }

    let load_nodes: Vec<_> = flow.ops_of_kind("load");
    let cycle_time_ms = load_nodes
        .iter()
        .map(|n| done[n.index()])
        .fold(0.0f64, f64::max);
    let avg_latency_ms = if load_nodes.is_empty() {
        0.0
    } else {
        load_nodes.iter().map(|n| latency[n.index()]).sum::<f64>() / load_nodes.len() as f64
    };

    Ok(Trace {
        flow_name: flow.name.clone(),
        ops,
        cycle_time_ms,
        avg_latency_ms,
        total_redo_ms: total_redo,
        failures,
        loads,
        request_time: catalog.request_time(),
        source_updates,
    })
}

/// Monte Carlo reliability: `trials` failure-injecting runs plus one clean
/// run, summarised. Data execution is repeated per trial (failures do not
/// change data, only time), so this is CPU-proportional to `trials`.
pub fn simulate_trials(
    flow: &EtlFlow,
    catalog: &Catalog,
    base: &SimConfig,
    trials: usize,
) -> Result<TrialSummary, SimError> {
    let clean = simulate(
        flow,
        catalog,
        &SimConfig {
            inject_failures: false,
            ..*base
        },
    )?;
    let deadline = clean.cycle_time_ms * 1.5;
    let mut sum_cycle = 0.0;
    let mut sum_redo = 0.0;
    let mut failed_runs = 0usize;
    let mut within = 0usize;
    for i in 0..trials {
        let t = simulate(
            flow,
            catalog,
            &SimConfig {
                seed: base.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
                inject_failures: true,
            },
        )?;
        sum_cycle += t.cycle_time_ms;
        sum_redo += t.total_redo_ms;
        if t.failures > 0 {
            failed_runs += 1;
        }
        if t.cycle_time_ms <= deadline {
            within += 1;
        }
    }
    let n = trials.max(1) as f64;
    Ok(TrialSummary {
        trials,
        mean_cycle_ms: sum_cycle / n,
        clean_cycle_ms: clean.cycle_time_ms,
        mean_redo_ms: sum_redo / n,
        failure_run_fraction: failed_runs as f64 / n,
        within_deadline_fraction: within as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::tpch::{tpch_catalog, tpch_flow};
    use datagen::DirtProfile;
    use etl_model::expr::Expr;
    use etl_model::{Attribute, DataType, Operation, ResourceClass, Schema, Value};

    fn tiny_flow_and_catalog() -> (EtlFlow, Catalog) {
        let schema = Schema::new(vec![
            Attribute::required("t_id", DataType::Int),
            Attribute::new("amount", DataType::Float),
        ]);
        let mut cat = Catalog::new();
        cat.add_generated(
            &datagen::TableSpec::new("t", schema.clone(), 100, "t_id"),
            &DirtProfile::clean(),
            1,
        );
        let mut f = EtlFlow::new("tiny");
        let e = f.add_op(Operation::extract("t", schema));
        let fi = f.add_op(Operation::filter(
            "pos",
            Expr::col("amount").gt(Expr::lit_f(0.0)),
        ));
        let l = f.add_op(Operation::load("out"));
        f.connect(e, fi).unwrap();
        f.connect(fi, l).unwrap();
        (f, cat)
    }

    #[test]
    fn simulates_tiny_flow() {
        let (f, cat) = tiny_flow_and_catalog();
        let t = simulate(&f, &cat, &SimConfig::default()).unwrap();
        assert_eq!(t.ops.len(), 3);
        assert!(t.cycle_time_ms > 0.0);
        assert!(t.avg_latency_ms > 0.0);
        assert_eq!(t.loads.len(), 1);
        assert_eq!(t.loads[0].rows.len(), 100); // all amounts positive by generator
        assert_eq!(t.failures, 0);
    }

    #[test]
    fn deterministic_traces() {
        let (f, cat) = tiny_flow_and_catalog();
        let a = simulate(&f, &cat, &SimConfig::default()).unwrap();
        let b = simulate(&f, &cat, &SimConfig::default()).unwrap();
        assert_eq!(a.cycle_time_ms, b.cycle_time_ms);
        assert_eq!(a.rows_loaded(), b.rows_loaded());
    }

    #[test]
    fn tpch_flow_runs_end_to_end() {
        let (f, _) = tpch_flow();
        let cat = tpch_catalog(400, &DirtProfile::demo(), 7);
        let t = simulate(&f, &cat, &SimConfig::default()).unwrap();
        assert_eq!(t.loads.len(), 2);
        assert!(t.rows_loaded() > 0, "joins should produce rows");
        assert!(t.cycle_time_ms > 0.0);
        // every op has a record, in a valid order
        assert_eq!(t.ops.len(), f.op_count());
    }

    #[test]
    fn purchases_flow_runs() {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(200, &DirtProfile::demo(), 3);
        let t = simulate(&f, &cat, &SimConfig::default()).unwrap();
        assert_eq!(t.loads.len(), 1);
        assert!(t.rows_loaded() > 0);
        assert_eq!(t.source_updates.len(), 2);
    }

    #[test]
    fn larger_resources_are_faster() {
        let (mut f, cat) = tiny_flow_and_catalog();
        let slow = simulate(&f, &cat, &SimConfig::default()).unwrap();
        f.config.resources = ResourceClass::Large;
        let fast = simulate(&f, &cat, &SimConfig::default()).unwrap();
        assert!(fast.cycle_time_ms < slow.cycle_time_ms);
    }

    #[test]
    fn encryption_costs_time() {
        let (mut f, cat) = tiny_flow_and_catalog();
        let plain = simulate(&f, &cat, &SimConfig::default()).unwrap();
        f.config.encrypted = true;
        let enc = simulate(&f, &cat, &SimConfig::default()).unwrap();
        assert!(enc.cycle_time_ms > plain.cycle_time_ms);
    }

    #[test]
    fn failures_add_redo_time() {
        let (mut f, cat) = tiny_flow_and_catalog();
        // make the filter fail certainly
        let fid = f.ops_of_kind("filter")[0];
        f.op_mut(fid).unwrap().cost.failure_rate = 1.0;
        let clean = simulate(
            &f,
            &cat,
            &SimConfig {
                inject_failures: false,
                seed: 1,
            },
        )
        .unwrap();
        let failed = simulate(
            &f,
            &cat,
            &SimConfig {
                inject_failures: true,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(failed.failures, 1);
        assert!(failed.total_redo_ms > 0.0);
        assert!(failed.cycle_time_ms > clean.cycle_time_ms);
    }

    #[test]
    fn checkpoint_shrinks_redo_span() {
        // extract -> expensive derive -> (checkpoint?) -> fragile op -> load
        let schema = Schema::new(vec![
            Attribute::required("t_id", DataType::Int),
            Attribute::new("amount", DataType::Float),
        ]);
        let mut cat = Catalog::new();
        cat.add_generated(
            &datagen::TableSpec::new("t", schema.clone(), 2_000, "t_id"),
            &DirtProfile::clean(),
            1,
        );
        let build = |with_cp: bool| {
            let mut f = EtlFlow::new("cp");
            let e = f.add_op(Operation::extract("t", schema.clone()));
            let d = f.add_op(
                Operation::derive(
                    "expensive",
                    vec![("x".to_string(), Expr::col("amount").mul(Expr::lit_f(2.0)))],
                )
                .with_cost(0.1),
            );
            let mut prev = d;
            f.connect(e, d).unwrap();
            if with_cp {
                let cp = f.add_op(Operation::new(
                    "SAVE",
                    etl_model::OpKind::Checkpoint { tag: "sp1".into() },
                ));
                f.connect(prev, cp).unwrap();
                prev = cp;
            }
            let fragile = f.add_op(
                Operation::filter("fragile", Expr::col("amount").gt(Expr::lit_f(-1.0)))
                    .with_failure_rate(1.0),
            );
            let l = f.add_op(Operation::load("out"));
            f.connect(prev, fragile).unwrap();
            f.connect(fragile, l).unwrap();
            f
        };
        let cfg = SimConfig {
            seed: 5,
            inject_failures: true,
        };
        let without = simulate(&build(false), &cat, &cfg).unwrap();
        let with = simulate(&build(true), &cat, &cfg).unwrap();
        assert_eq!(without.failures, 1);
        assert_eq!(with.failures, 1);
        // the savepoint means the expensive derive is NOT re-run
        assert!(
            with.total_redo_ms < without.total_redo_ms / 2.0,
            "checkpoint should cut recovery cost: with={} without={}",
            with.total_redo_ms,
            without.total_redo_ms
        );
    }

    #[test]
    fn parallel_replicas_cut_cycle_time() {
        // Simulates what ParallelizeTask produces: partition -> 2 replicas -> merge.
        let schema = Schema::new(vec![
            Attribute::required("t_id", DataType::Int),
            Attribute::new("amount", DataType::Float),
        ]);
        let mut cat = Catalog::new();
        cat.add_generated(
            &datagen::TableSpec::new("t", schema.clone(), 5_000, "t_id"),
            &DirtProfile::clean(),
            1,
        );
        let derive_op = || {
            Operation::derive(
                "work",
                vec![("x".to_string(), Expr::col("amount").mul(Expr::lit_f(2.0)))],
            )
            .with_cost(0.05)
        };
        // serial
        let mut f1 = EtlFlow::new("serial");
        let e = f1.add_op(Operation::extract("t", schema.clone()));
        let d = f1.add_op(derive_op());
        let l = f1.add_op(Operation::load("out"));
        f1.connect(e, d).unwrap();
        f1.connect(d, l).unwrap();
        // parallel ×2
        let mut f2 = EtlFlow::new("parallel");
        let e = f2.add_op(Operation::extract("t", schema.clone()));
        let pt = f2.add_op(Operation::new("HP", etl_model::OpKind::Partition));
        let d1 = f2.add_op(derive_op());
        let d2 = f2.add_op(derive_op());
        let m = f2.add_op(Operation::new("M", etl_model::OpKind::Merge));
        let l = f2.add_op(Operation::load("out"));
        f2.connect(e, pt).unwrap();
        f2.connect(pt, d1).unwrap();
        f2.connect(pt, d2).unwrap();
        f2.connect(d1, m).unwrap();
        f2.connect(d2, m).unwrap();
        f2.connect(m, l).unwrap();

        let cfg = SimConfig::default();
        let serial = simulate(&f1, &cat, &cfg).unwrap();
        let parallel = simulate(&f2, &cat, &cfg).unwrap();
        assert!(
            parallel.cycle_time_ms < serial.cycle_time_ms * 0.7,
            "2-way partition should cut cycle time: serial={} parallel={}",
            serial.cycle_time_ms,
            parallel.cycle_time_ms
        );
        assert_eq!(serial.rows_loaded(), parallel.rows_loaded());
    }

    #[test]
    fn trial_summary_statistics() {
        let (mut f, cat) = tiny_flow_and_catalog();
        let fid = f.ops_of_kind("filter")[0];
        f.op_mut(fid).unwrap().cost.failure_rate = 0.5;
        let s = simulate_trials(&f, &cat, &SimConfig::default(), 40).unwrap();
        assert_eq!(s.trials, 40);
        assert!(s.mean_cycle_ms >= s.clean_cycle_ms);
        assert!(s.failure_run_fraction > 0.1 && s.failure_run_fraction < 0.9);
        assert!(s.within_deadline_fraction > 0.0);
    }

    #[test]
    fn dirty_data_affects_loads() {
        // With filthy sources and no cleaning, loaded rows contain nulls/dups.
        let schema = Schema::new(vec![
            Attribute::required("t_id", DataType::Int),
            Attribute::new("name", DataType::Str),
        ]);
        let mut cat = Catalog::new();
        cat.add_generated(
            &datagen::TableSpec::new("t", schema.clone(), 500, "t_id"),
            &DirtProfile::filthy(),
            2,
        );
        let mut f = EtlFlow::new("passthru");
        let e = f.add_op(Operation::extract("t", schema));
        let l = f.add_op(Operation::load("out"));
        f.connect(e, l).unwrap();
        let t = simulate(&f, &cat, &SimConfig::default()).unwrap();
        let nulls = t.loads[0]
            .rows
            .iter()
            .flat_map(|r| r.iter())
            .filter(|v| v.is_null())
            .count();
        assert!(nulls > 0);
        assert!(
            t.loads[0].rows.len() > 500,
            "duplicates should inflate row count"
        );
        let corrupt = t.loads[0]
            .rows
            .iter()
            .any(|r| matches!(&r[1], Value::Str(s) if s.ends_with(datagen::CORRUPT_MARKER)));
        assert!(corrupt);
    }
}
