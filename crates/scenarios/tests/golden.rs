//! Golden-frontier snapshot tests: every (scenario × strategy) cell's
//! skyline — member names *and* measure bit patterns — is pinned in
//! `tests/golden_frontiers.txt`.
//!
//! A legitimate engine change that moves any frontier is re-blessed
//! with
//!
//! ```text
//! SCENARIOS_BLESS=1 cargo test -p scenarios --test golden
//! ```
//!
//! which rewrites the file from the current engine; the diff then shows
//! reviewers exactly which cells moved and how. An unexplained failure
//! here is a determinism or planning regression.

use scenarios::digest::{digest_lines, frontier_lines};
use scenarios::sweep::{run_cell, strategies, SweepScale};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// One pinned cell: digest plus the canonical member lines.
#[derive(Debug, Clone, PartialEq)]
struct GoldenCell {
    digest: String,
    members: Vec<String>,
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_frontiers.txt")
}

/// Parses the golden file: header lines are `scenario<TAB>strategy<TAB>
/// digest`, followed by one tab-indented canonical line per member.
fn parse_golden(text: &str) -> BTreeMap<(String, String), GoldenCell> {
    let mut cells = BTreeMap::new();
    let mut current: Option<((String, String), GoldenCell)> = None;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(member) = line.strip_prefix('\t') {
            let (_, cell) = current
                .as_mut()
                .expect("golden file: member line before any cell header");
            cell.members.push(member.to_string());
        } else {
            if let Some((key, cell)) = current.take() {
                cells.insert(key, cell);
            }
            let mut parts = line.splitn(3, '\t');
            let scenario = parts.next().expect("golden header: scenario").to_string();
            let strategy = parts.next().expect("golden header: strategy").to_string();
            let digest = parts.next().expect("golden header: digest").to_string();
            current = Some((
                (scenario, strategy),
                GoldenCell {
                    digest,
                    members: Vec::new(),
                },
            ));
        }
    }
    if let Some((key, cell)) = current.take() {
        cells.insert(key, cell);
    }
    cells
}

fn render_golden(cells: &BTreeMap<(String, String), GoldenCell>) -> String {
    let mut out = String::from(
        "# Golden frontiers: scenario <TAB> strategy <TAB> digest, then one\n\
         # tab-indented canonical line per skyline member (name + measure bits).\n\
         # Regenerate: SCENARIOS_BLESS=1 cargo test -p scenarios --test golden\n",
    );
    for ((scenario, strategy), cell) in cells {
        let _ = writeln!(out, "{scenario}\t{strategy}\t{}", cell.digest);
        for m in &cell.members {
            let _ = writeln!(out, "\t{m}");
        }
    }
    out
}

/// Member names (the part before the first measure pair) of a cell.
fn names(members: &[String]) -> Vec<&str> {
    members
        .iter()
        .map(|m| m.split(' ').next().unwrap_or(m))
        .collect()
}

/// Diff-style failure message for one diverged cell.
fn describe_divergence(
    scenario: &str,
    strategy: &str,
    expected: &GoldenCell,
    actual: &GoldenCell,
) -> String {
    let mut msg = format!(
        "golden frontier diverged: {scenario} × {strategy}\n\
         - expected digest {} ({} members)\n\
         + actual   digest {} ({} members)\n",
        expected.digest,
        expected.members.len(),
        actual.digest,
        actual.members.len(),
    );
    let exp_names = names(&expected.members);
    let act_names = names(&actual.members);
    for n in exp_names.iter().filter(|n| !act_names.contains(n)) {
        let _ = writeln!(msg, "  - only in golden: {n}");
    }
    for n in act_names.iter().filter(|n| !exp_names.contains(n)) {
        let _ = writeln!(msg, "  + only in run:    {n}");
    }
    // members present on both sides but with moved measures
    for exp in &expected.members {
        let name = exp.split(' ').next().unwrap_or(exp);
        if let Some(act) = actual
            .members
            .iter()
            .find(|a| a.split(' ').next() == Some(name))
        {
            if exp != act {
                let _ = writeln!(
                    msg,
                    "  ~ measures moved for {name}:\n    - {exp}\n    + {act}"
                );
            }
        }
    }
    msg.push_str(
        "rebless (if intended): SCENARIOS_BLESS=1 cargo test -p scenarios --test golden\n",
    );
    msg
}

/// Runs the full tiny grid and returns every cell keyed by
/// (scenario, strategy-display).
fn run_grid() -> BTreeMap<(String, String), GoldenCell> {
    let scale = SweepScale::tiny();
    let mut cells = BTreeMap::new();
    for s in scenarios::all() {
        for strategy in strategies() {
            let run = run_cell(&s, strategy, &scale);
            cells.insert(
                (s.name.to_string(), strategy.to_string()),
                GoldenCell {
                    digest: run.digest,
                    members: frontier_lines(&run.outcome),
                },
            );
        }
    }
    cells
}

#[test]
fn every_cell_matches_its_golden_frontier() {
    let actual = run_grid();

    if std::env::var("SCENARIOS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(golden_path(), render_golden(&actual)).expect("write golden file");
        println!(
            "blessed {} cells into {}",
            actual.len(),
            golden_path().display()
        );
        return;
    }

    let text = std::fs::read_to_string(golden_path()).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}\nseed it with SCENARIOS_BLESS=1 cargo test -p scenarios --test golden",
            golden_path().display()
        )
    });
    let expected = parse_golden(&text);

    // the stored digest must agree with the stored lines (hand edits or
    // merge damage show up here, not as a confusing frontier diff)
    for ((scenario, strategy), cell) in &expected {
        assert_eq!(
            digest_lines(&cell.members),
            cell.digest,
            "golden file self-check failed for {scenario} × {strategy}: stored digest does not match stored members"
        );
    }

    let mut failures = Vec::new();
    for ((scenario, strategy), act) in &actual {
        match expected.get(&(scenario.clone(), strategy.clone())) {
            None => failures.push(format!(
                "cell {scenario} × {strategy} missing from golden file (new scenario? rebless)"
            )),
            Some(exp) if exp != act => {
                failures.push(describe_divergence(scenario, strategy, exp, act))
            }
            Some(_) => {}
        }
    }
    for key in expected.keys() {
        if !actual.contains_key(key) {
            failures.push(format!(
                "golden cell {} × {} no longer produced by the grid",
                key.0, key.1
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));

    // the acceptance bar: ≥ 8 scenarios × 3 strategies, all pinned
    assert!(actual.len() >= 24, "grid shrank to {} cells", actual.len());
}
