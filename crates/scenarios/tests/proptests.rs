//! Property coverage for the scenario corpus:
//!
//! * every catalog entry builds a valid planning session — the static
//!   analyzer finds zero Error-severity PA0xx diagnostics, and zero
//!   warnings either (CI lints every scenario with `--deny-warn`);
//! * two independent runs of the same scenario + seed produce
//!   bit-identical frontiers (the determinism contract the golden file
//!   and the sweep gate rely on).

use proptest::prelude::*;
use scenarios::sweep::{run_cell, strategies, SweepScale};

#[test]
fn every_entry_builds_a_session_and_lints_clean() {
    for s in scenarios::all() {
        let flow = s.flow();
        let diags = analysis::analyze(&flow);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == analysis::Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "{}: base flow has Error diagnostics:\n{}",
            s.name,
            analysis::render(&flow, &diags)
        );
        let warns: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == analysis::Severity::Warn)
            .collect();
        assert!(
            warns.is_empty(),
            "{}: base flow would fail `poiesis_lint --deny-warn`:\n{}",
            s.name,
            analysis::render(&flow, &diags)
        );

        // and the session facade accepts it
        poiesis::Poiesis::session()
            .flow(flow)
            .catalog(s.catalog(16))
            .budget(50)
            .build()
            .unwrap_or_else(|e| panic!("{}: session rejected: {e}", s.name));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn same_cell_twice_is_bit_identical(
        scenario_idx in 0usize..8,
        strategy_idx in 0usize..3,
    ) {
        let s = &scenarios::all()[scenario_idx];
        let strategy = strategies()[strategy_idx];
        let scale = SweepScale::tiny();
        let a = run_cell(s, strategy, &scale);
        let b = run_cell(s, strategy, &scale);
        prop_assert_eq!(&a.digest, &b.digest);
        prop_assert!(!a.outcome.skyline.is_empty());
    }
}
