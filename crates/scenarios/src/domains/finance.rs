//! Finance reconciliation: match general-ledger entries against bank
//! transactions and summarise the mismatches per account.
//!
//! The domain's pain is *data quality* — amounts disagree, postings go
//! missing — and a missed reconciliation run is expensive, so the
//! objective weighs data quality first and reliability second.

use crate::Scenario;
use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::expr::Expr;
use etl_model::{AggFunc, Attribute, DataType, EtlFlow, OpKind, Operation, Schema};
use poiesis::Objective;
use quality::Characteristic;

/// Schema of the general-ledger source.
pub fn gl_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("gl_id", DataType::Int),
        Attribute::new("gl_txn_id", DataType::Int),
        Attribute::new("gl_account", DataType::Int),
        Attribute::new("gl_amount", DataType::Float),
        Attribute::new("gl_posted_ts", DataType::Timestamp),
    ])
}

/// Schema of the bank-transactions source.
pub fn bank_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("bt_id", DataType::Int),
        Attribute::new("bt_txn_id", DataType::Int),
        Attribute::new("bt_amount", DataType::Float),
        Attribute::new("bt_status", DataType::Str),
    ])
}

/// Ledger ∪ bank join → delta derivation → mismatch filter → per-account
/// rollup (11 operators).
pub fn flow() -> EtlFlow {
    let mut f = EtlFlow::new("finance_recon");
    let ext_gl = f.add_op(Operation::extract("gl_entries", gl_schema()));
    let ext_bt = f.add_op(Operation::extract("bank_txns", bank_schema()));
    let f_gl = f.add_op(
        Operation::filter(
            "FILTER posted entries",
            Expr::col("gl_posted_ts").is_not_null(),
        )
        .with_selectivity(0.93),
    );
    let f_bt = f.add_op(
        Operation::filter("FILTER settled txns", Expr::col("bt_status").is_not_null())
            .with_selectivity(0.9),
    );
    let join = f.add_op(Operation::new(
        "JOIN ledger to bank",
        OpKind::Join {
            left_key: "gl_txn_id".into(),
            right_key: "bt_txn_id".into(),
        },
    ));
    let derive = f.add_op(
        Operation::derive(
            "DERIVE reconciliation delta",
            vec![(
                "delta".to_string(),
                Expr::col("gl_amount").sub(Expr::col("bt_amount")),
            )],
        )
        .with_cost(0.030),
    );
    let f_mismatch = f.add_op(
        Operation::filter(
            "FILTER mismatches",
            Expr::col("delta")
                .gt(Expr::lit_f(0.01))
                .or(Expr::col("delta").lt(Expr::lit_f(-0.01))),
        )
        .with_selectivity(0.2),
    );
    let agg = f.add_op(Operation::new(
        "AGGREGATE by account",
        OpKind::Aggregate {
            group_by: vec!["gl_account".into()],
            aggs: vec![
                ("total_delta".into(), AggFunc::Sum, "delta".into()),
                ("entries".into(), AggFunc::Count, "gl_id".into()),
                ("last_bank_txn".into(), AggFunc::Max, "bt_id".into()),
            ],
        },
    ));
    let load = f.add_op(Operation::load("dw_reconciliation"));

    f.connect(ext_gl, f_gl).unwrap();
    f.connect(ext_bt, f_bt).unwrap();
    f.connect(f_gl, join).unwrap();
    f.connect(f_bt, join).unwrap();
    f.connect(join, derive).unwrap();
    f.connect(derive, f_mismatch).unwrap();
    f.connect(f_mismatch, agg).unwrap();
    f.connect(agg, load).unwrap();
    f
}

/// Both ledgers at `rows` base rows (bank side slightly smaller, as
/// feeds usually are).
pub fn catalog(rows: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("gl_entries", gl_schema(), rows, "gl_id"),
        dirt,
        seed,
    );
    c.add_generated(
        &TableSpec::new("bank_txns", bank_schema(), (rows * 4) / 5, "bt_id"),
        dirt,
        seed.wrapping_add(1),
    );
    c
}

/// The registry entry.
pub fn scenario() -> Scenario {
    Scenario {
        name: "finance_recon",
        domain: "finance reconciliation (ledger vs bank feed)",
        flow_shape: "2 sources → join → delta derive → mismatch filter → account rollup",
        dirt: DirtProfile {
            null_rate: 0.06,
            dup_rate: 0.02,
            corrupt_rate: 0.08,
            staleness_hours: 18.0,
        },
        seed: 0xF1A2C0,
        depth: 3,
        flow_fn: flow,
        catalog_fn: catalog,
        objective_fn: || {
            Objective::new()
                .weighted(Characteristic::DataQuality, 2.0)
                .weighted(Characteristic::Reliability, 1.5)
                .weighted(Characteristic::Performance, 1.0)
        },
    }
}
