//! Healthcare claims adjudication: dedupe resubmitted claims, price
//! them against provider rates, and flag high-value lines for review.
//!
//! Claims data moves under compliance rules, so the objective puts
//! security first — the sweep is where `EncryptChannels` and
//! `EnableAccessControl` patterns earn their keep — with data quality
//! (miscoded and duplicated claims) close behind.

use crate::Scenario;
use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::expr::Expr;
use etl_model::{AggFunc, Attribute, DataType, EtlFlow, OpKind, Operation, Schema};
use poiesis::Objective;
use quality::Characteristic;

/// Schema of the submitted-claims source.
pub fn claims_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("cl_id", DataType::Int),
        Attribute::new("cl_patient_id", DataType::Int),
        Attribute::new("cl_provider_id", DataType::Int),
        Attribute::new("cl_amount", DataType::Float),
        Attribute::new("cl_code", DataType::Str),
        Attribute::new("cl_submitted", DataType::Timestamp),
    ])
}

/// Schema of the provider master.
pub fn providers_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("pr_provider_id", DataType::Int),
        Attribute::new("pr_specialty", DataType::Str),
        Attribute::new("pr_rate", DataType::Float),
    ])
}

/// Claims → dedup → ⋈ providers → payout derive → review router →
/// specialty rollup (12 operators).
pub fn flow() -> EtlFlow {
    let mut f = EtlFlow::new("healthcare_claims");
    let ext_cl = f.add_op(Operation::extract("claims", claims_schema()));
    let ext_pr = f.add_op(Operation::extract("providers", providers_schema()));
    let f_cl = f.add_op(
        Operation::filter(
            "FILTER billable claims",
            Expr::col("cl_code")
                .is_not_null()
                .and(Expr::col("cl_amount").gt(Expr::lit_f(0.0))),
        )
        .with_selectivity(0.87),
    );
    let dedup = f.add_op(Operation::new(
        "DEDUP resubmissions",
        OpKind::Dedup {
            keys: vec![
                "cl_patient_id".into(),
                "cl_code".into(),
                "cl_submitted".into(),
            ],
        },
    ));
    let join = f.add_op(Operation::new(
        "JOIN provider rates",
        OpKind::Join {
            left_key: "cl_provider_id".into(),
            right_key: "pr_provider_id".into(),
        },
    ));
    let derive = f.add_op(
        Operation::derive(
            "DERIVE adjudicated payout",
            vec![(
                "payout".to_string(),
                Expr::col("cl_amount").mul(Expr::col("pr_rate")),
            )],
        )
        .with_cost(0.045),
    );
    let router = f.add_op(Operation::new(
        "ROUTE high-value claims",
        OpKind::Router {
            predicate: Expr::col("payout").gt(Expr::lit_f(5000.0)),
        },
    ));
    let d_rev = f.add_op(Operation::derive(
        "DERIVE review flag",
        vec![("review".to_string(), Expr::lit_f(1.0))],
    ));
    let d_auto = f.add_op(Operation::derive(
        "DERIVE auto-approve flag",
        vec![("review".to_string(), Expr::lit_f(0.0))],
    ));
    let merge = f.add_op(Operation::new("MERGE adjudicated claims", OpKind::Merge));
    let agg = f.add_op(Operation::new(
        "AGGREGATE per specialty",
        OpKind::Aggregate {
            group_by: vec!["pr_specialty".into()],
            aggs: vec![
                ("payout_total".into(), AggFunc::Sum, "payout".into()),
                ("claims".into(), AggFunc::Count, "cl_id".into()),
                ("flagged".into(), AggFunc::Sum, "review".into()),
            ],
        },
    ));
    let load = f.add_op(Operation::load("dw_claim_summary"));

    f.connect(ext_cl, f_cl).unwrap();
    f.connect(f_cl, dedup).unwrap();
    f.connect(dedup, join).unwrap();
    f.connect(ext_pr, join).unwrap();
    f.connect(join, derive).unwrap();
    f.connect(derive, router).unwrap();
    f.connect_labelled(router, d_rev, "review").unwrap();
    f.connect_labelled(router, d_auto, "auto").unwrap();
    f.connect(d_rev, merge).unwrap();
    f.connect(d_auto, merge).unwrap();
    f.connect(merge, agg).unwrap();
    f.connect(agg, load).unwrap();
    f
}

/// Claims at `rows`, provider master at a tenth of it.
pub fn catalog(rows: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("claims", claims_schema(), rows, "cl_id"),
        dirt,
        seed,
    );
    // the provider master is curated by hand: clean, just stale
    let master_dirt = DirtProfile {
        null_rate: 0.01,
        dup_rate: 0.0,
        corrupt_rate: 0.01,
        staleness_hours: dirt.staleness_hours * 2.0,
    };
    c.add_generated(
        &TableSpec::new(
            "providers",
            providers_schema(),
            (rows / 10).max(4),
            "pr_provider_id",
        ),
        &master_dirt,
        seed.wrapping_add(1),
    );
    c
}

/// The registry entry.
pub fn scenario() -> Scenario {
    Scenario {
        name: "healthcare_claims",
        domain: "healthcare claims adjudication (compliance-bound)",
        flow_shape: "claims → dedup → ⋈ providers → payout derive → review router → rollup",
        dirt: DirtProfile {
            null_rate: 0.08,
            dup_rate: 0.12,
            corrupt_rate: 0.1,
            staleness_hours: 36.0,
        },
        seed: 0x8EA17,
        depth: 3,
        flow_fn: flow,
        catalog_fn: catalog,
        objective_fn: || {
            Objective::new()
                .weighted(Characteristic::Security, 2.0)
                .weighted(Characteristic::DataQuality, 1.5)
                .weighted(Characteristic::Reliability, 1.0)
        },
    }
}
