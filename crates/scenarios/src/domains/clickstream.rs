//! Clickstream sessionization: order raw clicks per user, bucket them
//! into sessions, and feed two marts — per-user activity and per-page
//! hits — from one pass over the stream.
//!
//! The two-target split is the structurally interesting part: patterns
//! that help one mart (say a checkpoint before the split) help both.

use crate::Scenario;
use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::expr::Expr;
use etl_model::{AggFunc, Attribute, DataType, EtlFlow, OpKind, Operation, Schema};
use poiesis::Objective;
use quality::Characteristic;

/// Schema of the raw click log.
pub fn clicks_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("ck_id", DataType::Int),
        Attribute::new("ck_user_id", DataType::Int),
        Attribute::new("ck_url", DataType::Str),
        Attribute::new("ck_referrer", DataType::Str),
        Attribute::new("ck_ts", DataType::Timestamp),
    ])
}

/// Clicks → bot filter → sort → session derive → split → two marts
/// (9 operators, 2 targets).
pub fn flow() -> EtlFlow {
    let mut f = EtlFlow::new("clickstream");
    let ext = f.add_op(Operation::extract("clicks", clicks_schema()));
    let f_bots = f.add_op(
        Operation::filter("FILTER bot traffic", Expr::col("ck_referrer").is_not_null())
            .with_selectivity(0.85),
    );
    let sort = f.add_op(Operation::new(
        "SORT by user and time",
        OpKind::Sort {
            by: vec!["ck_user_id".into(), "ck_ts".into()],
        },
    ));
    let derive = f.add_op(
        Operation::derive(
            "DERIVE session bucket",
            vec![(
                "session_key".to_string(),
                Expr::col("ck_user_id").mul(Expr::lit_i(1009)),
            )],
        )
        .with_cost(0.030),
    );
    let split = f.add_op(Operation::new("SPLIT to marts", OpKind::Split));
    let agg_user = f.add_op(Operation::new(
        "AGGREGATE per user",
        OpKind::Aggregate {
            group_by: vec!["ck_user_id".into()],
            aggs: vec![
                ("clicks".into(), AggFunc::Count, "ck_id".into()),
                ("last_seen".into(), AggFunc::Max, "ck_ts".into()),
            ],
        },
    ));
    let agg_page = f.add_op(Operation::new(
        "AGGREGATE per page",
        OpKind::Aggregate {
            group_by: vec!["ck_url".into()],
            aggs: vec![
                ("hits".into(), AggFunc::Count, "ck_id".into()),
                ("sessions".into(), AggFunc::Max, "session_key".into()),
            ],
        },
    ));
    let load_user = f.add_op(Operation::load("dw_user_activity"));
    let load_page = f.add_op(Operation::load("dw_page_hits"));

    f.connect(ext, f_bots).unwrap();
    f.connect(f_bots, sort).unwrap();
    f.connect(sort, derive).unwrap();
    f.connect(derive, split).unwrap();
    f.connect(split, agg_user).unwrap();
    f.connect(split, agg_page).unwrap();
    f.connect(agg_user, load_user).unwrap();
    f.connect(agg_page, load_page).unwrap();
    f
}

/// One click log.
pub fn catalog(rows: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("clicks", clicks_schema(), rows, "ck_id"),
        dirt,
        seed,
    );
    c
}

/// The registry entry.
pub fn scenario() -> Scenario {
    Scenario {
        name: "clickstream",
        domain: "clickstream sessionization feeding two marts",
        flow_shape: "clicks → bot filter → sort → session derive → split → 2 marts",
        dirt: DirtProfile {
            null_rate: 0.07,
            dup_rate: 0.05,
            corrupt_rate: 0.09,
            staleness_hours: 1.0,
        },
        seed: 0xC11C5,
        depth: 2,
        flow_fn: flow,
        catalog_fn: catalog,
        objective_fn: || {
            Objective::new()
                .weighted(Characteristic::Performance, 2.0)
                .weighted(Characteristic::DataQuality, 1.0)
                .weighted(Characteristic::Manageability, 1.0)
        },
    }
}
