//! Telemetry / IoT dedup: a single high-volume readings feed where the
//! transport re-delivers aggressively, so the raw stream is full of
//! duplicates; calibrate, flag anomalies and roll up per device.
//!
//! Throughput is the whole game for telemetry, with data quality (dedup
//! effectiveness) a close second; a hard constraint keeps cycle time
//! from regressing past 60% no matter what cleaning is bolted on.

use crate::Scenario;
use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::expr::Expr;
use etl_model::{AggFunc, Attribute, DataType, EtlFlow, OpKind, Operation, Schema};
use poiesis::Objective;
use quality::{Characteristic, MeasureId};

/// Schema of the raw readings feed.
pub fn readings_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("rd_id", DataType::Int),
        Attribute::new("rd_device_id", DataType::Int),
        Attribute::new("rd_metric", DataType::Str),
        Attribute::new("rd_value", DataType::Float),
        Attribute::new("rd_ts", DataType::Timestamp),
    ])
}

/// Feed → dedup → calibrate → anomaly router → per-device rollup
/// (10 operators).
pub fn flow() -> EtlFlow {
    let mut f = EtlFlow::new("iot_dedup");
    let ext = f.add_op(Operation::extract("sensor_readings", readings_schema()));
    let f_valid = f.add_op(
        Operation::filter(
            "FILTER complete readings",
            Expr::col("rd_value")
                .is_not_null()
                .and(Expr::col("rd_ts").is_not_null()),
        )
        .with_selectivity(0.9),
    );
    let dedup = f.add_op(Operation::new(
        "DEDUP redelivered readings",
        OpKind::Dedup {
            keys: vec!["rd_device_id".into(), "rd_ts".into()],
        },
    ));
    let derive = f.add_op(
        Operation::derive(
            "DERIVE calibrated value",
            vec![(
                "calibrated".to_string(),
                Expr::col("rd_value")
                    .mul(Expr::lit_f(1.02))
                    .add(Expr::lit_f(0.5)),
            )],
        )
        .with_cost(0.035),
    );
    let router = f.add_op(Operation::new(
        "ROUTE anomalies",
        OpKind::Router {
            predicate: Expr::col("calibrated").gt(Expr::lit_f(900.0)),
        },
    ));
    let d_anom = f.add_op(Operation::derive(
        "DERIVE anomaly flag",
        vec![("flag".to_string(), Expr::lit_f(1.0))],
    ));
    let d_norm = f.add_op(Operation::derive(
        "DERIVE normal flag",
        vec![("flag".to_string(), Expr::lit_f(0.0))],
    ));
    let merge = f.add_op(Operation::new("MERGE flagged readings", OpKind::Merge));
    let agg = f.add_op(Operation::new(
        "AGGREGATE per device metric",
        OpKind::Aggregate {
            group_by: vec!["rd_device_id".into(), "rd_metric".into()],
            aggs: vec![
                ("avg_value".into(), AggFunc::Avg, "calibrated".into()),
                ("anomalies".into(), AggFunc::Sum, "flag".into()),
                ("readings".into(), AggFunc::Count, "rd_id".into()),
            ],
        },
    ));
    let load = f.add_op(Operation::load("dw_device_metrics"));

    f.connect(ext, f_valid).unwrap();
    f.connect(f_valid, dedup).unwrap();
    f.connect(dedup, derive).unwrap();
    f.connect(derive, router).unwrap();
    f.connect_labelled(router, d_anom, "anomaly").unwrap();
    f.connect_labelled(router, d_norm, "normal").unwrap();
    f.connect(d_anom, merge).unwrap();
    f.connect(d_norm, merge).unwrap();
    f.connect(merge, agg).unwrap();
    f.connect(agg, load).unwrap();
    f
}

/// One big feed table.
pub fn catalog(rows: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("sensor_readings", readings_schema(), rows, "rd_id"),
        dirt,
        seed,
    );
    c
}

/// The registry entry.
pub fn scenario() -> Scenario {
    Scenario {
        name: "iot_dedup",
        domain: "telemetry/IoT readings dedup and rollup",
        flow_shape: "1 feed → dedup → calibrate → anomaly router → device rollup",
        dirt: DirtProfile {
            null_rate: 0.08,
            dup_rate: 0.22,
            corrupt_rate: 0.03,
            staleness_hours: 2.0,
        },
        seed: 0x107D3D,
        depth: 3,
        flow_fn: flow,
        catalog_fn: catalog,
        objective_fn: || {
            Objective::new()
                .weighted(Characteristic::Performance, 2.0)
                .weighted(Characteristic::DataQuality, 1.5)
                .weighted(Characteristic::Cost, 1.0)
                .constrain(MeasureId::CycleTimeMs, 1.6)
        },
    }
}
