//! CDC upserts: apply a change-data-capture event stream onto a current
//! entity snapshot — order by event time, split deletes from upserts,
//! measure drift against the standing state.
//!
//! Freshness (folded into data quality) is what CDC exists for, and the
//! apply loop must survive mid-run failures without replaying the
//! world, so reliability rides along.

use crate::Scenario;
use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::expr::Expr;
use etl_model::{AggFunc, Attribute, DataType, EtlFlow, OpKind, Operation, Schema};
use poiesis::Objective;
use quality::Characteristic;

/// Schema of the changelog stream.
pub fn events_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("ev_id", DataType::Int),
        Attribute::new("ev_entity_id", DataType::Int),
        Attribute::new("ev_op", DataType::Str),
        Attribute::new("ev_value", DataType::Float),
        Attribute::new("ev_ts", DataType::Timestamp),
    ])
}

/// Schema of the current-state snapshot.
pub fn state_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("cs_entity_id", DataType::Int),
        Attribute::new("cs_value", DataType::Float),
        Attribute::new("cs_updated_ts", DataType::Timestamp),
    ])
}

/// Changelog → sort → delete/upsert router → join to snapshot → drift
/// rollup (12 operators).
pub fn flow() -> EtlFlow {
    let mut f = EtlFlow::new("cdc_upserts");
    let ext_ev = f.add_op(Operation::extract("cdc_events", events_schema()));
    let ext_cs = f.add_op(Operation::extract("current_state", state_schema()));
    let f_ev = f.add_op(
        Operation::filter(
            "FILTER decodable events",
            Expr::col("ev_op")
                .is_not_null()
                .and(Expr::col("ev_ts").is_not_null()),
        )
        .with_selectivity(0.95),
    );
    let sort = f.add_op(Operation::new(
        "SORT by event time",
        OpKind::Sort {
            by: vec!["ev_ts".into()],
        },
    ));
    let router = f.add_op(Operation::new(
        "ROUTE deletes vs upserts",
        OpKind::Router {
            predicate: Expr::col("ev_op").eq(Expr::lit_s("delete")),
        },
    ));
    let d_del = f.add_op(Operation::derive(
        "DERIVE tombstone value",
        vec![("applied_value".to_string(), Expr::lit_f(0.0))],
    ));
    let d_up = f.add_op(Operation::derive(
        "DERIVE upsert value",
        vec![(
            "applied_value".to_string(),
            Expr::col("ev_value").mul(Expr::lit_f(1.0)),
        )],
    ));
    let merge = f.add_op(Operation::new("MERGE applied events", OpKind::Merge));
    let join = f.add_op(Operation::new(
        "JOIN to current state",
        OpKind::Join {
            left_key: "ev_entity_id".into(),
            right_key: "cs_entity_id".into(),
        },
    ));
    let derive = f.add_op(
        Operation::derive(
            "DERIVE drift vs state",
            vec![(
                "drift".to_string(),
                Expr::col("applied_value").sub(Expr::col("cs_value")),
            )],
        )
        .with_cost(0.025),
    );
    let agg = f.add_op(Operation::new(
        "AGGREGATE per entity",
        OpKind::Aggregate {
            group_by: vec!["ev_entity_id".into()],
            aggs: vec![
                ("events".into(), AggFunc::Count, "ev_id".into()),
                ("net_drift".into(), AggFunc::Sum, "drift".into()),
                ("last_event_ts".into(), AggFunc::Max, "ev_ts".into()),
                ("state_ts".into(), AggFunc::Min, "cs_updated_ts".into()),
            ],
        },
    ));
    let load = f.add_op(Operation::load("dw_entities"));

    f.connect(ext_ev, f_ev).unwrap();
    f.connect(f_ev, sort).unwrap();
    f.connect(sort, router).unwrap();
    f.connect_labelled(router, d_del, "delete").unwrap();
    f.connect_labelled(router, d_up, "upsert").unwrap();
    f.connect(d_del, merge).unwrap();
    f.connect(d_up, merge).unwrap();
    f.connect(merge, join).unwrap();
    f.connect(ext_cs, join).unwrap();
    f.connect(join, derive).unwrap();
    f.connect(derive, agg).unwrap();
    f.connect(agg, load).unwrap();
    f
}

/// Changelog at `rows`, snapshot at a third of it.
pub fn catalog(rows: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("cdc_events", events_schema(), rows, "ev_id"),
        dirt,
        seed,
    );
    // the standing snapshot is cleaner and fresher than the stream
    let snapshot_dirt = DirtProfile {
        dup_rate: 0.0,
        staleness_hours: dirt.staleness_hours / 2.0,
        ..*dirt
    };
    c.add_generated(
        &TableSpec::new(
            "current_state",
            state_schema(),
            (rows / 3).max(4),
            "cs_entity_id",
        ),
        &snapshot_dirt,
        seed.wrapping_add(1),
    );
    c
}

/// The registry entry.
pub fn scenario() -> Scenario {
    Scenario {
        name: "cdc_upserts",
        domain: "change-data-capture upsert apply",
        flow_shape: "stream + snapshot → sort → delete/upsert router → join → drift rollup",
        dirt: DirtProfile {
            null_rate: 0.04,
            dup_rate: 0.1,
            corrupt_rate: 0.02,
            staleness_hours: 0.5,
        },
        seed: 0xCDC001,
        depth: 3,
        flow_fn: flow,
        catalog_fn: catalog,
        objective_fn: || {
            Objective::new()
                .weighted(Characteristic::DataQuality, 2.0)
                .weighted(Characteristic::Performance, 1.0)
                .weighted(Characteristic::Reliability, 1.0)
        },
    }
}
