//! ML feature pipeline: join behavioural events to user profiles and
//! compute interaction features — the classic compute-bound feature
//! store refresh whose derives dwarf everything else in the flow.
//!
//! Performance dominates the objective (this is the `ParallelizeTask`
//! showcase); manageability rides along because feature pipelines are
//! edited weekly.

use crate::Scenario;
use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::expr::Expr;
use etl_model::{AggFunc, Attribute, DataType, EtlFlow, OpKind, Operation, Schema};
use poiesis::Objective;
use quality::Characteristic;

/// Schema of the behavioural events source.
pub fn events_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("e_id", DataType::Int),
        Attribute::new("e_user_id", DataType::Int),
        Attribute::new("e_kind", DataType::Str),
        Attribute::new("e_value", DataType::Float),
        Attribute::new("e_ts", DataType::Timestamp),
    ])
}

/// Schema of the user-profile dimension.
pub fn profiles_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("up_user_id", DataType::Int),
        Attribute::new("up_age", DataType::Int),
        Attribute::new("up_segment", DataType::Str),
        Attribute::new("up_score", DataType::Float),
    ])
}

/// Events ⋈ profiles → heavy feature derives → segment rollup
/// (9 operators, derive-dominated cost profile).
pub fn flow() -> EtlFlow {
    let mut f = EtlFlow::new("ml_features");
    let ext_e = f.add_op(Operation::extract("feature_events", events_schema()));
    let ext_p = f.add_op(Operation::extract("user_profiles", profiles_schema()));
    let f_e = f.add_op(
        Operation::filter(
            "FILTER typed events",
            Expr::col("e_kind")
                .is_not_null()
                .and(Expr::col("e_ts").is_not_null()),
        )
        .with_selectivity(0.92),
    );
    let join = f.add_op(Operation::new(
        "JOIN user profiles",
        OpKind::Join {
            left_key: "e_user_id".into(),
            right_key: "up_user_id".into(),
        },
    ));
    let conv = f.add_op(Operation::new(
        "CONVERT age to float",
        OpKind::Convert {
            column: "up_age".into(),
            to: DataType::Float,
        },
    ));
    let d_feat = f.add_op(
        Operation::derive(
            "DERIVE interaction features",
            vec![
                (
                    "affinity".to_string(),
                    Expr::col("e_value").mul(Expr::col("up_score")),
                ),
                (
                    "value_per_year".to_string(),
                    Expr::col("e_value").div(Expr::col("up_age").add(Expr::lit_f(1.0))),
                ),
            ],
        )
        .with_cost(0.070),
    );
    let d_decay = f.add_op(
        Operation::derive(
            "DERIVE decayed affinity",
            vec![(
                "decayed".to_string(),
                Expr::col("affinity").mul(Expr::lit_f(0.97)),
            )],
        )
        .with_cost(0.020),
    );
    let agg = f.add_op(Operation::new(
        "AGGREGATE per segment and kind",
        OpKind::Aggregate {
            group_by: vec!["up_segment".into(), "e_kind".into()],
            aggs: vec![
                ("avg_affinity".into(), AggFunc::Avg, "affinity".into()),
                (
                    "avg_value_per_year".into(),
                    AggFunc::Avg,
                    "value_per_year".into(),
                ),
                ("decayed_sum".into(), AggFunc::Sum, "decayed".into()),
                ("events".into(), AggFunc::Count, "e_id".into()),
            ],
        },
    ));
    let load = f.add_op(Operation::load("ml_feature_store"));

    f.connect(ext_e, f_e).unwrap();
    f.connect(f_e, join).unwrap();
    f.connect(ext_p, join).unwrap();
    f.connect(join, conv).unwrap();
    f.connect(conv, d_feat).unwrap();
    f.connect(d_feat, d_decay).unwrap();
    f.connect(d_decay, agg).unwrap();
    f.connect(agg, load).unwrap();
    f
}

/// Events at `rows`, profiles at a quarter of it.
pub fn catalog(rows: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("feature_events", events_schema(), rows, "e_id"),
        dirt,
        seed,
    );
    c.add_generated(
        &TableSpec::new(
            "user_profiles",
            profiles_schema(),
            (rows / 4).max(4),
            "up_user_id",
        ),
        dirt,
        seed.wrapping_add(1),
    );
    c
}

/// The registry entry.
pub fn scenario() -> Scenario {
    Scenario {
        name: "ml_features",
        domain: "ML feature-store refresh (compute-bound)",
        flow_shape: "events ⋈ profiles → heavy feature derives → segment rollup",
        dirt: DirtProfile {
            null_rate: 0.05,
            dup_rate: 0.02,
            corrupt_rate: 0.03,
            staleness_hours: 6.0,
        },
        seed: 0x31F347,
        depth: 3,
        flow_fn: flow,
        catalog_fn: catalog,
        objective_fn: || {
            Objective::new()
                .weighted(Characteristic::Performance, 2.0)
                .weighted(Characteristic::Reliability, 1.0)
                .weighted(Characteristic::Manageability, 1.0)
        },
    }
}
