//! Log compaction: boil a noisy, heavily duplicated application log
//! down to a per-service digest with storage-cost accounting.
//!
//! A pure linear pipeline — the structural opposite of the join-heavy
//! scenarios — optimised for cost: the point of compaction is paying
//! less to keep the data.

use crate::Scenario;
use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::expr::Expr;
use etl_model::{AggFunc, Attribute, DataType, EtlFlow, OpKind, Operation, Schema};
use poiesis::Objective;
use quality::Characteristic;

/// Schema of the raw application log.
pub fn logs_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("lg_id", DataType::Int),
        Attribute::new("lg_service", DataType::Str),
        Attribute::new("lg_level", DataType::Str),
        Attribute::new("lg_msg", DataType::Str),
        Attribute::new("lg_bytes", DataType::Int),
        Attribute::new("lg_ts", DataType::Timestamp),
    ])
}

/// Log → noise filter → sort → compact → cost derive → digest rollup
/// (9 operators, strictly linear).
pub fn flow() -> EtlFlow {
    let mut f = EtlFlow::new("log_compaction");
    let ext = f.add_op(Operation::extract("app_logs", logs_schema()));
    let f_noise = f.add_op(
        Operation::filter(
            "FILTER debug noise",
            Expr::col("lg_level").ne(Expr::lit_s("debug")),
        )
        .with_selectivity(0.6),
    );
    let sort = f.add_op(Operation::new(
        "SORT newest first",
        OpKind::Sort {
            by: vec!["lg_ts".into()],
        },
    ));
    let dedup = f.add_op(Operation::new(
        "DEDUP repeated messages",
        OpKind::Dedup {
            keys: vec!["lg_service".into(), "lg_msg".into()],
        },
    ));
    let conv = f.add_op(Operation::new(
        "CONVERT bytes to float",
        OpKind::Convert {
            column: "lg_bytes".into(),
            to: DataType::Float,
        },
    ));
    let derive = f.add_op(
        Operation::derive(
            "DERIVE storage cost",
            vec![(
                "cost_usd".to_string(),
                Expr::col("lg_bytes").mul(Expr::lit_f(0.0000002)),
            )],
        )
        .with_cost(0.030),
    );
    let agg = f.add_op(Operation::new(
        "AGGREGATE per service level",
        OpKind::Aggregate {
            group_by: vec!["lg_service".into(), "lg_level".into()],
            aggs: vec![
                ("entries".into(), AggFunc::Count, "lg_id".into()),
                ("bytes_total".into(), AggFunc::Sum, "lg_bytes".into()),
                ("cost_total".into(), AggFunc::Sum, "cost_usd".into()),
                ("latest".into(), AggFunc::Max, "lg_ts".into()),
            ],
        },
    ));
    let load = f.add_op(Operation::load("dw_log_digest"));

    f.connect(ext, f_noise).unwrap();
    f.connect(f_noise, sort).unwrap();
    f.connect(sort, dedup).unwrap();
    f.connect(dedup, conv).unwrap();
    f.connect(conv, derive).unwrap();
    f.connect(derive, agg).unwrap();
    f.connect(agg, load).unwrap();
    f
}

/// One log table.
pub fn catalog(rows: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("app_logs", logs_schema(), rows, "lg_id"),
        dirt,
        seed,
    );
    c
}

/// The registry entry.
pub fn scenario() -> Scenario {
    Scenario {
        name: "log_compaction",
        domain: "application-log compaction and cost accounting",
        flow_shape: "log → noise filter → sort → dedup → cost derive → service digest (linear)",
        dirt: DirtProfile {
            null_rate: 0.05,
            dup_rate: 0.25,
            corrupt_rate: 0.12,
            staleness_hours: 1.0,
        },
        seed: 0x106C0,
        depth: 2,
        flow_fn: flow,
        catalog_fn: catalog,
        objective_fn: || {
            Objective::new()
                .weighted(Characteristic::Cost, 2.0)
                .weighted(Characteristic::Performance, 1.0)
                .weighted(Characteristic::Manageability, 1.0)
        },
    }
}
