//! The domain catalog, one module per scenario.
//!
//! Every module exposes `scenario() -> Scenario` plus the flow/catalog
//! builders it is made of. Flows follow the same discipline as the
//! `datagen` demo workloads — deterministic construction, meaningful
//! selectivities/costs on the hot operators so the pattern palette has
//! targets — and must stay clean under `poiesis_lint --deny-warn`
//! (no dead fields, no type warnings), which CI enforces for every
//! entry here.

pub mod cdc;
pub mod clickstream;
pub mod finance;
pub mod healthcare;
pub mod inventory;
pub mod logs;
pub mod ml;
pub mod telemetry;
