//! Inventory sync: compare store-front stock levels against warehouse
//! counts, route shortages to a replenishment plan, and roll the result
//! up per site pair.
//!
//! Disagreeing counts are the domain's daily reality, so data quality
//! and reliability weigh equally — a half-applied sync is worse than a
//! late one.

use crate::Scenario;
use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::expr::Expr;
use etl_model::{AggFunc, Attribute, DataType, EtlFlow, OpKind, Operation, Schema};
use poiesis::Objective;
use quality::Characteristic;

/// Schema of the store-front inventory source.
pub fn store_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("si_sku", DataType::Int),
        Attribute::new("si_qty", DataType::Int),
        Attribute::new("si_site", DataType::Str),
        Attribute::new("si_updated", DataType::Timestamp),
    ])
}

/// Schema of the warehouse inventory source.
pub fn warehouse_schema() -> Schema {
    Schema::new(vec![
        Attribute::required("wh_sku", DataType::Int),
        Attribute::new("wh_qty", DataType::Int),
        Attribute::new("wh_site", DataType::Str),
        Attribute::new("wh_updated", DataType::Timestamp),
    ])
}

/// Store ⋈ warehouse → gap derive → shortage router → replenishment
/// rollup (12 operators).
pub fn flow() -> EtlFlow {
    let mut f = EtlFlow::new("inventory_sync");
    let ext_si = f.add_op(Operation::extract("store_inventory", store_schema()));
    let ext_wh = f.add_op(Operation::extract(
        "warehouse_inventory",
        warehouse_schema(),
    ));
    let join = f.add_op(Operation::new(
        "JOIN store to warehouse",
        OpKind::Join {
            left_key: "si_sku".into(),
            right_key: "wh_sku".into(),
        },
    ));
    let f_fresh = f.add_op(
        Operation::filter(
            "FILTER fresh counts",
            Expr::col("si_updated")
                .is_not_null()
                .and(Expr::col("wh_updated").is_not_null()),
        )
        .with_selectivity(0.88),
    );
    let d_gap = f.add_op(
        Operation::derive(
            "DERIVE stock gap",
            vec![(
                "gap".to_string(),
                Expr::col("si_qty").sub(Expr::col("wh_qty")),
            )],
        )
        .with_cost(0.025),
    );
    let router = f.add_op(Operation::new(
        "ROUTE shortages",
        OpKind::Router {
            predicate: Expr::col("gap").lt(Expr::lit_i(0)),
        },
    ));
    let d_short = f.add_op(Operation::derive(
        "DERIVE restock units",
        vec![("restock".to_string(), Expr::col("gap").mul(Expr::lit_i(-1)))],
    ));
    let d_ok = f.add_op(Operation::derive(
        "DERIVE no restock",
        vec![("restock".to_string(), Expr::lit_i(0))],
    ));
    let merge = f.add_op(Operation::new("MERGE replenishment plan", OpKind::Merge));
    let agg = f.add_op(Operation::new(
        "AGGREGATE per site pair",
        OpKind::Aggregate {
            group_by: vec!["si_site".into(), "wh_site".into()],
            aggs: vec![
                ("restock_units".into(), AggFunc::Sum, "restock".into()),
                ("skus".into(), AggFunc::Count, "si_sku".into()),
                ("avg_gap".into(), AggFunc::Avg, "gap".into()),
            ],
        },
    ));
    let load = f.add_op(Operation::load("dw_replenishment"));

    f.connect(ext_si, join).unwrap();
    f.connect(ext_wh, join).unwrap();
    f.connect(join, f_fresh).unwrap();
    f.connect(f_fresh, d_gap).unwrap();
    f.connect(d_gap, router).unwrap();
    f.connect_labelled(router, d_short, "shortage").unwrap();
    f.connect_labelled(router, d_ok, "stocked").unwrap();
    f.connect(d_short, merge).unwrap();
    f.connect(d_ok, merge).unwrap();
    f.connect(merge, agg).unwrap();
    f.connect(agg, load).unwrap();
    f
}

/// Store and warehouse inventories at matching scale.
pub fn catalog(rows: usize, dirt: &DirtProfile, seed: u64) -> Catalog {
    let mut c = Catalog::new();
    c.add_generated(
        &TableSpec::new("store_inventory", store_schema(), rows, "si_sku"),
        dirt,
        seed,
    );
    c.add_generated(
        &TableSpec::new("warehouse_inventory", warehouse_schema(), rows, "wh_sku"),
        dirt,
        seed.wrapping_add(1),
    );
    c
}

/// The registry entry.
pub fn scenario() -> Scenario {
    Scenario {
        name: "inventory_sync",
        domain: "store/warehouse inventory reconciliation",
        flow_shape: "2 inventories → join → gap derive → shortage router → site rollup",
        dirt: DirtProfile {
            null_rate: 0.09,
            dup_rate: 0.04,
            corrupt_rate: 0.06,
            staleness_hours: 24.0,
        },
        seed: 0x1A57C0,
        depth: 3,
        flow_fn: flow,
        catalog_fn: catalog,
        objective_fn: || {
            Objective::new()
                .weighted(Characteristic::DataQuality, 1.5)
                .weighted(Characteristic::Reliability, 1.5)
                .weighted(Characteristic::Performance, 1.0)
        },
    }
}
