//! The deterministic sweep runner: one pinned planner configuration
//! shared by the `bench_scenarios` bin, the golden-frontier tests and
//! the CI gate, so all three measure *the same cells*.
//!
//! Determinism contract: `workers = 1` (score arithmetic happens in
//! enumeration order), fixed catalog seeds (per scenario), fixed planner
//! seed, and `retain_dominated = false` (the frontier is the output).
//! Under that configuration two runs of [`run_cell`] produce
//! bit-identical frontiers — asserted by the proptests and by the sweep
//! bin running every cell twice.

use crate::digest::frontier_digest;
use crate::Scenario;
use fcp::DeploymentPolicy;
use poiesis::{Planner, PlannerConfig, PlannerOutcome, SearchStrategyKind};
use std::time::Instant;

/// Planner seed shared by every cell (catalog seeds vary per scenario).
pub const PLANNER_SEED: u64 = 0x5CE4A210;

/// Sweep scale: catalog rows per base table and the enumeration budget.
#[derive(Debug, Clone, Copy)]
pub struct SweepScale {
    /// Rows per base source table.
    pub rows: usize,
    /// Hard cap on enumerated combinations per cell.
    pub budget: usize,
    /// Label recorded in the emitted JSON (`tiny` / `full`).
    pub label: &'static str,
}

impl SweepScale {
    /// CI scale: seconds for the whole grid.
    pub fn tiny() -> Self {
        SweepScale {
            rows: 24,
            budget: 400,
            label: "tiny",
        }
    }

    /// Committed-trajectory scale (regenerate with `bench_scenarios`).
    pub fn full() -> Self {
        SweepScale {
            rows: 96,
            budget: 4000,
            label: "full",
        }
    }
}

/// The strategy axis of the grid, in column order.
pub fn strategies() -> [SearchStrategyKind; 3] {
    [
        SearchStrategyKind::Exhaustive,
        SearchStrategyKind::Beam { width: 32 },
        SearchStrategyKind::GreedyHillClimb,
    ]
}

/// One completed cell: the planner outcome, its wall time and the
/// frontier digest.
pub struct CellRun {
    /// The planning outcome (frontier, counters, stats).
    pub outcome: PlannerOutcome,
    /// Wall-clock seconds of the planning cycle.
    pub secs: f64,
    /// [`frontier_digest`] of the outcome.
    pub digest: String,
}

/// Runs one (scenario × strategy) cell at the given scale.
pub fn run_cell(s: &Scenario, strategy: SearchStrategyKind, scale: &SweepScale) -> CellRun {
    let policy = DeploymentPolicy {
        top_k_points_per_pattern: usize::MAX,
        min_fitness: 0.0,
        ..DeploymentPolicy::exhaustive(s.depth)
    };
    let config = PlannerConfig {
        policy,
        strategy,
        workers: 1,
        max_alternatives: scale.budget,
        retain_dominated: false,
        objective: s.objective(),
        seed: PLANNER_SEED,
        ..PlannerConfig::default()
    };
    let catalog = s.catalog(scale.rows);
    let registry = fcp::PatternRegistry::standard_for_catalog(&catalog);
    let planner = Planner::new(s.flow(), catalog, registry, config);
    let t = Instant::now();
    let outcome = planner.plan().expect("scenario planning cycle");
    let secs = t.elapsed().as_secs_f64();
    let digest = frontier_digest(&outcome);
    CellRun {
        outcome,
        secs,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cell_produces_a_nonempty_deterministic_frontier() {
        let s = crate::get("log_compaction").unwrap();
        let scale = SweepScale::tiny();
        let a = run_cell(&s, SearchStrategyKind::Exhaustive, &scale);
        let b = run_cell(&s, SearchStrategyKind::Exhaustive, &scale);
        assert!(!a.outcome.skyline.is_empty(), "empty frontier");
        assert_eq!(a.digest, b.digest, "same cell, different frontier bits");
    }
}
