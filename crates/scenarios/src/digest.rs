//! Bit-exact frontier identity: canonical lines + FNV-1a digest.
//!
//! The regression contract of the sweep harness is that a (scenario ×
//! strategy) cell produces *the same frontier, to the bit*, on every
//! run of the same engine version. Names alone are not enough — a
//! measure-estimation change that keeps names but moves values must
//! trip the gate — so the canonical form couples each skyline member's
//! name with the raw IEEE-754 bit pattern of every measure. The digest
//! is FNV-1a 64 over the canonical lines; the lines themselves are kept
//! around for diff-style golden-test failure messages.

use poiesis::PlannerOutcome;

/// One canonical line per skyline member, sorted: the member's name
/// followed by `measure_key=<16-hex f64 bits>` pairs in vector order.
pub fn frontier_lines(outcome: &PlannerOutcome) -> Vec<String> {
    let mut lines: Vec<String> = outcome
        .skyline
        .iter()
        .map(|&i| {
            let alt = &outcome.alternatives[i];
            let mut line = alt.name.clone();
            for (id, v) in alt.measures.iter() {
                line.push_str(&format!(" {}={:016x}", id.key(), v.to_bits()));
            }
            line
        })
        .collect();
    lines.sort_unstable();
    lines
}

/// FNV-1a 64 digest of the canonical frontier lines, as 16 hex digits.
pub fn frontier_digest(outcome: &PlannerOutcome) -> String {
    digest_lines(&frontier_lines(outcome))
}

/// Digests pre-computed canonical lines (used by the golden tests to
/// check stored lines agree with their stored digest).
pub fn digest_lines(lines: &[String]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for b in line.bytes().chain(std::iter::once(b'\n')) {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_line_sensitive() {
        let a = digest_lines(&["alt_a x=0000000000000000".into()]);
        let b = digest_lines(&["alt_a x=0000000000000001".into()]);
        assert_eq!(a, digest_lines(&["alt_a x=0000000000000000".into()]));
        assert_ne!(a, b, "a one-bit measure change must change the digest");
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn empty_frontier_digests_to_the_fnv_offset() {
        assert_eq!(
            digest_lines(&[]),
            format!("{:016x}", 0xcbf2_9ce4_8422_2325u64)
        );
    }
}
