//! `scenarios` — the domain scenario corpus behind the deterministic
//! sweep harness.
//!
//! The paper validated QoX-driven planning on a fleet-scale sweep of
//! flows × objectives; this crate is the repo's equivalent of that
//! corpus. Each [`Scenario`] is one realistic ETL domain — finance
//! reconciliation, IoT dedup, CDC upserts, … — packaged as a
//! deterministic seeded flow template, a [`DirtProfile`] matching how
//! that domain's data actually misbehaves, and an [`Objective`] preset
//! encoding what that domain optimises for. One engine serves all of
//! them: the server exposes every entry as `--catalog scenario:<name>`,
//! `poiesis_lint` lints the base flows, and the `bench_scenarios` sweep
//! bin runs the full catalog × strategy grid with golden-frontier
//! regression tracking (see `docs/SCENARIOS.md`).
//!
//! Everything here is deterministic: flows are built the same way every
//! time, catalogs are generated from fixed per-scenario seeds, and the
//! sweep runner ([`sweep`]) pins worker count and planner configuration
//! so two runs of the same cell produce bit-identical frontiers — the
//! property the golden tests and the CI sweep gate both verify through
//! [`digest::frontier_digest`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
mod domains;
pub mod sweep;

use datagen::{Catalog, DirtProfile};
use etl_model::EtlFlow;
use poiesis::Objective;

/// One domain scenario: a seeded flow template, its dirt profile and the
/// objective preset the domain plans against.
#[derive(Clone)]
pub struct Scenario {
    /// Registry key, used in `scenario:<name>` specs.
    pub name: &'static str,
    /// One-line description of the domain.
    pub domain: &'static str,
    /// Short description of the flow topology (for the catalog table).
    pub flow_shape: &'static str,
    /// How this domain's source data misbehaves.
    pub dirt: DirtProfile,
    /// Fixed catalog-generation seed (deterministic per scenario).
    pub seed: u64,
    /// Combination depth the sweep explores this scenario at.
    pub depth: usize,
    flow_fn: fn() -> EtlFlow,
    catalog_fn: fn(usize, &DirtProfile, u64) -> Catalog,
    objective_fn: fn() -> Objective,
}

impl Scenario {
    /// Builds the scenario's base flow (identical on every call).
    pub fn flow(&self) -> EtlFlow {
        (self.flow_fn)()
    }

    /// Generates the scenario's source catalog at `rows` rows per base
    /// table, from the scenario's fixed dirt profile and seed.
    pub fn catalog(&self, rows: usize) -> Catalog {
        (self.catalog_fn)(rows, &self.dirt, self.seed)
    }

    /// The domain's objective preset.
    pub fn objective(&self) -> Objective {
        (self.objective_fn)()
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("domain", &self.domain)
            .field("seed", &self.seed)
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

/// The full catalog, in registry order (stable: sweep output, golden
/// files and docs all list scenarios in this order).
pub fn all() -> Vec<Scenario> {
    vec![
        domains::finance::scenario(),
        domains::telemetry::scenario(),
        domains::cdc::scenario(),
        domains::ml::scenario(),
        domains::clickstream::scenario(),
        domains::inventory::scenario(),
        domains::healthcare::scenario(),
        domains::logs::scenario(),
    ]
}

/// Registry keys, in catalog order.
pub fn names() -> Vec<&'static str> {
    all().into_iter().map(|s| s.name).collect()
}

/// Looks a scenario up by registry key.
pub fn get(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_at_least_eight_scenarios_with_unique_names() {
        let names = names();
        assert!(names.len() >= 8, "corpus shrank to {}", names.len());
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
    }

    #[test]
    fn every_flow_validates_and_every_catalog_covers_its_extracts() {
        for s in all() {
            let flow = s.flow();
            flow.validate()
                .unwrap_or_else(|e| panic!("{}: invalid base flow: {e}", s.name));
            let catalog = s.catalog(16);
            for n in flow.ops_of_kind("extract") {
                let etl_model::OpKind::Extract { source, .. } = &flow.op(n).unwrap().kind else {
                    unreachable!();
                };
                assert!(
                    catalog.table(source).is_some(),
                    "{}: extract `{source}` missing from catalog",
                    s.name
                );
            }
            assert!(s.dirt.is_valid(), "{}: invalid dirt profile", s.name);
            s.objective()
                .validate()
                .unwrap_or_else(|e| panic!("{}: invalid objective: {e}", s.name));
            assert!((2..=3).contains(&s.depth), "{}: odd depth", s.name);
        }
    }

    #[test]
    fn flows_are_deterministic_across_builds() {
        for s in all() {
            assert_eq!(
                format!("{:?}", s.flow().graph),
                format!("{:?}", s.flow().graph),
                "{}: flow template not deterministic",
                s.name
            );
        }
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for name in names() {
            assert_eq!(get(name).unwrap().name, name);
        }
        assert!(get("no_such_scenario").is_none());
    }
}
