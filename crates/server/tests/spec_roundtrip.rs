//! Property: every `scenario:<name>:rows` spec round-trips through
//! `SessionTemplate::from_spec` — the template's label is exactly the
//! spec that was asked for, so feeding a template's label back into
//! `from_spec` reproduces an equivalent template.

use poiesis_server::SessionTemplate;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn scenario_specs_round_trip_through_from_spec(
        scenario_idx in 0usize..8,
        rows in 1usize..400,
    ) {
        let name = scenarios::names()[scenario_idx];
        let spec = format!("scenario:{name}:{rows}");
        let t = SessionTemplate::from_spec(&spec).unwrap();
        prop_assert_eq!(&t.label, &spec);

        // the label itself is a valid spec that resolves to the same cell
        let again = SessionTemplate::from_spec(&t.label).unwrap();
        prop_assert_eq!(&again.label, &t.label);
    }

    #[test]
    fn rowless_scenario_specs_default_to_200(scenario_idx in 0usize..8) {
        let name = scenarios::names()[scenario_idx];
        let t = SessionTemplate::from_spec(&format!("scenario:{name}")).unwrap();
        prop_assert_eq!(t.label, format!("scenario:{name}:200"));
    }
}
