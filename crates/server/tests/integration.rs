//! Integration tests driving a live `poiesis_server` socket.
//!
//! These are the acceptance tests of the wire contract: a full
//! create → explore → select → history → close round-trip, ≥ 8 concurrent
//! client threads, equality of the HTTP-obtained skyline with the
//! in-process facade skyline, graceful shutdown, the documented
//! behaviour for malformed wire input (truncated requests, bad JSON,
//! unknown handles, oversized payloads), `503` load shedding under
//! saturated workers, `/metrics` content, and kill-and-restart session
//! recovery through `--state-dir` persistence.

use poiesis::{FromJson, PlanRequest, PlanResponse, SessionManager, ToJson};
use poiesis_server::{
    Client, ClientError, Limits, PlanningService, Server, ServerConfig, SessionTemplate, StateStore,
};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

const ROWS: usize = 80;

/// Spins up a server on an OS-assigned port.
fn spawn_server(
    config: ServerConfig,
) -> (
    SocketAddr,
    poiesis_server::ShutdownHandle,
    thread::JoinHandle<std::io::Result<usize>>,
) {
    let service = PlanningService::new(SessionTemplate::demo(ROWS));
    let server = Server::bind("127.0.0.1:0", service, config).expect("bind");
    server.spawn().expect("spawn")
}

/// A small budget keeps each planning cycle fast while still producing a
/// multi-design frontier.
fn small_request() -> PlanRequest {
    PlanRequest {
        budget: 200,
        ..PlanRequest::default()
    }
}

#[test]
fn full_lifecycle_round_trip_over_a_real_socket() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    assert_eq!(client.healthz().unwrap(), 0);
    let id = client.create(Some(&small_request())).unwrap();
    assert_eq!(client.healthz().unwrap(), 1);

    let frontier = client.explore(id).unwrap();
    assert_eq!(frontier.session, Some(id));
    assert!(!frontier.skyline.is_empty());
    assert!(!frontier.axes.is_empty());

    let record = client.select(id, 0).unwrap();
    assert_eq!(record.cycle, 1);
    assert_eq!(record.selected, frontier.skyline[0].name);

    let lint = client.lint(id).unwrap();
    assert_eq!(lint.session, Some(id));
    assert!(
        lint.ok(),
        "the demo flow must lint clean: {:?}",
        lint.diagnostics
    );

    let history = client.history(id).unwrap();
    assert_eq!(history, vec![record]);

    client.close(id).unwrap();
    assert_eq!(client.healthz().unwrap(), 0);
    match client.explore(id) {
        Err(ClientError::Api {
            status: 404, code, ..
        }) => {
            assert_eq!(code, "unknown_session")
        }
        other => panic!("expected 404 on a closed session, got {other:?}"),
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn http_skyline_equals_the_in_process_facade_skyline() {
    // the same template, request and manager path as the server uses…
    let template = SessionTemplate::demo(ROWS);
    let request = small_request();
    let manager = SessionManager::new();
    let id = manager
        .create_from_request(template.builder(), &request)
        .unwrap();
    let in_process = manager.explore(id).unwrap();

    // …versus one round over the wire
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let remote_id = client.create(Some(&request)).unwrap();
    let over_http = client.explore(remote_id).unwrap();

    assert_eq!(over_http.axes, in_process.axes);
    assert_eq!(over_http.baseline, in_process.baseline);
    assert_eq!(over_http.skyline, in_process.skyline);
    assert_eq!(over_http.alternatives, in_process.alternatives);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn eight_concurrent_clients_run_independent_sessions() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());

    let workers: Vec<_> = (0..8)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let id = client.create(Some(&small_request())).unwrap();
                let frontier = client.explore(id).unwrap();
                assert!(!frontier.skyline.is_empty());
                let record = client.select(id, 0).unwrap();
                assert_eq!(record.cycle, 1);
                assert_eq!(client.history(id).unwrap().len(), 1);
                client.close(id).unwrap();
                id
            })
        })
        .collect();

    let mut ids: Vec<u64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    // every thread got its own session handle
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 8);

    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.healthz().unwrap(), 0);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn graceful_shutdown_over_the_wire() {
    let (addr, _handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown_server().unwrap();
    // run() returns, draining the workers
    join.join().unwrap().unwrap();
    // …and the port stops accepting new work
    thread::sleep(Duration::from_millis(50));
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        // the OS may still complete the handshake on a closed listener's
        // backlog; a read then sees EOF
        Ok(mut stream) => {
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            let mut buf = [0u8; 1];
            matches!(stream.read(&mut buf), Ok(0) | Err(_))
        }
    };
    assert!(refused, "server still serving after shutdown");
}

// ---------------------------------------------------------------- hostile

/// Raw socket for bytes the [`Client`] refuses to produce.
fn raw(addr: SocketAddr, bytes: &[u8], half_close: bool) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    stream.write_all(bytes).expect("write");
    if half_close {
        stream.shutdown(Shutdown::Write).expect("half-close");
    }
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {response:?}"))
}

#[test]
fn truncated_requests_get_400_not_a_hung_worker() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });

    // body shorter than its declared Content-Length, then half-close
    let response = raw(
        addr,
        b"POST /sessions HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort",
        true,
    );
    assert_eq!(status_of(&response), 400);
    assert!(response.contains("bad_request"), "{response}");

    // head cut off mid-line
    let response = raw(addr, b"POST /sess", true);
    assert_eq!(status_of(&response), 400);

    // a stalled peer that never finishes its body trips the read timeout
    let response = raw(
        addr,
        b"POST /sessions HTTP/1.1\r\nContent-Length: 10\r\n\r\n",
        false,
    );
    assert_eq!(status_of(&response), 408);
    assert!(response.contains("timeout"), "{response}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn garbage_request_lines_get_400() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    for bad in [
        "GARBAGE\r\n\r\n",
        "GET / FTP/1.0\r\n\r\n",
        "GET /healthz HTTP/1.1\r\nbroken header\r\n\r\n",
    ] {
        let response = raw(addr, bad.as_bytes(), true);
        assert_eq!(status_of(&response), 400, "for {bad:?}");
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn bad_json_bodies_get_400_with_the_documented_code() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    let response = client
        .request("POST", "/sessions", Some("{not json"))
        .unwrap();
    assert_eq!(response.status, 400);
    assert!(response.body.contains("\"malformed\""), "{}", response.body);

    // a syntactically-valid body with the wrong shape
    let response = client
        .request("POST", "/sessions", Some("{\"budget\":\"lots\"}"))
        .unwrap();
    assert_eq!(response.status, 400);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn unknown_session_ids_get_404_everywhere() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    for (method, path) in [
        ("POST", "/sessions/999/explore"),
        ("POST", "/sessions/999/select"),
        ("GET", "/sessions/999/history"),
        ("DELETE", "/sessions/999"),
    ] {
        let body = if path.ends_with("select") {
            Some("{\"rank\":0}")
        } else {
            None
        };
        let response = client.request(method, path, body).unwrap();
        assert_eq!(response.status, 404, "{method} {path}: {}", response.body);
        assert!(
            response.body.contains("unknown_session"),
            "{method} {path}: {}",
            response.body
        );
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn oversized_payloads_get_413() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        limits: Limits {
            max_body_bytes: 512,
            ..Limits::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let huge = "x".repeat(600);
    let response = client.request("POST", "/sessions", Some(&huge)).unwrap();
    assert_eq!(response.status, 413);
    assert!(
        response.body.contains("payload_too_large"),
        "{}",
        response.body
    );

    // an honest request the default PlanRequest fits in still works: the
    // cap applies per request, not per connection
    let mut client = Client::connect(addr).expect("reconnect");
    let body = PlanRequest::default().to_json_string();
    assert!(body.len() < 512, "test premise: default request fits");
    let response = client.request("POST", "/sessions", Some(&body)).unwrap();
    assert_eq!(response.status, 201, "{}", response.body);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn oversized_heads_get_431() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        limits: Limits {
            max_head_bytes: 256,
            ..Limits::default()
        },
        ..ServerConfig::default()
    });
    let request = format!(
        "GET /healthz HTTP/1.1\r\nX-Padding: {}\r\n\r\n",
        "p".repeat(500)
    );
    let response = raw(addr, request.as_bytes(), true);
    assert_eq!(status_of(&response), 431);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn keep_alive_reuses_one_connection_for_a_whole_session() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    // the typed client never reconnects: if keep-alive were broken, the
    // second call on the same socket would fail
    let mut client = Client::connect(addr).expect("connect");
    let id = client.create(Some(&small_request())).unwrap();
    let frontier = client.explore(id).unwrap();
    let via_dto = PlanResponse::from_json_str(&frontier.to_json_string()).unwrap();
    assert_eq!(via_dto, frontier);
    client.close(id).unwrap();
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn sessions_list_tracks_creation_and_closure() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let a = client.create(Some(&small_request())).unwrap();
    let b = client.create(Some(&small_request())).unwrap();
    let listed = client.request("GET", "/sessions", None).unwrap();
    assert_eq!(listed.status, 200);
    assert!(listed.body.contains(&format!("{a}")), "{}", listed.body);
    assert!(listed.body.contains(&format!("{b}")), "{}", listed.body);
    client.close(a).unwrap();
    client.close(b).unwrap();
    handle.shutdown();
    join.join().unwrap().unwrap();
}

// ------------------------------------------------------------ hardening

#[test]
fn metrics_scrape_reflects_a_scripted_session() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let id = client.create(Some(&small_request())).unwrap();
    client.explore(id).unwrap();
    client.select(id, 0).unwrap();

    let text = client.metrics().unwrap();
    // route/status counters for exactly what this test did
    for needle in [
        "poiesis_http_requests_total{route=\"session_create\",status=\"201\"} 1",
        "poiesis_http_requests_total{route=\"explore\",status=\"200\"} 1",
        "poiesis_http_requests_total{route=\"select\",status=\"200\"} 1",
        "poiesis_cycle_duration_seconds_count 1",
        "poiesis_sessions_live 1",
        "poiesis_http_connections_total 1",
        "poiesis_http_shed_total 0",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    // the gauge tracks closure, and the typed scraper agrees with the text
    client.close(id).unwrap();
    assert_eq!(client.metric_value("poiesis_sessions_live").unwrap(), 0.0);
    assert!(
        client
            .metric_value("poiesis_http_requests_total{route=\"close\",status=\"200\"}")
            .unwrap()
            >= 1.0
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn saturated_workers_shed_with_503_and_retry_after() {
    // one worker, rendezvous queue: a connection is either handed to the
    // idle worker on the spot or shed
    let (addr, handle, join) = spawn_server(ServerConfig {
        threads: 1,
        queue: 0,
        retry_after: Duration::from_secs(2),
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });

    // the stalled-handler fixture: a peer that connects and sends nothing
    // pins the only worker until the read timeout
    let stall = TcpStream::connect(addr).expect("stall connect");
    thread::sleep(Duration::from_millis(300));

    // the next connection finds no idle worker and no queue slot
    let response = raw(addr, b"GET /healthz HTTP/1.1\r\n\r\n", true);
    assert_eq!(status_of(&response), 503, "{response}");
    assert!(response.contains("Retry-After: 2\r\n"), "{response}");
    assert!(response.contains("\"overloaded\""), "{response}");

    // once the stalled peer is timed out the worker frees up again and
    // the shed is visible on /metrics
    drop(stall);
    thread::sleep(Duration::from_millis(2200));
    let mut client = Client::connect(addr).expect("connect after drain");
    assert!(client.metric_value("poiesis_http_shed_total").unwrap() >= 1.0);
    assert_eq!(client.healthz().unwrap(), 0);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// A scratch `--state-dir` that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("poiesis-it-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Spins up a server whose service persists to `dir`.
fn spawn_persistent_server(
    dir: &PathBuf,
) -> (
    SocketAddr,
    poiesis_server::ShutdownHandle,
    thread::JoinHandle<std::io::Result<usize>>,
) {
    let service = PlanningService::new(SessionTemplate::demo(ROWS))
        .with_store(StateStore::open(dir).expect("open state dir"))
        .expect("load state");
    let server = Server::bind("127.0.0.1:0", service, ServerConfig::default()).expect("bind");
    server.spawn().expect("spawn")
}

#[test]
fn a_killed_server_resumes_sessions_from_its_state_dir() {
    let scratch = Scratch::new("restart");

    // ----- incarnation 1: advance a session one full cycle, then explore
    let (id, history_before, frontier_before) = {
        let (addr, handle, join) = spawn_persistent_server(&scratch.0);
        let mut client = Client::connect(addr).expect("connect");
        let id = client.create(Some(&small_request())).unwrap();
        client.explore(id).unwrap();
        client.select(id, 0).unwrap();
        let history = client.history(id).unwrap();
        let frontier = client.explore(id).unwrap();
        // stop without closing the session — the moral equivalent of a
        // kill: the snapshot only ever reflects completed mutations
        handle.shutdown();
        join.join().unwrap().unwrap();
        (id, history, frontier)
    };
    assert!(scratch.0.join("sessions.json").exists());

    // ----- incarnation 2: same state dir, fresh process state
    let (addr, handle, join) = spawn_persistent_server(&scratch.0);
    let mut client = Client::connect(addr).expect("reconnect");
    assert_eq!(client.healthz().unwrap(), 1, "session must survive restart");

    // history is intact and the recovered skyline equals the pre-kill one
    assert_eq!(client.history(id).unwrap(), history_before);
    let frontier_after = client.explore(id).unwrap();
    assert_eq!(frontier_after.skyline, frontier_before.skyline);
    assert_eq!(frontier_after.baseline, frontier_before.baseline);

    // the session keeps iterating: select works and lands in cycle 2
    let record = client.select(id, 0).unwrap();
    assert_eq!(record.cycle, 2);

    // restored managers never reissue handles
    let fresh = client.create(Some(&small_request())).unwrap();
    assert!(fresh > id, "fresh handle {fresh} must exceed restored {id}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn default_create_matches_the_facade_default() {
    // POST /sessions with no body must behave exactly like the documented
    // default PlanRequest — pinned here so the docs cannot drift
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let id = client.create(None).unwrap();

    let template = SessionTemplate::demo(ROWS);
    let session = template.builder().build().unwrap();
    let outcome = session.explore().unwrap();
    let frontier = client.explore(id).unwrap();
    assert_eq!(
        frontier.skyline.iter().map(|s| &s.name).collect::<Vec<_>>(),
        outcome
            .skyline_alternatives()
            .map(|a| &a.name)
            .collect::<Vec<_>>()
    );
    client.close(id).unwrap();
    handle.shutdown();
    join.join().unwrap().unwrap();
}
