//! `poiesis_server` — serve the planning API over HTTP.
//!
//! ```text
//! poiesis_server [options]
//!     --addr <host:port>     bind address        (default 127.0.0.1:7878)
//!     --threads <N>          worker threads      (default: available cores)
//!     --catalog <spec>       what sessions plan against (default demo:200):
//!                            demo[:rows]              built-in Fig. 2 flow
//!                            <model.(xlm|ktr)>[:rows] model file, sources
//!                                                     synthesised per schema
//!     --max-body <bytes>     request body cap    (default 1048576)
//! ```
//!
//! The server runs until `POST /shutdown` (or the process is killed);
//! shutdown is graceful — in-flight requests finish before exit. See
//! `docs/API.md` for the wire contract and `poiesis_client` for a
//! ready-made driver.

use poiesis_server::{Limits, PlanningService, Server, ServerConfig, SessionTemplate};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: poiesis_server [--addr host:port] [--threads N] \
                 [--catalog demo[:rows]|model[:rows]] [--max-body bytes]"
            );
            ExitCode::FAILURE
        }
    }
}

fn opt<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| format!("{name} expects a value")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    // reject unknown flags early: a typo'd --catalgo silently serving the
    // demo would be worse than an error
    let known = ["--addr", "--threads", "--catalog", "--max-body"];
    let mut i = 0;
    while i < args.len() {
        if !known.contains(&args[i].as_str()) {
            return Err(format!("unknown flag `{}`", args[i]));
        }
        i += 2;
    }

    let addr = opt(args, "--addr")?.unwrap_or("127.0.0.1:7878");
    let threads: usize = opt(args, "--threads")?
        .map(|v| v.parse().map_err(|_| "--threads expects a number"))
        .transpose()?
        .unwrap_or(0);
    let max_body: usize = opt(args, "--max-body")?
        .map(|v| v.parse().map_err(|_| "--max-body expects a number"))
        .transpose()?
        .unwrap_or_else(|| Limits::default().max_body_bytes);
    let template = SessionTemplate::from_spec(opt(args, "--catalog")?.unwrap_or("demo:200"))?;

    let config = ServerConfig {
        threads,
        limits: Limits {
            max_body_bytes: max_body,
            ..Limits::default()
        },
        ..ServerConfig::default()
    };
    let label = template.label.clone();
    let server = Server::bind(addr, PlanningService::new(template), config)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("poiesis_server listening on {bound} (catalog {label}); POST /shutdown to stop");
    let served = server.run().map_err(|e| e.to_string())?;
    eprintln!("poiesis_server stopped after {served} connections");
    Ok(())
}
