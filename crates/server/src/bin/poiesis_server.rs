//! `poiesis_server` — serve the planning API over HTTP.
//!
//! ```text
//! poiesis_server [options]
//!     --addr <host:port>     bind address        (default 127.0.0.1:7878)
//!     --threads <N>          worker threads      (default: available cores)
//!     --catalog <spec>       what sessions plan against (default demo:200):
//!                            demo[:rows]              built-in Fig. 2 flow
//!                            <model.(xlm|ktr)>[:rows] model file, sources
//!                                                     synthesised per schema
//!     --max-body <bytes>     request body cap    (default 1048576)
//!     --queue <N>            accepted connections that may wait for a
//!                            worker before 503 shedding (default 256)
//!     --retry-after <secs>   Retry-After on shed responses (default 1)
//!     --state-dir <dir>      durable session state: snapshot on every
//!                            mutation, reload on startup (default: none,
//!                            sessions die with the process)
//! ```
//!
//! The server runs until `POST /shutdown` (or the process is killed; with
//! `--state-dir` a kill loses no completed iteration); shutdown is
//! graceful — in-flight requests finish before exit. See `docs/API.md`
//! for the wire contract, `docs/OPERATIONS.md` for metrics/shedding/
//! persistence semantics, and `poiesis_client` for a ready-made driver.

use poiesis_server::{Limits, PlanningService, Server, ServerConfig, SessionTemplate, StateStore};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: poiesis_server [--addr host:port] [--threads N] \
                 [--catalog demo[:rows]|model[:rows]] [--max-body bytes] \
                 [--queue N] [--retry-after secs] [--state-dir dir]"
            );
            ExitCode::FAILURE
        }
    }
}

fn opt<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| format!("{name} expects a value")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    // reject unknown flags early: a typo'd --catalgo silently serving the
    // demo would be worse than an error
    let known = [
        "--addr",
        "--threads",
        "--catalog",
        "--max-body",
        "--queue",
        "--retry-after",
        "--state-dir",
    ];
    let mut i = 0;
    while i < args.len() {
        if !known.contains(&args[i].as_str()) {
            return Err(format!("unknown flag `{}`", args[i]));
        }
        i += 2;
    }

    let addr = opt(args, "--addr")?.unwrap_or("127.0.0.1:7878");
    let threads: usize = opt(args, "--threads")?
        .map(|v| v.parse().map_err(|_| "--threads expects a number"))
        .transpose()?
        .unwrap_or(0);
    let max_body: usize = opt(args, "--max-body")?
        .map(|v| v.parse().map_err(|_| "--max-body expects a number"))
        .transpose()?
        .unwrap_or_else(|| Limits::default().max_body_bytes);
    let defaults = ServerConfig::default();
    let queue: usize = opt(args, "--queue")?
        .map(|v| v.parse().map_err(|_| "--queue expects a number"))
        .transpose()?
        .unwrap_or(defaults.queue);
    let retry_after: u64 = opt(args, "--retry-after")?
        .map(|v| v.parse().map_err(|_| "--retry-after expects seconds"))
        .transpose()?
        .unwrap_or(defaults.retry_after.as_secs());
    let template = SessionTemplate::from_spec(opt(args, "--catalog")?.unwrap_or("demo:200"))?;

    let config = ServerConfig {
        threads,
        queue,
        retry_after: std::time::Duration::from_secs(retry_after),
        limits: Limits {
            max_body_bytes: max_body,
            ..Limits::default()
        },
        ..defaults
    };
    let label = template.label.clone();
    let mut service = PlanningService::new(template);
    if let Some(dir) = opt(args, "--state-dir")? {
        let store = StateStore::open(dir).map_err(|e| format!("opening state dir {dir}: {e}"))?;
        service = service.with_store(store)?;
        let restored = service.live_sessions();
        if restored > 0 {
            eprintln!("poiesis_server restored {restored} session(s) from {dir}");
        }
    }
    let server = Server::bind(addr, service, config).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("poiesis_server listening on {bound} (catalog {label}); POST /shutdown to stop");
    let served = server.run().map_err(|e| e.to_string())?;
    eprintln!("poiesis_server stopped after {served} connections");
    Ok(())
}
