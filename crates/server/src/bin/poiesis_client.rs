//! `poiesis_client` — a command-line driver for a running `poiesis_server`.
//!
//! ```text
//! poiesis_client <addr> health                   live-session count
//! poiesis_client <addr> metrics                  raw Prometheus scrape
//! poiesis_client <addr> create [request.json]    new session (default request)
//! poiesis_client <addr> explore <id>             run a cycle, print frontier
//! poiesis_client <addr> select <id> <rank>       integrate a frontier design
//! poiesis_client <addr> lint <id>                static diagnostics for the flow
//! poiesis_client <addr> history <id>             completed iterations
//! poiesis_client <addr> close <id>               drop the session
//! poiesis_client <addr> script                   full create → explore →
//!                                                select → history → close
//!                                                round-trip (CI smoke test)
//! poiesis_client <addr> shutdown                 stop the server
//! ```
//!
//! Every command prints the server's JSON verbatim, so output composes
//! with `jq`-style tooling; `script` exits non-zero if any step of the
//! lifecycle misbehaves, which is what the CI smoke job asserts.

use poiesis::{FromJson, PlanRequest};
use poiesis_server::Client;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: poiesis_client <addr> \
                 <health|metrics|create|explore|select|lint|history|close|script|shutdown> [args]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("missing server address")?;
    let command = args.get(1).ok_or("missing command")?;
    let mut client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
    let arg = |i: usize, what: &str| -> Result<&String, String> {
        args.get(i).ok_or(format!("missing {what}"))
    };
    let id = |i: usize| -> Result<u64, String> {
        arg(i, "session id")?
            .parse()
            .map_err(|_| "session id must be a number".to_string())
    };

    match command.as_str() {
        "health" => {
            let response = client
                .request("GET", "/healthz", None)
                .map_err(|e| e.to_string())?;
            if response.status != 200 {
                return Err(format!(
                    "healthz returned {}: {}",
                    response.status, response.body
                ));
            }
            println!("{}", response.body);
        }
        "metrics" => {
            let text = client.metrics().map_err(|e| e.to_string())?;
            print!("{text}");
        }
        "create" => {
            let plan = match args.get(2) {
                None => None,
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("reading {path}: {e}"))?;
                    Some(PlanRequest::from_json_str(&text).map_err(|e| e.to_string())?)
                }
            };
            let id = client.create(plan.as_ref()).map_err(|e| e.to_string())?;
            println!("{{\"session\":{id}}}");
        }
        "explore" => {
            let response = client.explore(id(2)?).map_err(|e| e.to_string())?;
            println!("{}", poiesis::ToJson::to_json_string(&response));
        }
        "select" => {
            let rank: usize = arg(3, "rank")?
                .parse()
                .map_err(|_| "rank must be a number".to_string())?;
            let record = client.select(id(2)?, rank).map_err(|e| e.to_string())?;
            println!("{}", poiesis::ToJson::to_json_string(&record));
        }
        "lint" => {
            let report = client.lint(id(2)?).map_err(|e| e.to_string())?;
            println!("{}", poiesis::ToJson::to_json_string(&report));
        }
        "history" => {
            let records = client.history(id(2)?).map_err(|e| e.to_string())?;
            let items: Vec<String> = records
                .iter()
                .map(poiesis::ToJson::to_json_string)
                .collect();
            println!("[{}]", items.join(","));
        }
        "close" => {
            let path = format!("/sessions/{}", id(2)?);
            let response = client
                .request("DELETE", &path, None)
                .map_err(|e| e.to_string())?;
            if response.status != 200 {
                return Err(format!(
                    "close returned {}: {}",
                    response.status, response.body
                ));
            }
            println!("{}", response.body);
        }
        "script" => script(&mut client)?,
        "shutdown" => {
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("{{\"shutting_down\":true}}");
        }
        other => return Err(format!("unknown command `{other}`")),
    }
    Ok(())
}

/// One full lifecycle with sanity assertions at every step — the CI
/// smoke script.
fn script(client: &mut Client) -> Result<(), String> {
    client.healthz().map_err(|e| format!("healthz: {e}"))?;
    let id = client.create(None).map_err(|e| format!("create: {e}"))?;
    eprintln!("created session {id}");
    let frontier = client.explore(id).map_err(|e| format!("explore: {e}"))?;
    if frontier.skyline.is_empty() {
        return Err("explore produced an empty frontier".into());
    }
    eprintln!(
        "explored: {} alternatives, {} on the frontier",
        frontier.alternatives,
        frontier.skyline.len()
    );
    let record = client.select(id, 0).map_err(|e| format!("select: {e}"))?;
    if record.cycle != 1 || record.selected != frontier.skyline[0].name {
        return Err(format!(
            "selection mismatch: cycle {} selected `{}`",
            record.cycle, record.selected
        ));
    }
    eprintln!("selected `{}`", record.selected);
    let history = client.history(id).map_err(|e| format!("history: {e}"))?;
    if history.len() != 1 || history[0] != record {
        return Err("history does not contain the selection".into());
    }
    client.close(id).map_err(|e| format!("close: {e}"))?;
    match client.explore(id) {
        Err(poiesis_server::ClientError::Api { status: 404, .. }) => {}
        other => return Err(format!("closed session still explorable: {other:?}")),
    }
    println!(
        "script: ok (session {id}, frontier {})",
        frontier.skyline.len()
    );
    Ok(())
}
