//! `poiesis_lint` — lint ETL flow definitions without running them.
//!
//! ```text
//! poiesis_lint [--deny-warn] <spec>...
//! ```
//!
//! Each `<spec>` is either a builtin flow (`demo`, `tpch`, `tpcds`), a
//! scenario-corpus entry (`scenario:<name>`, see `docs/SCENARIOS.md`), or
//! a path to a flow file: `.ktr` is imported as PDI, anything else is
//! read as xLM. Every flow is run through the full static analyzer
//! (`analysis::analyze`) and the diagnostics are printed rustc-style with
//! their stable `PA0xx` codes. Warnings are reported but do not fail the
//! run unless `--deny-warn` promotes them; the exit code is
//!
//! * `0` — every flow is free of Error-severity diagnostics (and, with
//!   `--deny-warn`, of Warn-severity ones too),
//! * `1` — at least one flow has a failing diagnostic,
//! * `2` — a spec could not be loaded (bad path, malformed file).
//!
//! CI lints the shipped example catalog with this binary, so a pattern or
//! serialisation change that produces structurally invalid flows fails
//! the build before any benchmark or service ever evaluates them.

use analysis::Severity;
use etl_model::EtlFlow;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_warn = false;
    let specs: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--deny-warn" {
                deny_warn = true;
                false
            } else {
                true
            }
        })
        .collect();
    if specs.is_empty() {
        eprintln!(
            "usage: poiesis_lint [--deny-warn] <demo|tpch|tpcds|scenario:<name>|path/to/flow.{{xlm,ktr}}>..."
        );
        return ExitCode::from(2);
    }
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for spec in &specs {
        let flow = match load(spec) {
            Ok(flow) => flow,
            Err(e) => {
                eprintln!("error: cannot load `{spec}`: {e}");
                return ExitCode::from(2);
            }
        };
        let diags = analysis::analyze(&flow);
        let flow_errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let flow_warnings = diags
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count();
        if diags.is_empty() {
            println!(
                "{spec}: clean ({} nodes, {} edges)",
                flow.op_count(),
                flow.edge_count()
            );
        } else {
            print!("{}", analysis::render(&flow, &diags));
            println!(
                "{spec}: {flow_errors} error(s), {flow_warnings} warning(s), {} diagnostic(s)",
                diags.len()
            );
        }
        errors += flow_errors;
        warnings += flow_warnings;
    }
    if errors > 0 || (deny_warn && warnings > 0) {
        eprintln!(
            "lint failed: {errors} error(s), {warnings} warning(s) across {} flow(s)",
            specs.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Resolves a spec to a flow. Deliberately does *not* call
/// `flow.validate()`: the whole point is to hand structurally broken
/// flows to the analyzer and let it explain what is wrong.
fn load(spec: &str) -> Result<EtlFlow, String> {
    match spec {
        "demo" => return Ok(datagen::fig2::purchases_flow().0),
        "tpch" => return Ok(datagen::tpch::tpch_flow().0),
        "tpcds" => return Ok(datagen::tpcds::tpcds_flow().0),
        _ => {}
    }
    if let Some(name) = spec.strip_prefix("scenario:") {
        return scenarios::get(name).map(|s| s.flow()).ok_or_else(|| {
            format!(
                "unknown scenario `{name}`; known scenarios: {}",
                scenarios::names().join(", ")
            )
        });
    }
    let text = std::fs::read_to_string(spec).map_err(|e| e.to_string())?;
    if spec.ends_with(".ktr") {
        xlm::pdi::import_ktr(&text).map_err(|e| e.to_string())
    } else {
        xlm::read_flow(&text).map_err(|e| e.to_string())
    }
}
