//! The routing layer: HTTP requests in, `SessionManager` calls out.
//!
//! [`PlanningService::handle`] is a pure function from a parsed
//! [`Request`] to a [`Response`] — no I/O, no threads — which is what the
//! unit tests and the connection loop both drive. Every failure path
//! produces the documented JSON error body
//! `{"error":{"code":…,"message":…}}` with the status-code mapping of
//! `docs/API.md`; planner errors reuse the stable
//! [`PoiesisError::code`] values verbatim.

use crate::http::{HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::persist::StateStore;
use poiesis::{
    FromJson, IterationRecord, ManagerSnapshot, PlanRequest, PoiesisError, SessionId,
    SessionManager, SessionSnapshot, ToJson,
};
use serde::json::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::template::SessionTemplate;

/// The HTTP status a [`PoiesisError`] is reported as.
///
/// * client-side payload problems → `400`
/// * unknown handles → `404`
/// * valid requests in the wrong session state → `409`
/// * planner-internal and persistence failures → `500`
pub fn status_for(error: &PoiesisError) -> u16 {
    match error {
        PoiesisError::Malformed(_)
        | PoiesisError::InvalidObjective(_)
        | PoiesisError::Analysis(_)
        | PoiesisError::MissingFlow
        | PoiesisError::MissingCatalog
        | PoiesisError::EmptyCatalog => 400,
        PoiesisError::UnknownSession(_) => 404,
        PoiesisError::NothingExplored(_) | PoiesisError::RankOutOfRange { .. } => 409,
        PoiesisError::InvalidFlow(_)
        | PoiesisError::Pattern(_)
        | PoiesisError::Eval(_)
        | PoiesisError::Snapshot(_) => 500,
    }
}

/// `{"error":{"code":…,"message":…}}` from any code/message pair.
pub fn error_body(code: &str, message: &str) -> String {
    Value::object([(
        "error".to_string(),
        Value::object([
            ("code".to_string(), Value::String(code.to_string())),
            ("message".to_string(), Value::String(message.to_string())),
        ]),
    )])
    .to_string()
}

fn plan_error(error: &PoiesisError) -> Response {
    let body = Value::object([("error".to_string(), error.to_json())]);
    Response::json(status_for(error), body.to_string())
}

/// The wire-visible form of an [`HttpError`] (except `Closed`, which the
/// connection loop handles by hanging up).
pub fn http_error_response(error: &HttpError) -> Response {
    let code = match error {
        HttpError::Closed | HttpError::BadRequest(_) => "bad_request",
        HttpError::PayloadTooLarge { .. } => "payload_too_large",
        HttpError::HeadTooLarge => "head_too_large",
        HttpError::Timeout => "timeout",
    };
    Response::json(error.status(), error_body(code, &error.to_string()))
}

/// The durable half of a persistent service: the store plus a cache of
/// every live session's latest snapshot, keyed by handle.
///
/// The cache is what makes persistence O(mutated session): after a
/// mutation only that session is re-captured (locking only its slot —
/// [`SessionManager::snapshot_session`]), then the whole file is
/// rewritten from the cache. Without it, every mutation would have to
/// lock *all* slots and would stall behind any in-flight planning cycle.
/// The surrounding mutex serializes capture-then-save, so a slower
/// writer can never clobber a newer snapshot on disk.
struct Persistence {
    store: StateStore,
    sessions: BTreeMap<u64, SessionSnapshot>,
}

/// Stateless-per-request facade over one [`SessionManager`] and one
/// [`SessionTemplate`], with shared [`Metrics`] and optional durable
/// state (a [`StateStore`] rewritten after every mutation).
pub struct PlanningService {
    manager: SessionManager,
    template: SessionTemplate,
    metrics: Arc<Metrics>,
    /// `Some` when `--state-dir` is set.
    store: Option<Mutex<Persistence>>,
}

impl PlanningService {
    /// A service over a fresh manager, in-memory only.
    pub fn new(template: SessionTemplate) -> Self {
        PlanningService {
            manager: SessionManager::new(),
            template,
            metrics: Arc::new(Metrics::new()),
            store: None,
        }
    }

    /// Makes the service durable: reloads any snapshot in `store`
    /// (resuming every persisted session mid-iteration) and rewrites the
    /// snapshot after each state-changing request from now on.
    ///
    /// A snapshot that fails the parse gate, the
    /// [`poiesis::ManagerSnapshot::validate`] consistency gate, or
    /// session restoration is **quarantined** (moved to
    /// `sessions.json.corrupt`, counted in
    /// `poiesis_snapshot_quarantined_total`, logged to stderr) and the
    /// service starts empty — a partially-applied snapshot never loads,
    /// and the evidence is preserved instead of silently overwritten.
    /// Only an I/O failure on the quarantine itself aborts startup.
    pub fn with_store(mut self, store: StateStore) -> Result<Self, String> {
        use crate::persist::LoadedState;
        let mut sessions = BTreeMap::new();
        let loaded = store
            .load_or_quarantine()
            .map_err(|e| format!("quarantining {}: {e}", store.path().display()))?;
        match loaded {
            LoadedState::Absent => {}
            LoadedState::Quarantined {
                reason,
                quarantined_to,
            } => {
                eprintln!(
                    "poiesis_server: rejected snapshot ({reason}); \
                     quarantined to {} and starting empty",
                    quarantined_to.display()
                );
                self.metrics.record_snapshot_quarantine();
            }
            LoadedState::Snapshot(snapshot) => {
                let template = &self.template;
                match SessionManager::from_snapshot(&snapshot, || template.builder()) {
                    Ok(manager) => {
                        self.manager = manager;
                        sessions = snapshot.sessions.into_iter().map(|s| (s.id, s)).collect();
                    }
                    Err(e) => {
                        store
                            .quarantine()
                            .map_err(|e| format!("quarantining {}: {e}", store.path().display()))?;
                        eprintln!(
                            "poiesis_server: snapshot failed to restore ({e}); \
                             quarantined to {} and starting empty",
                            store.quarantine_path().display()
                        );
                        self.metrics.record_snapshot_quarantine();
                    }
                }
            }
        }
        self.store = Some(Mutex::new(Persistence { store, sessions }));
        Ok(self)
    }

    /// The underlying manager (used by tests to compare against the
    /// in-process facade).
    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }

    /// The metrics registry (shared with the connection loop, which
    /// counts requests and connections into it).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Number of sessions currently registered (what
    /// `poiesis_sessions_live` reports).
    pub fn live_sessions(&self) -> usize {
        self.manager.len()
    }

    /// Re-captures the just-mutated session (locking only its slot) into
    /// the snapshot cache and rewrites the durable file, if persistence
    /// is on. A session that vanished concurrently (racing close) is
    /// skipped — the close's own persist covers it.
    fn persist_session(&self, id: SessionId) {
        let Some(store) = &self.store else { return };
        let Ok(snapshot) = self.manager.snapshot_session(id) else {
            return;
        };
        let mut persistence = store.lock().expect("state store");
        persistence.sessions.insert(id.raw(), snapshot);
        self.save(&mut persistence);
    }

    /// Drops the closed session from the snapshot cache and rewrites the
    /// durable file, if persistence is on.
    fn persist_close(&self, id: SessionId) {
        let Some(store) = &self.store else { return };
        let mut persistence = store.lock().expect("state store");
        persistence.sessions.remove(&id.raw());
        self.save(&mut persistence);
    }

    /// Rewrites the snapshot file from the cache. Failures are counted
    /// (`poiesis_snapshot_errors_total`) and logged, not propagated: the
    /// in-memory session already advanced and the client's response must
    /// reflect that.
    fn save(&self, persistence: &mut Persistence) {
        let snapshot = ManagerSnapshot {
            next_id: self.manager.next_handle(),
            sessions: persistence.sessions.values().cloned().collect(),
        };
        let result = persistence.store.save(&snapshot);
        if let Err(e) = &result {
            eprintln!(
                "poiesis_server: snapshot write to {} failed: {e}",
                persistence.store.path().display()
            );
        }
        self.metrics.record_snapshot_write(result.is_ok());
    }

    /// Routes one request. Never panics on hostile input; unroutable
    /// paths and methods produce `404` / `405` JSON errors.
    pub fn handle(&self, request: &Request) -> Response {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let method = request.method.as_str();
        match (method, segments.as_slice()) {
            ("GET", ["healthz"]) => self.healthz(),
            ("GET", ["metrics"]) => self.scrape(),
            ("GET", ["sessions"]) => self.list(),
            ("POST", ["sessions"]) => self.create(request),
            ("POST", ["sessions", id, "explore"]) => self.with_id(id, |id| self.explore(id)),
            ("POST", ["sessions", id, "select"]) => self.with_id(id, |id| self.select(id, request)),
            ("POST", ["sessions", id, "lint"]) => self.with_id(id, |id| self.lint(id)),
            ("GET", ["sessions", id, "history"]) => self.with_id(id, |id| self.history(id)),
            ("DELETE", ["sessions", id]) => self.with_id(id, |id| self.close(id)),
            // known paths with the wrong verb are 405, unknown paths 404
            (
                _,
                ["healthz"]
                | ["metrics"]
                | ["sessions"]
                | ["sessions", _]
                | ["sessions", _, "explore" | "select" | "lint" | "history"],
            ) => Response::json(
                405,
                error_body(
                    "method_not_allowed",
                    &format!("{} is not supported on {}", method, request.path),
                ),
            ),
            _ => Response::json(
                404,
                error_body("not_found", &format!("no route for {}", request.path)),
            ),
        }
    }

    /// Parses the `{id}` path segment and hands it to `f`; non-numeric
    /// handles are a 400, handles the manager does not know map to 404
    /// inside `f`.
    fn with_id(&self, raw: &str, f: impl FnOnce(SessionId) -> Response) -> Response {
        match raw.parse::<u64>() {
            Ok(id) => f(SessionId::from_raw(id)),
            Err(_) => Response::json(
                400,
                error_body("bad_request", &format!("malformed session id `{raw}`")),
            ),
        }
    }

    fn healthz(&self) -> Response {
        let body = Value::object([
            ("status".to_string(), Value::String("ok".to_string())),
            (
                "sessions".to_string(),
                Value::Number(self.manager.len() as f64),
            ),
            (
                "catalog".to_string(),
                Value::String(self.template.label.clone()),
            ),
        ]);
        Response::json(200, body.to_string())
    }

    fn scrape(&self) -> Response {
        Response::text(200, self.metrics.render(self.manager.len()))
    }

    fn list(&self) -> Response {
        let ids: Vec<Value> = self
            .manager
            .ids()
            .into_iter()
            .map(|id| Value::Number(id.raw() as f64))
            .collect();
        Response::json(
            200,
            Value::object([("sessions".to_string(), Value::Array(ids))]).to_string(),
        )
    }

    fn create(&self, request: &Request) -> Response {
        let plan_request = if request.body.is_empty() {
            PlanRequest::default()
        } else {
            let text = match request.body_str() {
                Ok(t) => t,
                Err(e) => return http_error_response(&e),
            };
            match PlanRequest::from_json_str(text) {
                Ok(r) => r,
                Err(e) => return plan_error(&PoiesisError::from(e)),
            }
        };
        match self
            .manager
            .create_from_request(self.template.builder(), &plan_request)
        {
            Ok(id) => {
                self.persist_session(id);
                Response::json(
                    201,
                    Value::object([("session".to_string(), Value::Number(id.raw() as f64))])
                        .to_string(),
                )
            }
            Err(e) => plan_error(&e),
        }
    }

    fn explore(&self, id: SessionId) -> Response {
        let start = Instant::now();
        match self.manager.explore(id) {
            Ok(response) => {
                self.metrics.observe_cycle(start.elapsed());
                self.metrics
                    .record_static_rejections(response.statically_rejected);
                self.metrics.record_bound_pruned(response.bound_pruned);
                Response::json(200, response.to_json_string())
            }
            Err(e) => plan_error(&e),
        }
    }

    fn lint(&self, id: SessionId) -> Response {
        match self.manager.lint(id) {
            Ok(report) => Response::json(200, report.to_json_string()),
            Err(e) => plan_error(&e),
        }
    }

    fn select(&self, id: SessionId, request: &Request) -> Response {
        let rank = match select_rank(request) {
            Ok(rank) => rank,
            Err(response) => return response,
        };
        match self.manager.select(id, rank) {
            Ok(record) => {
                self.persist_session(id);
                Response::json(200, selection_body(id, &record))
            }
            Err(e) => plan_error(&e),
        }
    }

    fn history(&self, id: SessionId) -> Response {
        match self.manager.history(id) {
            Ok(records) => {
                let body = Value::object([
                    ("session".to_string(), Value::Number(id.raw() as f64)),
                    (
                        "history".to_string(),
                        Value::Array(records.iter().map(|r| r.to_json()).collect()),
                    ),
                ]);
                Response::json(200, body.to_string())
            }
            Err(e) => plan_error(&e),
        }
    }

    fn close(&self, id: SessionId) -> Response {
        match self.manager.close(id) {
            Ok(()) => {
                self.persist_close(id);
                Response::json(
                    200,
                    Value::object([("closed".to_string(), Value::Number(id.raw() as f64))])
                        .to_string(),
                )
            }
            Err(e) => plan_error(&e),
        }
    }
}

/// Decodes the `{"rank":N}` selection body.
fn select_rank(request: &Request) -> Result<usize, Response> {
    let text = request.body_str().map_err(|e| http_error_response(&e))?;
    if text.trim().is_empty() {
        return Err(Response::json(
            400,
            error_body("malformed", "select expects a body like {\"rank\":0}"),
        ));
    }
    let parsed = Value::parse(text)
        .and_then(|v| v.get("rank")?.as_usize("rank"))
        .map_err(|e| Response::json(400, error_body("malformed", &e.to_string())))?;
    Ok(parsed)
}

/// The `select` success body: the session plus the new iteration record.
fn selection_body(id: SessionId, record: &IterationRecord) -> String {
    Value::object([
        ("session".to_string(), Value::Number(id.raw() as f64)),
        ("record".to_string(), record.to_json()),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use poiesis::PlanResponse;

    fn service() -> PlanningService {
        PlanningService::new(SessionTemplate::demo(80))
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn json(response: &Response) -> Value {
        Value::parse(&response.body).expect("body parses")
    }

    fn error_code(response: &Response) -> String {
        json(response)
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str("code")
            .unwrap()
            .to_string()
    }

    #[test]
    fn lifecycle_routes_end_to_end() {
        let svc = service();
        let created = svc.handle(&request("POST", "/sessions", ""));
        assert_eq!(created.status, 201);
        let id = json(&created)
            .get("session")
            .unwrap()
            .as_usize("session")
            .unwrap();

        let explored = svc.handle(&request("POST", &format!("/sessions/{id}/explore"), ""));
        assert_eq!(explored.status, 200);
        let plan = PlanResponse::from_json_str(&explored.body).unwrap();
        assert!(!plan.skyline.is_empty());
        assert_eq!(plan.session, Some(id as u64));

        let selected = svc.handle(&request(
            "POST",
            &format!("/sessions/{id}/select"),
            "{\"rank\":0}",
        ));
        assert_eq!(selected.status, 200, "{}", selected.body);
        let record = IterationRecord::from_json(json(&selected).get("record").unwrap()).unwrap();
        assert_eq!(record.cycle, 1);
        assert_eq!(record.selected, plan.skyline[0].name);

        let history = svc.handle(&request("GET", &format!("/sessions/{id}/history"), ""));
        assert_eq!(history.status, 200);
        assert_eq!(
            json(&history)
                .get("history")
                .unwrap()
                .as_array("history")
                .unwrap()
                .len(),
            1
        );

        let closed = svc.handle(&request("DELETE", &format!("/sessions/{id}"), ""));
        assert_eq!(closed.status, 200);
        let gone = svc.handle(&request("POST", &format!("/sessions/{id}/explore"), ""));
        assert_eq!(gone.status, 404);
        assert_eq!(error_code(&gone), "unknown_session");
    }

    #[test]
    fn healthz_reports_live_sessions_and_catalog() {
        let svc = service();
        svc.handle(&request("POST", "/sessions", ""));
        let health = svc.handle(&request("GET", "/healthz", ""));
        assert_eq!(health.status, 200);
        let v = json(&health);
        assert_eq!(v.get("status").unwrap().as_str("status").unwrap(), "ok");
        assert_eq!(v.get("sessions").unwrap().as_usize("sessions").unwrap(), 1);
        assert_eq!(
            v.get("catalog").unwrap().as_str("catalog").unwrap(),
            "demo:80"
        );
    }

    #[test]
    fn custom_plan_requests_are_honoured() {
        let svc = service();
        let plan = PlanRequest {
            strategy: "beam:4".to_string(),
            budget: 64,
            ..PlanRequest::default()
        };
        let created = svc.handle(&request("POST", "/sessions", &plan.to_json_string()));
        assert_eq!(created.status, 201, "{}", created.body);
        let id = json(&created)
            .get("session")
            .unwrap()
            .as_usize("session")
            .unwrap();
        let explored = svc.handle(&request("POST", &format!("/sessions/{id}/explore"), ""));
        let response = PlanResponse::from_json_str(&explored.body).unwrap();
        assert!(response.enumerated <= 64);
    }

    #[test]
    fn malformed_payloads_map_to_the_documented_codes() {
        let svc = service();
        // body that is not JSON at all
        let r = svc.handle(&request("POST", "/sessions", "not json"));
        assert_eq!((r.status, error_code(&r)), (400, "malformed".into()));
        // JSON with a wrong field type
        let r = svc.handle(&request("POST", "/sessions", "{\"strategy\":1}"));
        assert_eq!((r.status, error_code(&r)), (400, "malformed".into()));
        // unknown strategy string
        let plan = PlanRequest {
            strategy: "dfs".to_string(),
            ..PlanRequest::default()
        };
        let r = svc.handle(&request("POST", "/sessions", &plan.to_json_string()));
        assert_eq!((r.status, error_code(&r)), (400, "malformed".into()));
        // unknown characteristic key in the objective
        let mut plan = PlanRequest::default();
        plan.objective.goals[0].characteristic = "speed".to_string();
        let r = svc.handle(&request("POST", "/sessions", &plan.to_json_string()));
        assert_eq!((r.status, error_code(&r)), (400, "malformed".into()));
    }

    #[test]
    fn wrong_session_states_are_conflicts() {
        let svc = service();
        let created = svc.handle(&request("POST", "/sessions", ""));
        let id = json(&created)
            .get("session")
            .unwrap()
            .as_usize("session")
            .unwrap();
        // select before any explore
        let r = svc.handle(&request(
            "POST",
            &format!("/sessions/{id}/select"),
            "{\"rank\":0}",
        ));
        assert_eq!((r.status, error_code(&r)), (409, "nothing_explored".into()));
        // select a rank past the frontier
        svc.handle(&request("POST", &format!("/sessions/{id}/explore"), ""));
        let r = svc.handle(&request(
            "POST",
            &format!("/sessions/{id}/select"),
            "{\"rank\":100000}",
        ));
        assert_eq!(
            (r.status, error_code(&r)),
            (409, "rank_out_of_range".into())
        );
        // a bad select body never consumes the outcome
        let r = svc.handle(&request(
            "POST",
            &format!("/sessions/{id}/select"),
            "{\"rank\":\"zero\"}",
        ));
        assert_eq!((r.status, error_code(&r)), (400, "malformed".into()));
        let r = svc.handle(&request(
            "POST",
            &format!("/sessions/{id}/select"),
            "{\"rank\":0}",
        ));
        assert_eq!(r.status, 200, "{}", r.body);
    }

    #[test]
    fn lint_route_reports_diagnostics_for_the_session() {
        use poiesis::LintReport;
        let svc = service();
        let created = svc.handle(&request("POST", "/sessions", ""));
        let id = json(&created)
            .get("session")
            .unwrap()
            .as_usize("session")
            .unwrap();
        let linted = svc.handle(&request("POST", &format!("/sessions/{id}/lint"), ""));
        assert_eq!(linted.status, 200, "{}", linted.body);
        let report = LintReport::from_json_str(&linted.body).unwrap();
        assert_eq!(report.session, Some(id as u64));
        assert_eq!(report.errors, 0, "template flows are error-free");
        // wrong verb → 405, unknown handle → 404, like every route
        let r = svc.handle(&request("GET", &format!("/sessions/{id}/lint"), ""));
        assert_eq!(
            (r.status, error_code(&r)),
            (405, "method_not_allowed".into())
        );
        let r = svc.handle(&request("POST", "/sessions/99/lint", ""));
        assert_eq!((r.status, error_code(&r)), (404, "unknown_session".into()));
    }

    #[test]
    fn lint_route_carries_sensitive_lineage_notes_end_to_end() {
        use poiesis::LintReport;
        let template =
            SessionTemplate::from_model_file("../../examples/flows/sensitive_leak.xlm", 40)
                .unwrap();
        let svc = PlanningService::new(template);
        let created = svc.handle(&request("POST", "/sessions", ""));
        assert_eq!(created.status, 201, "{}", created.body);
        let id = json(&created)
            .get("session")
            .unwrap()
            .as_usize("session")
            .unwrap();
        let linted = svc.handle(&request("POST", &format!("/sessions/{id}/lint"), ""));
        assert_eq!(linted.status, 200, "{}", linted.body);
        let report = LintReport::from_json_str(&linted.body).unwrap();
        assert_eq!(report.errors, 0, "a leak is a warning, not an error");
        assert_eq!(report.warnings, 1, "{}", linted.body);
        let leak = report
            .diagnostics
            .iter()
            .find(|d| d.code == "PA030")
            .expect("PA030 on the wire");
        assert!(
            leak.notes.iter().any(|n| n.starts_with("lineage:")),
            "lineage trace survives the DTO round-trip: {:?}",
            leak.notes
        );
        assert!(
            leak.notes.iter().any(|n| n.contains("EXTRACT purchases")),
            "trace names the tainted source: {:?}",
            leak.notes
        );
    }

    #[test]
    fn analysis_errors_map_to_400() {
        assert_eq!(status_for(&PoiesisError::Analysis(vec![])), 400);
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let svc = service();
        let created = svc.handle(&request("POST", "/sessions", ""));
        let id = json(&created)
            .get("session")
            .unwrap()
            .as_usize("session")
            .unwrap();
        svc.handle(&request("POST", &format!("/sessions/{id}/explore"), ""));

        let scrape = svc.handle(&request("GET", "/metrics", ""));
        assert_eq!(scrape.status, 200);
        assert_eq!(scrape.content_type, "text/plain; version=0.0.4");
        assert!(
            scrape.body.contains("poiesis_sessions_live 1"),
            "{}",
            scrape.body
        );
        assert!(
            scrape
                .body
                .contains("poiesis_cycle_duration_seconds_count 1"),
            "{}",
            scrape.body
        );
        // wrong verb on a known path stays a 405, like every other route
        let r = svc.handle(&request("POST", "/metrics", ""));
        assert_eq!(
            (r.status, error_code(&r)),
            (405, "method_not_allowed".into())
        );
    }

    #[test]
    fn mutations_rewrite_the_durable_snapshot() {
        use crate::persist::StateStore;
        let dir = std::env::temp_dir().join(format!("poiesis-svc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let svc = PlanningService::new(SessionTemplate::demo(80))
            .with_store(StateStore::open(&dir).unwrap())
            .unwrap();
        let created = svc.handle(&request("POST", "/sessions", ""));
        assert_eq!(created.status, 201);
        let on_disk = StateStore::open(&dir).unwrap().load().unwrap().unwrap();
        assert_eq!(on_disk.sessions.len(), 1);

        // a second service over the same store resumes the session, and a
        // mutation on it must not drop the restored session from the file
        // (the snapshot cache is seeded from the loaded snapshot)
        let resumed = PlanningService::new(SessionTemplate::demo(80))
            .with_store(StateStore::open(&dir).unwrap())
            .unwrap();
        assert_eq!(resumed.live_sessions(), 1);
        let second = resumed.handle(&request("POST", "/sessions", ""));
        assert_eq!(second.status, 201);
        let on_disk = StateStore::open(&dir).unwrap().load().unwrap().unwrap();
        assert_eq!(on_disk.sessions.len(), 2);

        // closing rewrites the snapshot down to zero sessions
        let id = json(&created)
            .get("session")
            .unwrap()
            .as_usize("session")
            .unwrap();
        svc.handle(&request("DELETE", &format!("/sessions/{id}"), ""));
        let on_disk = StateStore::open(&dir).unwrap().load().unwrap().unwrap();
        assert!(on_disk.sessions.is_empty());
        // …but the handle counter survives, so handles are never reused
        assert!(on_disk.next_id > id as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn startup_quarantines_bad_snapshots_and_serves_empty() {
        use crate::persist::StateStore;
        let dir = std::env::temp_dir().join(format!("poiesis-svc-q-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        // a torn write left half a JSON document behind
        let store = StateStore::open(&dir).unwrap();
        std::fs::write(store.path(), "{\"next_id\":3,\"sess").unwrap();
        let svc = PlanningService::new(SessionTemplate::demo(80))
            .with_store(store)
            .expect("startup must survive a torn snapshot");
        assert_eq!(svc.live_sessions(), 0, "partial state never loads");
        let reopened = StateStore::open(&dir).unwrap();
        assert!(reopened.quarantine_path().exists(), "evidence preserved");
        assert!(!reopened.path().exists(), "live path cleared");
        assert!(svc
            .metrics()
            .render(0)
            .contains("poiesis_snapshot_quarantined_total 1"));

        // the quarantined service is immediately usable and durable again
        let created = svc.handle(&request("POST", "/sessions", ""));
        assert_eq!(created.status, 201, "{}", created.body);
        let on_disk = StateStore::open(&dir).unwrap().load().unwrap().unwrap();
        assert_eq!(on_disk.sessions.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unroutable_requests_are_404_and_405() {
        let svc = service();
        let r = svc.handle(&request("GET", "/nope", ""));
        assert_eq!((r.status, error_code(&r)), (404, "not_found".into()));
        let r = svc.handle(&request("PATCH", "/sessions", ""));
        assert_eq!(
            (r.status, error_code(&r)),
            (405, "method_not_allowed".into())
        );
        let r = svc.handle(&request("GET", "/sessions/abc/history", ""));
        assert_eq!((r.status, error_code(&r)), (400, "bad_request".into()));
        let r = svc.handle(&request("GET", "/sessions/99/history", ""));
        assert_eq!((r.status, error_code(&r)), (404, "unknown_session".into()));
    }
}
