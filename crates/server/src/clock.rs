//! A minimal time source abstraction, so waits can be virtualized.
//!
//! Everything in the server stack that *waits* — most importantly the
//! [`Client`](crate::Client)'s `Retry-After` backoff on `503` — goes
//! through a [`Clock`] instead of calling `std::thread::sleep` directly.
//! Production code uses [`SystemClock`] (real sleeps, real monotonic
//! time); the fault-injection lab (`crates/simlab`) substitutes a
//! `SimClock` whose sleeps are instant bookkeeping on a virtual-time
//! counter, which is what makes seeded fault scenarios reproducible and
//! fast: a schedule with ten 2-second `Retry-After` waits replays in
//! microseconds, and the waited duration is still observable.

use std::time::{Duration, Instant};

/// A source of "now" and "wait": the two time effects the service stack
/// performs.
///
/// Implementations must be cheap to share (`Send + Sync`); callers hold
/// them behind `Arc<dyn Clock>`.
pub trait Clock: Send + Sync {
    /// Blocks (really or virtually) for `duration`.
    fn sleep(&self, duration: Duration);

    /// Monotonic time elapsed since this clock's epoch (construction).
    fn elapsed(&self) -> Duration;
}

/// The production clock: `thread::sleep` and `Instant`.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    fn elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_advances_and_sleeps() {
        let clock = SystemClock::new();
        let before = clock.elapsed();
        clock.sleep(Duration::from_millis(5));
        assert!(clock.elapsed() >= before + Duration::from_millis(5));
    }
}
