//! A std-only HTTP client for the planning API.
//!
//! [`Client`] holds one keep-alive connection and speaks the wire
//! contract of `docs/API.md`: raw [`request`](Client::request) for tests
//! that need to probe error paths, and typed helpers
//! ([`create`](Client::create) → [`explore`](Client::explore) →
//! [`select`](Client::select) → [`lint`](Client::lint) →
//! [`history`](Client::history) → [`close`](Client::close)) that decode
//! straight into the `poiesis::api`
//! DTOs. It exists so integration tests, the `poiesis_client` CLI and the
//! `server_load` generator all exercise the same code path a real client
//! would.

use poiesis::{FromJson, IterationRecord, LintReport, PlanRequest, PlanResponse, ToJson};
use serde::json::Value;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A decoded HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Raw body text.
    pub body: String,
}

impl HttpResponse {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Value, ClientError> {
        Value::parse(&self.body).map_err(|e| ClientError::Decode(e.to_string()))
    }
}

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure.
    Io(String),
    /// The server answered with an error body; `code` is the stable
    /// `error.code` of the wire contract.
    Api {
        /// HTTP status.
        status: u16,
        /// Stable error code (e.g. `unknown_session`).
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// The response body did not decode as the expected DTO.
    Decode(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Api {
                status,
                code,
                message,
            } => write!(f, "api error {status} ({code}): {message}"),
            ClientError::Decode(e) => write!(f, "decode: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// One keep-alive connection to a planning server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects, with a read timeout so a dead server fails loudly
    /// instead of hanging the caller.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the response. `body = None` sends no
    /// `Content-Length`; JSON bodies are sent verbatim.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, ClientError> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: poiesis\r\n");
        if let Some(body) = body {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.writer.write_all(body.as_bytes())?;
        }
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io("server closed the connection".into()));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> Result<HttpResponse, ClientError> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Decode(format!("bad status line `{status_line}`")))?;
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| ClientError::Decode("bad Content-Length".into()))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| ClientError::Decode("response body is not UTF-8".into()))?;
        Ok(HttpResponse { status, body })
    }

    /// Turns a non-2xx response into [`ClientError::Api`] by decoding the
    /// documented error body.
    fn expect_ok(response: HttpResponse) -> Result<HttpResponse, ClientError> {
        if (200..300).contains(&response.status) {
            return Ok(response);
        }
        let (code, message) = response
            .json()
            .ok()
            .and_then(|v| {
                let e = v.get("error").ok()?;
                Some((
                    e.get("code").ok()?.as_str("code").ok()?.to_string(),
                    e.get("message").ok()?.as_str("message").ok()?.to_string(),
                ))
            })
            .unwrap_or_else(|| ("unknown".to_string(), response.body.clone()));
        Err(ClientError::Api {
            status: response.status,
            code,
            message,
        })
    }

    // ------------------------------------------------------ typed calls

    /// `GET /healthz` → the number of live sessions.
    pub fn healthz(&mut self) -> Result<usize, ClientError> {
        let response = Self::expect_ok(self.request("GET", "/healthz", None)?)?;
        response
            .json()?
            .get("sessions")
            .and_then(|v| v.as_usize("sessions"))
            .map_err(|e| ClientError::Decode(e.to_string()))
    }

    /// `GET /metrics` → the raw Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let response = Self::expect_ok(self.request("GET", "/metrics", None)?)?;
        Ok(response.body)
    }

    /// Scrapes `/metrics` and returns the value of `name` — the first
    /// sample line whose metric name (including any `{labels}`) starts
    /// with `name`. Counters and gauges only; errors when the metric is
    /// absent, which for the families documented in `docs/OPERATIONS.md`
    /// means the server predates them.
    pub fn metric_value(&mut self, name: &str) -> Result<f64, ClientError> {
        let text = self.metrics()?;
        for line in text.lines() {
            if line.starts_with('#') || !line.starts_with(name) {
                continue;
            }
            if let Some(value) = line.rsplit(' ').next() {
                if let Ok(value) = value.parse() {
                    return Ok(value);
                }
            }
        }
        Err(ClientError::Decode(format!("no metric `{name}` in scrape")))
    }

    /// `POST /sessions` → the new session handle. `None` uses the
    /// server-side defaults.
    pub fn create(&mut self, plan: Option<&PlanRequest>) -> Result<u64, ClientError> {
        let body = plan.map(|p| p.to_json_string());
        let response = Self::expect_ok(self.request("POST", "/sessions", body.as_deref())?)?;
        let id = response
            .json()?
            .get("session")
            .and_then(|v| v.as_usize("session"))
            .map_err(|e| ClientError::Decode(e.to_string()))?;
        Ok(id as u64)
    }

    /// `POST /sessions/{id}/explore` → the frontier.
    pub fn explore(&mut self, id: u64) -> Result<PlanResponse, ClientError> {
        let response =
            Self::expect_ok(self.request("POST", &format!("/sessions/{id}/explore"), None)?)?;
        PlanResponse::from_json_str(&response.body).map_err(|e| ClientError::Decode(e.to_string()))
    }

    /// `POST /sessions/{id}/select` with `{"rank":rank}` → the iteration
    /// record.
    pub fn select(&mut self, id: u64, rank: usize) -> Result<IterationRecord, ClientError> {
        let body = format!("{{\"rank\":{rank}}}");
        let response = Self::expect_ok(self.request(
            "POST",
            &format!("/sessions/{id}/select"),
            Some(&body),
        )?)?;
        let v = response.json()?;
        IterationRecord::from_json(
            v.get("record")
                .map_err(|e| ClientError::Decode(e.to_string()))?,
        )
        .map_err(|e| ClientError::Decode(e.to_string()))
    }

    /// `POST /sessions/{id}/lint` → static-analysis diagnostics for the
    /// session's current flow.
    pub fn lint(&mut self, id: u64) -> Result<LintReport, ClientError> {
        let response =
            Self::expect_ok(self.request("POST", &format!("/sessions/{id}/lint"), None)?)?;
        LintReport::from_json_str(&response.body).map_err(|e| ClientError::Decode(e.to_string()))
    }

    /// `GET /sessions/{id}/history` → all completed iterations.
    pub fn history(&mut self, id: u64) -> Result<Vec<IterationRecord>, ClientError> {
        let response =
            Self::expect_ok(self.request("GET", &format!("/sessions/{id}/history"), None)?)?;
        let v = response.json()?;
        v.get("history")
            .map_err(|e| ClientError::Decode(e.to_string()))?
            .as_array("history")
            .map_err(|e| ClientError::Decode(e.to_string()))?
            .iter()
            .map(|r| IterationRecord::from_json(r).map_err(|e| ClientError::Decode(e.to_string())))
            .collect()
    }

    /// `DELETE /sessions/{id}`.
    pub fn close(&mut self, id: u64) -> Result<(), ClientError> {
        Self::expect_ok(self.request("DELETE", &format!("/sessions/{id}"), None)?)?;
        Ok(())
    }

    /// `POST /shutdown` — stops the server.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        Self::expect_ok(self.request("POST", "/shutdown", None)?)?;
        Ok(())
    }
}
