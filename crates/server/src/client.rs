//! A std-only HTTP client for the planning API.
//!
//! [`Client`] holds one keep-alive connection and speaks the wire
//! contract of `docs/API.md`: raw [`request`](Client::request) for tests
//! that need to probe error paths, and typed helpers
//! ([`create`](Client::create) → [`explore`](Client::explore) →
//! [`select`](Client::select) → [`lint`](Client::lint) →
//! [`history`](Client::history) → [`close`](Client::close)) that decode
//! straight into the `poiesis::api`
//! DTOs. It exists so integration tests, the `poiesis_client` CLI and the
//! `server_load` generator all exercise the same code path a real client
//! would.
//!
//! # Retry on `503`
//!
//! Typed calls honour the server's shed signal: a `503` carrying
//! `Retry-After` is retried after waiting the advertised delay (through
//! the client's [`Clock`], so the fault lab replays the wait virtually),
//! up to [`RetryPolicy::max_retries`] times, reconnecting first because a
//! shed connection is closed by the server. Exhausting the budget
//! surfaces the final `503` as a normal [`ClientError::Api`]. Retries are
//! counted ([`Client::retries`]) so load tools can report them. The raw
//! [`request`](Client::request) path never retries — error-path tests
//! need to see exactly one exchange.

use crate::clock::{Clock, SystemClock};
use poiesis::{FromJson, IterationRecord, LintReport, PlanRequest, PlanResponse, ToJson};
use serde::json::Value;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A decoded HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Raw body text.
    pub body: String,
    /// The `Retry-After` header in seconds, when the server sent one
    /// (the `503` shed path always does).
    pub retry_after: Option<u64>,
}

impl HttpResponse {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Value, ClientError> {
        Value::parse(&self.body).map_err(|e| ClientError::Decode(e.to_string()))
    }
}

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure.
    Io(String),
    /// The server answered with an error body; `code` is the stable
    /// `error.code` of the wire contract.
    Api {
        /// HTTP status.
        status: u16,
        /// Stable error code (e.g. `unknown_session`).
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// The response body did not decode as the expected DTO.
    Decode(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Api {
                status,
                code,
                message,
            } => write!(f, "api error {status} ({code}): {message}"),
            ClientError::Decode(e) => write!(f, "decode: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// How typed calls react to a `503` + `Retry-After` shed.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries (beyond the first attempt) before the `503` is surfaced.
    pub max_retries: u32,
    /// Cap on one wait, whatever `Retry-After` advertises — a hostile or
    /// misconfigured server must not park the client for minutes.
    pub max_wait: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            max_wait: Duration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// No retries: every `503` surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            max_wait: Duration::ZERO,
        }
    }
}

/// One keep-alive connection to a planning server.
pub struct Client {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    read_timeout: Duration,
    clock: Arc<dyn Clock>,
    retry: RetryPolicy,
    retries: u64,
}

impl Client {
    /// Connects, with a read timeout so a dead server fails loudly
    /// instead of hanging the caller, and the default [`RetryPolicy`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_with(
            addr,
            Duration::from_secs(60),
            Arc::new(SystemClock::new()),
            RetryPolicy::default(),
        )
    }

    /// Connects with an explicit read timeout, [`Clock`] and
    /// [`RetryPolicy`] — what the fault lab uses to make waits virtual
    /// and timeouts short.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
        clock: Arc<dyn Clock>,
        retry: RetryPolicy,
    ) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Io("address resolved to nothing".into()))?;
        let (reader, writer) = Self::open(addr, read_timeout)?;
        Ok(Client {
            addr,
            reader,
            writer,
            read_timeout,
            clock,
            retry,
            retries: 0,
        })
    }

    fn open(
        addr: SocketAddr,
        read_timeout: Duration,
    ) -> Result<(BufReader<TcpStream>, TcpStream), ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok((BufReader::new(stream), writer))
    }

    /// Drops the current connection and opens a fresh one to the same
    /// address — what a caller does after an [`ClientError::Io`] on a
    /// keep-alive connection the server (or a fault) tore down.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let (reader, writer) = Self::open(self.addr, self.read_timeout)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// How many `503`-triggered retries this client has performed —
    /// the `poiesis_client_retries_total` the `server_load` summary
    /// reports.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sends one request and reads the response. `body = None` sends no
    /// `Content-Length`; JSON bodies are sent verbatim. Never retries.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, ClientError> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: poiesis\r\n");
        if let Some(body) = body {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.writer.write_all(body.as_bytes())?;
        }
        self.writer.flush()?;
        self.read_response()
    }

    /// [`request`](Self::request) plus the `503` retry loop the typed
    /// helpers ride on: waits out `Retry-After` on the clock, reconnects
    /// (sheds close the connection) and tries again, bounded by the
    /// [`RetryPolicy`].
    pub fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, ClientError> {
        let mut attempts_left = self.retry.max_retries;
        loop {
            let response = self.request(method, path, body)?;
            let retriable = response.status == 503 && response.retry_after.is_some();
            if !retriable || attempts_left == 0 {
                return Ok(response);
            }
            attempts_left -= 1;
            self.retries += 1;
            let wait =
                Duration::from_secs(response.retry_after.unwrap_or(1)).min(self.retry.max_wait);
            self.clock.sleep(wait);
            // a shed connection was closed server-side after the 503
            self.reconnect()?;
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io("server closed the connection".into()));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> Result<HttpResponse, ClientError> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Decode(format!("bad status line `{status_line}`")))?;
        let mut content_length = 0usize;
        let mut retry_after = None;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| ClientError::Decode("bad Content-Length".into()))?;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.trim().parse().ok();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| ClientError::Decode("response body is not UTF-8".into()))?;
        Ok(HttpResponse {
            status,
            body,
            retry_after,
        })
    }

    /// Turns a non-2xx response into [`ClientError::Api`] by decoding the
    /// documented error body.
    fn expect_ok(response: HttpResponse) -> Result<HttpResponse, ClientError> {
        if (200..300).contains(&response.status) {
            return Ok(response);
        }
        let (code, message) = response
            .json()
            .ok()
            .and_then(|v| {
                let e = v.get("error").ok()?;
                Some((
                    e.get("code").ok()?.as_str("code").ok()?.to_string(),
                    e.get("message").ok()?.as_str("message").ok()?.to_string(),
                ))
            })
            .unwrap_or_else(|| ("unknown".to_string(), response.body.clone()));
        Err(ClientError::Api {
            status: response.status,
            code,
            message,
        })
    }

    fn call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, ClientError> {
        Self::expect_ok(self.request_with_retry(method, path, body)?)
    }

    // ------------------------------------------------------ typed calls

    /// `GET /healthz` → the number of live sessions.
    pub fn healthz(&mut self) -> Result<usize, ClientError> {
        let response = self.call("GET", "/healthz", None)?;
        response
            .json()?
            .get("sessions")
            .and_then(|v| v.as_usize("sessions"))
            .map_err(|e| ClientError::Decode(e.to_string()))
    }

    /// `GET /metrics` → the raw Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let response = self.call("GET", "/metrics", None)?;
        Ok(response.body)
    }

    /// Scrapes `/metrics` and returns the value of `name` — the first
    /// sample line whose metric name (including any `{labels}`) starts
    /// with `name`. Counters and gauges only; errors when the metric is
    /// absent, which for the families documented in `docs/OPERATIONS.md`
    /// means the server predates them.
    pub fn metric_value(&mut self, name: &str) -> Result<f64, ClientError> {
        let text = self.metrics()?;
        for line in text.lines() {
            if line.starts_with('#') || !line.starts_with(name) {
                continue;
            }
            if let Some(value) = line.rsplit(' ').next() {
                if let Ok(value) = value.parse() {
                    return Ok(value);
                }
            }
        }
        Err(ClientError::Decode(format!("no metric `{name}` in scrape")))
    }

    /// `POST /sessions` → the new session handle. `None` uses the
    /// server-side defaults.
    pub fn create(&mut self, plan: Option<&PlanRequest>) -> Result<u64, ClientError> {
        let body = plan.map(|p| p.to_json_string());
        let response = self.call("POST", "/sessions", body.as_deref())?;
        let id = response
            .json()?
            .get("session")
            .and_then(|v| v.as_usize("session"))
            .map_err(|e| ClientError::Decode(e.to_string()))?;
        Ok(id as u64)
    }

    /// `POST /sessions/{id}/explore` → the frontier.
    pub fn explore(&mut self, id: u64) -> Result<PlanResponse, ClientError> {
        let response = self.call("POST", &format!("/sessions/{id}/explore"), None)?;
        PlanResponse::from_json_str(&response.body).map_err(|e| ClientError::Decode(e.to_string()))
    }

    /// `POST /sessions/{id}/select` with `{"rank":rank}` → the iteration
    /// record.
    pub fn select(&mut self, id: u64, rank: usize) -> Result<IterationRecord, ClientError> {
        let body = format!("{{\"rank\":{rank}}}");
        let response = self.call("POST", &format!("/sessions/{id}/select"), Some(&body))?;
        let v = response.json()?;
        IterationRecord::from_json(
            v.get("record")
                .map_err(|e| ClientError::Decode(e.to_string()))?,
        )
        .map_err(|e| ClientError::Decode(e.to_string()))
    }

    /// `POST /sessions/{id}/lint` → static-analysis diagnostics for the
    /// session's current flow.
    pub fn lint(&mut self, id: u64) -> Result<LintReport, ClientError> {
        let response = self.call("POST", &format!("/sessions/{id}/lint"), None)?;
        LintReport::from_json_str(&response.body).map_err(|e| ClientError::Decode(e.to_string()))
    }

    /// `GET /sessions/{id}/history` → all completed iterations.
    pub fn history(&mut self, id: u64) -> Result<Vec<IterationRecord>, ClientError> {
        let response = self.call("GET", &format!("/sessions/{id}/history"), None)?;
        let v = response.json()?;
        v.get("history")
            .map_err(|e| ClientError::Decode(e.to_string()))?
            .as_array("history")
            .map_err(|e| ClientError::Decode(e.to_string()))?
            .iter()
            .map(|r| IterationRecord::from_json(r).map_err(|e| ClientError::Decode(e.to_string())))
            .collect()
    }

    /// `DELETE /sessions/{id}`.
    pub fn close(&mut self, id: u64) -> Result<(), ClientError> {
        self.call("DELETE", &format!("/sessions/{id}"), None)?;
        Ok(())
    }

    /// `POST /shutdown` — stops the server.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call("POST", "/shutdown", None)?;
        Ok(())
    }
}
