//! What `POST /sessions` plans against: the server-side flow + catalog.
//!
//! A planning session needs an initial [`EtlFlow`] and a source
//! [`Catalog`]; neither travels over the wire (catalogs hold generated
//! tuples, flows hold an operator graph). Instead the server is launched
//! *on* a [`SessionTemplate`] — the built-in Fig. 2 purchases demo, any
//! entry of the domain scenario corpus (`scenario:<name>`, see
//! `docs/SCENARIOS.md`), or any xLM/PDI model file with sources
//! synthesised from its extract schemata — and every created session
//! starts from a clone of it. Clients configure everything else
//! (objective, strategy, budget, …) per session through the
//! `PlanRequest` DTO.

use datagen::fig2::{purchases_catalog, purchases_flow};
use datagen::{Catalog, DirtProfile, TableSpec};
use etl_model::{EtlFlow, OpKind};
use poiesis::{Poiesis, SessionBuilder};

/// A reusable (flow, catalog) pair every new session is cloned from.
#[derive(Debug, Clone)]
pub struct SessionTemplate {
    flow: EtlFlow,
    catalog: Catalog,
    /// Where the template came from, for logs and `/healthz`.
    pub label: String,
}

impl SessionTemplate {
    /// The built-in demo: the paper's Fig. 2 purchases flow over a
    /// synthesised catalog of `rows` rows per source.
    pub fn demo(rows: usize) -> Self {
        let (flow, _) = purchases_flow();
        let catalog = purchases_catalog(rows, &DirtProfile::demo(), 5);
        SessionTemplate {
            flow,
            catalog,
            label: format!("demo:{rows}"),
        }
    }

    /// Loads an xLM (`.xlm`/`.xml`) or PDI (`.ktr`) model file and
    /// synthesises `rows` rows for every extract from its schema — the
    /// same headless substitute for a test database the CLI uses.
    pub fn from_model_file(path: &str, rows: usize) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let flow = if path.ends_with(".ktr") {
            xlm::pdi::import_ktr(&text).map_err(|e| e.to_string())?
        } else {
            xlm::read_flow(&text).map_err(|e| e.to_string())?
        };
        flow.validate().map_err(|e| format!("invalid model: {e}"))?;
        let catalog = synthesize_catalog(&flow, rows)?;
        Ok(SessionTemplate {
            flow,
            catalog,
            label: format!("{path}:{rows}"),
        })
    }

    /// A scenario-corpus template: the named scenario's base flow over
    /// its seeded catalog at `rows` rows per base table.
    pub fn from_scenario(name: &str, rows: usize) -> Result<Self, String> {
        let s = scenarios::get(name).ok_or_else(|| {
            format!(
                "unknown scenario `{name}`; known scenarios: {}",
                scenarios::names().join(", ")
            )
        })?;
        Ok(SessionTemplate {
            flow: s.flow(),
            catalog: s.catalog(rows),
            label: format!("scenario:{name}:{rows}"),
        })
    }

    /// Parses the `--catalog` flag syntax: `demo[:rows]`,
    /// `scenario:<name>[:rows]` or `<model-path>[:rows]` (default 200
    /// rows).
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let (name, rows) = match spec.rsplit_once(':') {
            Some((name, rows)) if rows.bytes().all(|b| b.is_ascii_digit()) && !rows.is_empty() => {
                let rows: usize = rows
                    .parse()
                    .map_err(|_| format!("bad row count in `{spec}`"))?;
                (name, rows)
            }
            _ => (spec, 200),
        };
        if rows == 0 {
            return Err(format!("`{spec}`: row count must be positive"));
        }
        if name == "demo" {
            Ok(SessionTemplate::demo(rows))
        } else if let Some(scenario) = name.strip_prefix("scenario:") {
            SessionTemplate::from_scenario(scenario, rows)
        } else if looks_like_model_path(name) {
            SessionTemplate::from_model_file(name, rows)
        } else {
            Err(format!(
                "unknown catalog spec `{spec}`: expected `demo[:rows]`, \
                 `scenario:<name>[:rows]` (known scenarios: {}), or a path to \
                 an .xlm/.xml/.ktr model file",
                scenarios::names().join(", ")
            ))
        }
    }

    /// A fresh builder seeded with clones of the template's flow and
    /// catalog — the base a `PlanRequest` is applied on top of.
    pub fn builder(&self) -> SessionBuilder {
        Poiesis::session()
            .flow(self.flow.clone())
            .catalog(self.catalog.clone())
    }
}

/// A bare name with no path separator or model extension is almost
/// certainly a mistyped builtin, not a file — route it to the
/// suggestion error instead of a useless "No such file".
fn looks_like_model_path(name: &str) -> bool {
    name.contains('/')
        || name.contains('\\')
        || name.ends_with(".xlm")
        || name.ends_with(".xml")
        || name.ends_with(".ktr")
}

/// Synthesises a catalog for every extract in the flow from its schema
/// (demo dirt profile, deterministic seeds).
fn synthesize_catalog(flow: &EtlFlow, rows: usize) -> Result<Catalog, String> {
    let mut catalog = Catalog::new();
    let mut seed = 0xC11u64;
    for n in flow.ops_of_kind("extract") {
        let OpKind::Extract { source, schema } = &flow.op(n).expect("live").kind else {
            unreachable!("ops_of_kind returned a non-extract");
        };
        if catalog.table(source).is_some() {
            continue;
        }
        let key = schema
            .attrs()
            .iter()
            .find(|a| !a.nullable)
            .or_else(|| schema.attrs().first())
            .map(|a| a.name.clone())
            .ok_or_else(|| format!("extract `{source}` has an empty schema"))?;
        catalog.add_generated(
            &TableSpec::new(source.clone(), schema.clone(), rows, key),
            &DirtProfile::demo(),
            seed,
        );
        seed = seed.wrapping_add(1);
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_template_builds_working_sessions() {
        let template = SessionTemplate::demo(80);
        assert_eq!(template.label, "demo:80");
        // two sessions from one template are independent
        let a = template.builder().budget(50).build().unwrap();
        let b = template.builder().budget(50).build().unwrap();
        assert_eq!(a.current_flow().name, b.current_flow().name);
    }

    #[test]
    fn spec_syntax_parses_names_and_row_counts() {
        assert_eq!(
            SessionTemplate::from_spec("demo").unwrap().label,
            "demo:200"
        );
        assert_eq!(
            SessionTemplate::from_spec("demo:64").unwrap().label,
            "demo:64"
        );
        assert!(SessionTemplate::from_spec("demo:0").is_err());
        assert!(SessionTemplate::from_spec("/no/such/model.xlm").is_err());
    }

    #[test]
    fn scenario_specs_resolve_against_the_corpus() {
        let t = SessionTemplate::from_spec("scenario:finance_recon").unwrap();
        assert_eq!(t.label, "scenario:finance_recon:200");
        let t = SessionTemplate::from_spec("scenario:iot_dedup:48").unwrap();
        assert_eq!(t.label, "scenario:iot_dedup:48");
        // the template is live, not just labelled
        t.builder().budget(50).build().unwrap();
    }

    #[test]
    fn unknown_scenario_error_lists_the_catalog() {
        let err = SessionTemplate::from_spec("scenario:fniance_recon").unwrap_err();
        assert!(
            err.contains("unknown scenario `fniance_recon`"),
            "error should name the bad scenario: {err}"
        );
        for name in scenarios::names() {
            assert!(
                err.contains(name),
                "error should suggest known scenario `{name}`: {err}"
            );
        }
    }

    #[test]
    fn unknown_spec_error_suggests_the_known_catalogs() {
        let err = SessionTemplate::from_spec("dmeo:100").unwrap_err();
        assert!(err.contains("unknown catalog spec `dmeo:100`"), "{err}");
        assert!(err.contains("demo[:rows]"), "{err}");
        assert!(err.contains("scenario:<name>[:rows]"), "{err}");
        assert!(err.contains(".xlm/.xml/.ktr"), "{err}");
        for name in scenarios::names() {
            assert!(err.contains(name), "missing suggestion `{name}`: {err}");
        }
    }
}
