//! Durable session state: the `--state-dir` snapshot file.
//!
//! The persistence model is deliberately the simplest thing that
//! survives `kill -9`: after every state-changing request (create,
//! select, close) the service serializes the whole
//! [`poiesis::SessionManager`] — flows as xLM documents, configurations
//! as `PlanRequest`s, histories as records — and **rewrites** one
//! `sessions.json` atomically (write to a temp file in the same
//! directory, then rename over the old snapshot). A reader therefore
//! always sees either the previous complete snapshot or the new complete
//! snapshot, never a torn write; on startup the server loads whatever is
//! there and resumes every session mid-iteration. Exploration outcomes
//! are *not* persisted — they are reproducible (deterministic planning),
//! so a restarted client simply explores again before its next select —
//! which keeps the write amplification at "mutations", not "requests".

use poiesis::{FromJson, ManagerSnapshot, ToJson};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The snapshot file inside a state directory.
///
/// ```
/// use poiesis_server::StateStore;
/// use poiesis::ManagerSnapshot;
///
/// let dir = std::env::temp_dir().join(format!("poiesis-doc-{}", std::process::id()));
/// let store = StateStore::open(&dir).unwrap();
/// assert!(store.load().unwrap().is_none()); // nothing persisted yet
///
/// store.save(&ManagerSnapshot::default()).unwrap();
/// let restored = store.load().unwrap().expect("snapshot exists");
/// assert_eq!(restored.sessions.len(), 0);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct StateStore {
    path: PathBuf,
    tmp: PathBuf,
}

impl StateStore {
    /// Opens (creating if needed) the state directory and addresses
    /// `sessions.json` inside it.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<StateStore> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        Ok(StateStore {
            path: dir.join("sessions.json"),
            tmp: dir.join("sessions.json.tmp"),
        })
    }

    /// Where the snapshot lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads the snapshot. `Ok(None)` when no snapshot has ever been
    /// written; a present-but-corrupt file is a loud error (serving with
    /// silently dropped sessions would be worse than refusing to start).
    pub fn load(&self) -> Result<Option<ManagerSnapshot>, String> {
        let text = match fs::read_to_string(&self.path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("reading {}: {e}", self.path.display())),
            Ok(text) => text,
        };
        ManagerSnapshot::from_json_str(&text)
            .map(Some)
            .map_err(|e| format!("corrupt snapshot {}: {e}", self.path.display()))
    }

    /// Atomically replaces the snapshot: write the temp file, `fsync` it,
    /// rename over the old snapshot (same directory, so the rename cannot
    /// cross filesystems), then `fsync` the directory. The file sync
    /// before the rename is what makes the guarantee hold across power
    /// loss, not just process death — without it the rename can commit
    /// before the data blocks and a crash leaves a truncated "complete"
    /// snapshot. The directory sync persists the rename itself and is
    /// best-effort (not every platform lets a directory be opened).
    pub fn save(&self, snapshot: &ManagerSnapshot) -> io::Result<()> {
        {
            let mut file = fs::File::create(&self.tmp)?;
            io::Write::write_all(&mut file, snapshot.to_json_string().as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&self.tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            if let Ok(dir) = fs::File::open(dir) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("poiesis-store-{}-{name}", std::process::id()))
    }

    #[test]
    fn load_of_a_fresh_store_is_none_and_save_round_trips() {
        let dir = scratch("fresh");
        let store = StateStore::open(&dir).unwrap();
        assert_eq!(store.load().unwrap(), None);
        let snapshot = ManagerSnapshot {
            next_id: 3,
            sessions: Vec::new(),
        };
        store.save(&snapshot).unwrap();
        assert_eq!(store.load().unwrap(), Some(snapshot));
        // saves are rewrites: the temp file never lingers
        assert!(!store.tmp.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshots_error_instead_of_serving_empty() {
        let dir = scratch("corrupt");
        let store = StateStore::open(&dir).unwrap();
        fs::write(store.path(), "{definitely not a snapshot").unwrap();
        assert!(store.load().unwrap_err().contains("corrupt"));
        fs::remove_dir_all(&dir).ok();
    }
}
