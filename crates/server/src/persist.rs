//! Durable session state: the `--state-dir` snapshot file.
//!
//! The persistence model is deliberately the simplest thing that
//! survives `kill -9`: after every state-changing request (create,
//! select, close) the service serializes the whole
//! [`poiesis::SessionManager`] — flows as xLM documents, configurations
//! as `PlanRequest`s, histories as records — and **rewrites** one
//! `sessions.json` atomically (write to a temp file in the same
//! directory, then rename over the old snapshot). A reader therefore
//! always sees either the previous complete snapshot or the new complete
//! snapshot, never a torn write; on startup the server loads whatever is
//! there and resumes every session mid-iteration. Exploration outcomes
//! are *not* persisted — they are reproducible (deterministic planning),
//! so a restarted client simply explores again before its next select —
//! which keeps the write amplification at "mutations", not "requests".
//!
//! # Startup gate and quarantine
//!
//! Loading is defensive twice over: the text must parse as a
//! [`ManagerSnapshot`], **and** the parsed snapshot must pass
//! [`ManagerSnapshot::validate`] — duplicate handles, a handle counter
//! that would reuse handles, gapped histories. A snapshot failing either
//! gate is **quarantined**: renamed to `sessions.json.corrupt` (the
//! evidence is preserved for forensics, never silently deleted) and the
//! server starts with a fresh, empty state. A partially-applied snapshot
//! therefore never loads; the failure is loud (stderr +
//! `poiesis_snapshot_quarantined_total`) but does not take availability
//! down with it. The strict [`StateStore::load`] (error, no quarantine)
//! remains for callers that want to inspect rather than recover.
//!
//! # Fault hook
//!
//! [`StateStore::fault_hook`] exposes a shared [`TornWriteHook`] that the
//! deterministic fault lab (`crates/simlab`) arms to make exactly one
//! future save misbehave — truncating the temp file and "crashing" before
//! the rename, or tearing bytes straight into the final path the way a
//! non-atomic filesystem can under power loss. Production code never arms
//! it; an unarmed hook costs one mutex lock per save.

use poiesis::{FromJson, ManagerSnapshot, ToJson};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// How an armed [`TornWriteHook`] sabotages the next save.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornWrite {
    /// Write only the first `keep_bytes` of the serialized snapshot to
    /// the temp file and skip the rename — the crash-before-commit case
    /// the temp+rename protocol is designed to survive: the previous
    /// complete snapshot stays in place.
    TempOnly {
        /// Bytes of the snapshot that reach the temp file.
        keep_bytes: usize,
    },
    /// Write only the first `keep_bytes` straight into `sessions.json` —
    /// the torn-rename / power-loss-reordering case the startup
    /// quarantine exists for.
    Final {
        /// Bytes of the snapshot that reach the final path.
        keep_bytes: usize,
    },
}

/// A shared, armable fault: `Some(fault)` makes exactly the next
/// [`StateStore::save`] misbehave, then disarms itself. Cloneable so a
/// test can keep one end while the store (inside the service) holds the
/// other.
#[derive(Debug, Clone, Default)]
pub struct TornWriteHook(Arc<Mutex<Option<TornWrite>>>);

impl TornWriteHook {
    /// Arms the hook: the next save performs `fault` instead of the
    /// atomic protocol.
    pub fn arm(&self, fault: TornWrite) {
        *self.0.lock().expect("torn-write hook") = Some(fault);
    }

    /// Takes the armed fault, disarming the hook.
    fn take(&self) -> Option<TornWrite> {
        self.0.lock().expect("torn-write hook").take()
    }

    /// Whether a fault is currently armed (i.e. no save consumed it yet).
    pub fn is_armed(&self) -> bool {
        self.0.lock().expect("torn-write hook").is_some()
    }
}

/// What [`StateStore::load_or_quarantine`] found.
#[derive(Debug, PartialEq)]
pub enum LoadedState {
    /// No snapshot has ever been written.
    Absent,
    /// A complete, internally-consistent snapshot.
    Snapshot(ManagerSnapshot),
    /// The snapshot failed the parse or consistency gate and was moved
    /// aside; the server should start empty.
    Quarantined {
        /// Why the snapshot was rejected.
        reason: String,
        /// Where the evidence now lives (`sessions.json.corrupt`).
        quarantined_to: PathBuf,
    },
}

/// The snapshot file inside a state directory.
///
/// ```
/// use poiesis_server::StateStore;
/// use poiesis::ManagerSnapshot;
///
/// let dir = std::env::temp_dir().join(format!("poiesis-doc-{}", std::process::id()));
/// let store = StateStore::open(&dir).unwrap();
/// assert!(store.load().unwrap().is_none()); // nothing persisted yet
///
/// store.save(&ManagerSnapshot::default()).unwrap();
/// let restored = store.load().unwrap().expect("snapshot exists");
/// assert_eq!(restored.sessions.len(), 0);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct StateStore {
    path: PathBuf,
    tmp: PathBuf,
    corrupt: PathBuf,
    hook: TornWriteHook,
}

impl StateStore {
    /// Opens (creating if needed) the state directory and addresses
    /// `sessions.json` inside it.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<StateStore> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        Ok(StateStore {
            path: dir.join("sessions.json"),
            tmp: dir.join("sessions.json.tmp"),
            corrupt: dir.join("sessions.json.corrupt"),
            hook: TornWriteHook::default(),
        })
    }

    /// Where the snapshot lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Where a rejected snapshot is moved.
    pub fn quarantine_path(&self) -> &Path {
        &self.corrupt
    }

    /// The fault hook the deterministic fault lab arms (see module docs).
    /// Clone it out before handing the store to a service.
    pub fn fault_hook(&self) -> TornWriteHook {
        self.hook.clone()
    }

    /// Reads the snapshot strictly. `Ok(None)` when no snapshot has ever
    /// been written; a present-but-corrupt or inconsistent file is a loud
    /// error and the file is left untouched. Startup paths want
    /// [`load_or_quarantine`](Self::load_or_quarantine) instead.
    pub fn load(&self) -> Result<Option<ManagerSnapshot>, String> {
        let text = match fs::read_to_string(&self.path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("reading {}: {e}", self.path.display())),
            Ok(text) => text,
        };
        let snapshot = ManagerSnapshot::from_json_str(&text)
            .map_err(|e| format!("corrupt snapshot {}: {e}", self.path.display()))?;
        snapshot
            .validate()
            .map_err(|e| format!("inconsistent snapshot {}: {e}", self.path.display()))?;
        Ok(Some(snapshot))
    }

    /// The startup gate: loads the snapshot, and if it fails the parse or
    /// the [`ManagerSnapshot::validate`] consistency check, renames it to
    /// [`quarantine_path`](Self::quarantine_path) and reports
    /// [`LoadedState::Quarantined`] so the caller can start empty — a
    /// partially-applied snapshot never loads, and the evidence survives.
    pub fn load_or_quarantine(&self) -> io::Result<LoadedState> {
        match self.load() {
            Ok(None) => Ok(LoadedState::Absent),
            Ok(Some(snapshot)) => Ok(LoadedState::Snapshot(snapshot)),
            Err(reason) => {
                self.quarantine()?;
                Ok(LoadedState::Quarantined {
                    reason,
                    quarantined_to: self.corrupt.clone(),
                })
            }
        }
    }

    /// Moves the current snapshot aside as `sessions.json.corrupt`
    /// (overwriting any previous quarantine — the newest evidence wins).
    pub fn quarantine(&self) -> io::Result<()> {
        fs::rename(&self.path, &self.corrupt)
    }

    /// Atomically replaces the snapshot: write the temp file, `fsync` it,
    /// rename over the old snapshot (same directory, so the rename cannot
    /// cross filesystems), then `fsync` the directory. The file sync
    /// before the rename is what makes the guarantee hold across power
    /// loss, not just process death — without it the rename can commit
    /// before the data blocks and a crash leaves a truncated "complete"
    /// snapshot. The directory sync persists the rename itself and is
    /// best-effort (not every platform lets a directory be opened).
    pub fn save(&self, snapshot: &ManagerSnapshot) -> io::Result<()> {
        let bytes = snapshot.to_json_string().into_bytes();
        if let Some(fault) = self.hook.take() {
            return self.save_torn(&bytes, fault);
        }
        {
            let mut file = fs::File::create(&self.tmp)?;
            io::Write::write_all(&mut file, &bytes)?;
            file.sync_all()?;
        }
        fs::rename(&self.tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            if let Ok(dir) = fs::File::open(dir) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Performs one armed [`TornWrite`] instead of the atomic protocol.
    fn save_torn(&self, bytes: &[u8], fault: TornWrite) -> io::Result<()> {
        match fault {
            TornWrite::TempOnly { keep_bytes } => {
                // crash-before-rename: partial temp file, final untouched
                fs::write(&self.tmp, &bytes[..keep_bytes.min(bytes.len())])
            }
            TornWrite::Final { keep_bytes } => {
                fs::write(&self.path, &bytes[..keep_bytes.min(bytes.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poiesis::{PlanRequest, SessionSnapshot};

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("poiesis-store-{}-{name}", std::process::id()))
    }

    #[test]
    fn load_of_a_fresh_store_is_none_and_save_round_trips() {
        let dir = scratch("fresh");
        let store = StateStore::open(&dir).unwrap();
        assert_eq!(store.load().unwrap(), None);
        let snapshot = ManagerSnapshot {
            next_id: 3,
            sessions: Vec::new(),
        };
        store.save(&snapshot).unwrap();
        assert_eq!(store.load().unwrap(), Some(snapshot));
        // saves are rewrites: the temp file never lingers
        assert!(!store.tmp.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshots_error_instead_of_serving_empty() {
        let dir = scratch("corrupt");
        let store = StateStore::open(&dir).unwrap();
        fs::write(store.path(), "{definitely not a snapshot").unwrap();
        assert!(store.load().unwrap_err().contains("corrupt"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_moves_the_bad_snapshot_aside_and_reports_why() {
        let dir = scratch("quarantine");
        let store = StateStore::open(&dir).unwrap();
        assert_eq!(store.load_or_quarantine().unwrap(), LoadedState::Absent);

        fs::write(store.path(), "{torn mid-wri").unwrap();
        match store.load_or_quarantine().unwrap() {
            LoadedState::Quarantined {
                reason,
                quarantined_to,
            } => {
                assert!(reason.contains("corrupt"), "{reason}");
                assert_eq!(quarantined_to, store.corrupt);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // the evidence moved, the live path is clear, startup is clean
        assert!(store.corrupt.exists());
        assert!(!store.path().exists());
        assert_eq!(store.load_or_quarantine().unwrap(), LoadedState::Absent);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parsing_but_inconsistent_snapshots_are_quarantined_too() {
        let dir = scratch("inconsistent");
        let store = StateStore::open(&dir).unwrap();
        // parses fine, but next_id would reuse the session's handle
        let bad = ManagerSnapshot {
            next_id: 1,
            sessions: vec![SessionSnapshot {
                id: 1,
                base_name: "purchases".into(),
                flow_xlm: "<design/>".into(),
                request: PlanRequest::default(),
                history: vec![],
            }],
        };
        fs::write(store.path(), bad.to_json_string()).unwrap();
        assert!(store.load().unwrap_err().contains("inconsistent"));
        match store.load_or_quarantine().unwrap() {
            LoadedState::Quarantined { reason, .. } => {
                assert!(reason.contains("reused"), "{reason}")
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(store.corrupt.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn armed_torn_writes_fire_once_then_the_store_recovers() {
        let dir = scratch("torn");
        let store = StateStore::open(&dir).unwrap();
        let good = ManagerSnapshot {
            next_id: 7,
            sessions: Vec::new(),
        };
        store.save(&good).unwrap();

        // TempOnly: the crash-before-rename case — previous snapshot wins
        let hook = store.fault_hook();
        hook.arm(TornWrite::TempOnly { keep_bytes: 4 });
        store
            .save(&ManagerSnapshot {
                next_id: 8,
                sessions: Vec::new(),
            })
            .unwrap();
        assert!(!hook.is_armed(), "hook disarms after one save");
        assert_eq!(store.load().unwrap(), Some(good.clone()));

        // Final: torn bytes land in sessions.json — quarantined on load
        hook.arm(TornWrite::Final { keep_bytes: 9 });
        store
            .save(&ManagerSnapshot {
                next_id: 9,
                sessions: Vec::new(),
            })
            .unwrap();
        assert!(matches!(
            store.load_or_quarantine().unwrap(),
            LoadedState::Quarantined { .. }
        ));

        // the next honest save re-establishes durability
        store.save(&good).unwrap();
        assert_eq!(store.load().unwrap(), Some(good));
        fs::remove_dir_all(&dir).ok();
    }
}
