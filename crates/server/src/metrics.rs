//! Lock-free service metrics, exposed as `GET /metrics` in Prometheus
//! text format.
//!
//! Every counter is a plain `AtomicU64` bumped on the request path — no
//! locks, no allocation — so observability costs nanoseconds per request.
//! Requests are counted per *route* (the endpoint shape, e.g. `explore`)
//! and *status* (the exact code served); planning-cycle wall times feed a
//! fixed-bucket histogram; the accept loop reports connections and load
//! shedding; the persistence layer reports snapshot writes. Gauges that
//! mirror live state (session count, uptime) are sampled at scrape time
//! rather than maintained incrementally.
//!
//! The full metric catalogue, with example scrape output, lives in
//! `docs/OPERATIONS.md`; the names and label sets there are a contract,
//! pinned by the integration tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The endpoint shapes requests are counted under. `Other` covers
/// unroutable paths and requests that failed HTTP parsing.
const ROUTES: [&str; 11] = [
    "healthz",
    "metrics",
    "sessions_list",
    "session_create",
    "explore",
    "select",
    "lint",
    "history",
    "close",
    "shutdown",
    "other",
];

/// Every status code this server emits; the final slot collects anything
/// unexpected so a count is never silently dropped.
const STATUSES: [u16; 12] = [200, 201, 400, 404, 405, 408, 409, 413, 431, 500, 503, 0];

/// Upper bounds (seconds) of the planning-cycle latency histogram; an
/// implicit `+Inf` bucket follows. Spans sub-5 ms demo cycles up to
/// multi-second simulation-mode cycles.
const CYCLE_BUCKETS: [f64; 11] = [
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Maps a request to its route slot (index into [`ROUTES`]).
/// Allocation-free: this runs once per request, including the /healthz
/// fast path.
fn route_index(method: &str, path: &str) -> usize {
    let mut parts = path.split('/').filter(|s| !s.is_empty());
    let segments = (parts.next(), parts.next(), parts.next(), parts.next());
    match (method, segments) {
        ("GET", (Some("healthz"), None, _, _)) => 0,
        ("GET", (Some("metrics"), None, _, _)) => 1,
        ("GET", (Some("sessions"), None, _, _)) => 2,
        ("POST", (Some("sessions"), None, _, _)) => 3,
        ("POST", (Some("sessions"), Some(_), Some("explore"), None)) => 4,
        ("POST", (Some("sessions"), Some(_), Some("select"), None)) => 5,
        ("POST", (Some("sessions"), Some(_), Some("lint"), None)) => 6,
        ("GET", (Some("sessions"), Some(_), Some("history"), None)) => 7,
        ("DELETE", (Some("sessions"), Some(_), None, _)) => 8,
        ("POST", (Some("shutdown"), None, _, _)) => 9,
        _ => ROUTES.len() - 1,
    }
}

/// Maps a status code to its slot (index into [`STATUSES`]).
fn status_index(status: u16) -> usize {
    STATUSES
        .iter()
        .position(|&s| s == status)
        .unwrap_or(STATUSES.len() - 1)
}

/// A fixed-bucket latency histogram (Prometheus `histogram` semantics:
/// cumulative buckets plus `_sum` and `_count`).
#[derive(Default)]
struct Histogram {
    /// Per-bucket observation counts, *non*-cumulative in storage (made
    /// cumulative at render time); the last slot is `+Inf`.
    buckets: [AtomicU64; CYCLE_BUCKETS.len() + 1],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn observe(&self, duration: Duration) {
        let secs = duration.as_secs_f64();
        let slot = CYCLE_BUCKETS
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(CYCLE_BUCKETS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add(duration.as_micros() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn render(&self, out: &mut String, name: &str) {
        let mut cumulative = 0u64;
        for (i, le) in CYCLE_BUCKETS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        cumulative += self.buckets[CYCLE_BUCKETS.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        let sum = self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&format!("{name}_sum {sum}\n"));
        out.push_str(&format!(
            "{name}_count {}\n",
            self.count.load(Ordering::Relaxed)
        ));
    }
}

/// The atomic-counter metrics registry one server (and its
/// [`PlanningService`](crate::PlanningService)) shares.
///
/// ```
/// use poiesis_server::Metrics;
/// use std::time::Duration;
///
/// let metrics = Metrics::new();
/// metrics.record_request("GET", "/healthz", 200);
/// metrics.record_request("POST", "/sessions/3/explore", 200);
/// metrics.observe_cycle(Duration::from_millis(12));
///
/// let text = metrics.render(1);
/// assert!(text.contains("poiesis_http_requests_total{route=\"healthz\",status=\"200\"} 1"));
/// assert!(text.contains("poiesis_http_requests_total{route=\"explore\",status=\"200\"} 1"));
/// assert!(text.contains("poiesis_cycle_duration_seconds_count 1"));
/// assert!(text.contains("poiesis_sessions_live 1"));
/// ```
pub struct Metrics {
    started: Instant,
    requests: [[AtomicU64; STATUSES.len()]; ROUTES.len()],
    in_flight: AtomicU64,
    connections: AtomicU64,
    shed: AtomicU64,
    cycle: Histogram,
    snapshot_writes: AtomicU64,
    snapshot_errors: AtomicU64,
    snapshot_quarantines: AtomicU64,
    static_rejections: AtomicU64,
    bound_pruned: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            requests: Default::default(),
            in_flight: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cycle: Histogram::default(),
            snapshot_writes: AtomicU64::new(0),
            snapshot_errors: AtomicU64::new(0),
            snapshot_quarantines: AtomicU64::new(0),
            static_rejections: AtomicU64::new(0),
            bound_pruned: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// A zeroed registry whose uptime clock starts now.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one served request under its route and status.
    pub fn record_request(&self, method: &str, path: &str, status: u16) {
        self.requests[route_index(method, path)][status_index(status)]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection shed with `503` because workers and the
    /// accept queue were both full.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests served so far, all routes and statuses.
    pub fn requests_total(&self) -> u64 {
        self.requests
            .iter()
            .flatten()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Feeds one planning-cycle wall time into the latency histogram.
    pub fn observe_cycle(&self, duration: Duration) {
        self.cycle.observe(duration);
    }

    /// Counts one session-state snapshot write; `ok = false` counts an
    /// error instead (the write failed and durable state is stale).
    pub fn record_snapshot_write(&self, ok: bool) {
        if ok {
            self.snapshot_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.snapshot_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one snapshot rejected at startup (parse or consistency
    /// failure) and moved aside as `sessions.json.corrupt`.
    pub fn record_snapshot_quarantine(&self) {
        self.snapshot_quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts combinations pruned by the planner's static pre-screen
    /// during one explore cycle.
    pub fn record_static_rejections(&self, n: usize) {
        if n > 0 {
            self.static_rejections
                .fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Counts combinations skipped by the bound-based dominance
    /// pre-pruner during one explore cycle.
    pub fn record_bound_pruned(&self, n: usize) {
        if n > 0 {
            self.bound_pruned.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Marks a request in flight until the guard drops.
    pub fn in_flight_guard(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { metrics: self }
    }

    /// Renders the whole registry in Prometheus text exposition format.
    /// `live_sessions` is sampled by the caller at scrape time (the
    /// registry does not own the session manager).
    pub fn render(&self, live_sessions: usize) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP poiesis_http_requests_total Requests served, by route and status.\n");
        out.push_str("# TYPE poiesis_http_requests_total counter\n");
        for (r, route) in ROUTES.iter().enumerate() {
            for (s, status) in STATUSES.iter().enumerate() {
                let n = self.requests[r][s].load(Ordering::Relaxed);
                if n == 0 {
                    continue;
                }
                let status = if *status == 0 {
                    "other".to_string()
                } else {
                    status.to_string()
                };
                out.push_str(&format!(
                    "poiesis_http_requests_total{{route=\"{route}\",status=\"{status}\"}} {n}\n"
                ));
            }
        }

        out.push_str("# HELP poiesis_http_requests_in_flight Requests currently being handled.\n");
        out.push_str("# TYPE poiesis_http_requests_in_flight gauge\n");
        out.push_str(&format!(
            "poiesis_http_requests_in_flight {}\n",
            self.in_flight.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP poiesis_http_connections_total Connections accepted.\n");
        out.push_str("# TYPE poiesis_http_connections_total counter\n");
        out.push_str(&format!(
            "poiesis_http_connections_total {}\n",
            self.connections.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP poiesis_http_shed_total Connections refused with 503 under saturation.\n",
        );
        out.push_str("# TYPE poiesis_http_shed_total counter\n");
        out.push_str(&format!("poiesis_http_shed_total {}\n", self.shed_total()));

        out.push_str("# HELP poiesis_cycle_duration_seconds Planning-cycle (explore) wall time.\n");
        out.push_str("# TYPE poiesis_cycle_duration_seconds histogram\n");
        self.cycle
            .render(&mut out, "poiesis_cycle_duration_seconds");

        out.push_str("# HELP poiesis_sessions_live Sessions currently registered.\n");
        out.push_str("# TYPE poiesis_sessions_live gauge\n");
        out.push_str(&format!("poiesis_sessions_live {live_sessions}\n"));

        out.push_str(
            "# HELP poiesis_snapshot_writes_total Session-state snapshot files written.\n",
        );
        out.push_str("# TYPE poiesis_snapshot_writes_total counter\n");
        out.push_str(&format!(
            "poiesis_snapshot_writes_total {}\n",
            self.snapshot_writes.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP poiesis_snapshot_errors_total Snapshot writes that failed.\n");
        out.push_str("# TYPE poiesis_snapshot_errors_total counter\n");
        out.push_str(&format!(
            "poiesis_snapshot_errors_total {}\n",
            self.snapshot_errors.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP poiesis_snapshot_quarantined_total Snapshots rejected at startup and moved to sessions.json.corrupt.\n",
        );
        out.push_str("# TYPE poiesis_snapshot_quarantined_total counter\n");
        out.push_str(&format!(
            "poiesis_snapshot_quarantined_total {}\n",
            self.snapshot_quarantines.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP poiesis_static_rejections_total Combinations pruned by the static pre-screen before evaluation.\n",
        );
        out.push_str("# TYPE poiesis_static_rejections_total counter\n");
        out.push_str(&format!(
            "poiesis_static_rejections_total {}\n",
            self.static_rejections.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP poiesis_bound_pruned_total Combinations skipped by the bound-based dominance pre-pruner.\n",
        );
        out.push_str("# TYPE poiesis_bound_pruned_total counter\n");
        out.push_str(&format!(
            "poiesis_bound_pruned_total {}\n",
            self.bound_pruned.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP poiesis_uptime_seconds Seconds since the server started.\n");
        out.push_str("# TYPE poiesis_uptime_seconds gauge\n");
        out.push_str(&format!(
            "poiesis_uptime_seconds {}\n",
            self.started.elapsed().as_secs()
        ));

        out
    }
}

/// Decrements the in-flight gauge when dropped — panic-safe bracketing of
/// one request.
pub struct InFlightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_classify_every_documented_endpoint() {
        for (method, path, want) in [
            ("GET", "/healthz", "healthz"),
            ("GET", "/metrics", "metrics"),
            ("GET", "/sessions", "sessions_list"),
            ("POST", "/sessions", "session_create"),
            ("POST", "/sessions/12/explore", "explore"),
            ("POST", "/sessions/12/select", "select"),
            ("POST", "/sessions/12/lint", "lint"),
            ("GET", "/sessions/12/history", "history"),
            ("DELETE", "/sessions/12", "close"),
            ("POST", "/shutdown", "shutdown"),
            ("GET", "/nope", "other"),
            ("PATCH", "/sessions", "other"),
        ] {
            assert_eq!(ROUTES[route_index(method, path)], want, "{method} {path}");
        }
    }

    #[test]
    fn unexpected_statuses_collect_under_other() {
        let m = Metrics::new();
        m.record_request("GET", "/healthz", 418);
        assert!(m
            .render(0)
            .contains("poiesis_http_requests_total{route=\"healthz\",status=\"other\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_count_everything() {
        let m = Metrics::new();
        m.observe_cycle(Duration::from_millis(3)); // ≤ 0.005
        m.observe_cycle(Duration::from_millis(30)); // ≤ 0.05
        m.observe_cycle(Duration::from_secs(60)); // +Inf only
        let text = m.render(0);
        assert!(text.contains("poiesis_cycle_duration_seconds_bucket{le=\"0.005\"} 1"));
        assert!(text.contains("poiesis_cycle_duration_seconds_bucket{le=\"0.05\"} 2"));
        assert!(text.contains("poiesis_cycle_duration_seconds_bucket{le=\"10\"} 2"));
        assert!(text.contains("poiesis_cycle_duration_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("poiesis_cycle_duration_seconds_count 3"));
    }

    #[test]
    fn in_flight_guard_is_balanced_even_across_drops() {
        let m = Metrics::new();
        {
            let _a = m.in_flight_guard();
            let _b = m.in_flight_guard();
            assert!(m.render(0).contains("poiesis_http_requests_in_flight 2"));
        }
        assert!(m.render(0).contains("poiesis_http_requests_in_flight 0"));
    }

    #[test]
    fn every_metric_family_renders_from_a_fresh_registry() {
        // the OPERATIONS.md catalogue promises these families always exist
        let text = Metrics::new().render(0);
        for family in [
            "poiesis_http_requests_in_flight",
            "poiesis_http_connections_total",
            "poiesis_http_shed_total",
            "poiesis_cycle_duration_seconds_count",
            "poiesis_sessions_live",
            "poiesis_snapshot_writes_total",
            "poiesis_snapshot_errors_total",
            "poiesis_static_rejections_total",
            "poiesis_bound_pruned_total",
            "poiesis_uptime_seconds",
        ] {
            assert!(text.contains(family), "missing {family}");
        }
    }

    #[test]
    fn static_rejections_accumulate() {
        let m = Metrics::new();
        m.record_static_rejections(0);
        assert!(m.render(0).contains("poiesis_static_rejections_total 0"));
        m.record_static_rejections(3);
        m.record_static_rejections(2);
        assert!(m.render(0).contains("poiesis_static_rejections_total 5"));
    }

    #[test]
    fn bound_pruned_accumulates() {
        let m = Metrics::new();
        m.record_bound_pruned(0);
        assert!(m.render(0).contains("poiesis_bound_pruned_total 0"));
        m.record_bound_pruned(4);
        m.record_bound_pruned(1);
        assert!(m.render(0).contains("poiesis_bound_pruned_total 5"));
    }
}
